//! Vendored, registry-free stand-in for the slice of `proptest` this
//! workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_filter`, range/tuple/collection/option strategies,
//! `prop_oneof!`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! reported by panicking with the assertion message (plus the deterministic
//! per-test seed) instead of shrinking to a minimal counterexample. Inputs
//! are generated from a seed derived from the test's module path and name,
//! so every run and every machine sees the same sequence.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the fully qualified test name.
    pub fn rng_for_test(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values. Unlike upstream there is no value
    /// tree / shrinking; `generate` draws one value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            // Rejection sampling with a generous budget; a filter that
            // rejects this often is a bug in the strategy, as upstream's
            // "too many local rejects" error would also say.
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vector length specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "proptest vec: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>` strategy: mostly `Some`, occasionally `None` (upstream
    /// defaults to 3:1 in favour of `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i32, i64, f64);
}

/// The `proptest!` macro: expands each `fn name(pat in strategy, ..) { .. }`
/// item into a plain test running `cfg.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::rng_for_test(__test_name);
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assertion macros. Upstream returns an `Err` that triggers shrinking;
/// here they panic directly, which the test harness reports as a failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of upstream's `prelude::prop` facade module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u32),
        Pop,
    }

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..9), f in 0.5f64..2.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_filter(
            xs in prop::collection::vec(0u32..100, 1..20),
            y in (0u32..50).prop_filter("even", |v| v % 2 == 0),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn oneof_map_and_option(
            op in prop_oneof![
                (0u32..10).prop_map(Op::Push),
                (0u32..1).prop_map(|_| Op::Pop),
            ],
            slot in prop::option::of(0usize..7),
            flag in any::<bool>(),
        ) {
            match op {
                Op::Push(v) => prop_assert!(v < 10),
                Op::Pop => {}
            }
            if let Some(s) = slot {
                prop_assert!(s < 7);
            }
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn config_is_honoured(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = prop::collection::vec(0u32..1000, 5..30);
        let mut r1 = crate::test_runner::rng_for_test("a::b");
        let mut r2 = crate::test_runner::rng_for_test("a::b");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
