//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no registry access, so the real
//! crate cannot be fetched; this crate keeps the public surface (`Rng`,
//! `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`) source-compatible for
//! the call sites in the workspace.
//!
//! The generator behind `StdRng` is xoshiro256++ seeded via SplitMix64 —
//! deterministic, fast, and statistically strong enough for simulation
//! workloads, though not the ChaCha12 stream the upstream crate uses (so
//! absolute sequences differ from upstream `rand`).

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample(self)
    }

    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: distributions::SampleRange,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators; mirrors the upstream trait closely enough for
/// `StdRng::seed_from_u64` and `from_seed` call sites.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the full seed buffer.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types that can be sampled uniformly "at standard" (the `rng.gen()`
    /// distribution): floats in `[0, 1)`, integers over their full range.
    pub trait Standard: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u16 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u16
        }
    }

    impl Standard for u8 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u8
        }
    }

    impl Standard for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Standard for i64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Standard for i32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as i32
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Types usable as the argument of `rng.gen_range(..)`.
    pub trait SampleRange {
        type Output;
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    macro_rules! impl_int_range {
        ($(($t:ty, $u:ty)),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    // Span fits the unsigned twin even for signed ranges
                    // spanning zero; all arithmetic stays in the unsigned
                    // domain so negative starts can't overflow.
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    // Multiply-shift bounded sampling keeps the modulo bias
                    // below 2^-64 for the span sizes used in this workspace.
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                    self.start.wrapping_add(draw as $t)
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span_minus_one = (hi as $u).wrapping_sub(lo as $u);
                    if span_minus_one == <$u>::MAX {
                        return <$t as Standard>::sample(rng);
                    }
                    let span = span_minus_one + 1;
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                    lo.wrapping_add(draw as $t)
                }
            }
        )*};
    }

    impl_int_range!(
        (u8, u8),
        (u16, u16),
        (u32, u32),
        (u64, u64),
        (usize, usize),
        (i32, u32),
        (i64, u64)
    );

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = <$t as Standard>::sample(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    // start + (end-start)*unit can round up to `end` even for
                    // unit < 1; clamp to keep the half-open contract.
                    if v < self.end { v } else { self.end.next_down() }
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let unit = <$t as Standard>::sample(rng);
                    lo + (hi - lo) * unit
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for upstream's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for snapshot serialization.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output. The all-zero
        /// state is rejected because xoshiro cannot escape it; it can only
        /// come from a corrupted snapshot, never from `state()`.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256++ state must not be all zero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (`shuffle`, `choose`) matching the upstream
    /// `rand::seq::SliceRandom` call sites.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, multiply-shift bounded index like gen_range.
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_handles_signed_and_extreme_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut saw_negative = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let x = rng.gen_range(1u64..=u64::MAX);
            assert!(x >= 1);
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = y; // full range: any value is valid
        }
        assert!(saw_negative, "negative half of the range must be reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_only_fails_on_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u32, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
