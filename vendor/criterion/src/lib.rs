//! Vendored, registry-free stand-in for the slice of `criterion` this
//! workspace's benches use: `Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline it runs a short warmup,
//! then timed batches until a wall-clock budget is spent, and prints
//! mean/min per-iteration times. Good enough to smoke-run the benches and
//! get a first-order number; not a replacement for real criterion output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    warmup: Duration,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(200),
            budget: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Named group of benchmarks; the name prefixes each benchmark id.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_owned(),
        }
    }

    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            budget: self.budget,
            iters: 0,
            total: Duration::ZERO,
            best: Duration::MAX,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{:<40} (no iterations run)", id.as_ref());
            return self;
        }
        let mean = b.total / b.iters as u32;
        println!(
            "{:<40} mean {:>12?}  min {:>12?}  ({} iters)",
            id.as_ref(),
            mean,
            b.best,
            b.iters
        );
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub sizes runs by wall-clock
    /// budget rather than sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    iters: u64,
    total: Duration,
    best: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup: run until the warmup window is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        // Measurement: single-iteration timing until the budget is spent.
        let run_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.iters += 1;
            self.total += dt;
            if dt < self.best {
                self.best = dt;
            }
            if run_start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }
}
