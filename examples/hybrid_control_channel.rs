//! Hybrid DTN (§6.2.3): what would RAPID gain from an instant, long-range
//! control radio (e.g. XTEND) carrying its metadata out of band?
//!
//! ```sh
//! cargo run --release --example hybrid_control_channel
//! ```

use rapid_dtn::mobility::{DieselNet, DieselNetConfig};
use rapid_dtn::rapid::{ChannelMode, Rapid, RapidConfig};
use rapid_dtn::sim::workload::pairwise_poisson;
use rapid_dtn::sim::{SimConfig, Simulation, Time, TimeDelta};
use rapid_dtn::stats::stream;

fn main() {
    let fleet = DieselNet::new(
        DieselNetConfig {
            opportunity_mean_bytes: 1.0e6,
            ..DieselNetConfig::default()
        },
        7,
    );
    let day = fleet.generate_day(6);
    let horizon = Time::from_hours(19);
    let mut rng = stream(7, "hybrid-workload");
    let workload = pairwise_poisson(
        &day.on_road,
        TimeDelta::from_secs(360), // 10 packets/hour per pair: loaded
        1024,
        horizon,
        &mut rng,
    );

    for (label, channel, global) in [
        ("in-band control channel", ChannelMode::in_band(), false),
        ("instant global channel", ChannelMode::InstantGlobal, true),
    ] {
        let config = SimConfig {
            nodes: fleet.config().total_buses,
            deadline: Some(TimeDelta::from_secs_f64(2.7 * 3600.0)),
            horizon,
            allow_global_knowledge: global,
            ..SimConfig::default()
        };
        let mut rapid = Rapid::new(
            RapidConfig::avg_delay()
                .with_channel(channel)
                .with_delay_cap(1.5 * horizon.as_secs_f64()),
        );
        let report =
            Simulation::new(config, day.schedule.clone(), workload.clone()).run(&mut rapid);
        println!(
            "{label:<26} delivered {:>5.1}%   avg delay {:>6.1} min   within deadline {:>5.1}%",
            100.0 * report.delivery_rate(),
            report.avg_delay_secs().unwrap_or(f64::NAN) / 60.0,
            100.0 * report.within_deadline_rate(None),
        );
    }
    println!(
        "\nThe instant channel bounds what better control information could buy\n\
         (§6.2.3); the paper saw up to 20 min lower delay and +12% delivery."
    );
}
