//! The paper's motivating application (§1): "a simple news and information
//! application is better served by maximizing the number of news stories
//! delivered before they are outdated, rather than maximizing the number of
//! stories eventually delivered."
//!
//! This example runs the same news workload twice — once with RAPID
//! optimizing average delay, once optimizing the deadline metric (Eq. 2) —
//! and reports how many stories arrive before they go stale.
//!
//! ```sh
//! cargo run --release --example news_deadlines
//! ```

use rapid_dtn::mobility::PowerLaw;
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::pairwise_poisson;
use rapid_dtn::sim::{SimConfig, Simulation, Time, TimeDelta};
use rapid_dtn::stats::stream;

fn main() {
    let nodes = 20;
    let horizon = Time::from_mins(15);
    let staleness = TimeDelta::from_secs(20); // stories outdate quickly

    let mobility = PowerLaw {
        nodes,
        base_mean: TimeDelta::from_secs(150),
        opportunity_bytes: 100 * 1024,
    };
    let mut rng = stream(11, "news-mobility");
    let schedule = mobility.generate(horizon, &mut rng);

    let node_ids: Vec<_> = (0..nodes as u32).map(rapid_dtn::sim::NodeId).collect();
    let mut wl_rng = stream(11, "news-workload");
    // A brisk news feed: ~25 stories per destination per 50 s.
    let workload = pairwise_poisson(
        &node_ids,
        TimeDelta::from_secs_f64(50.0 * (nodes as f64 - 1.0) / 25.0),
        1024,
        horizon,
        &mut wl_rng,
    );
    println!("news workload: {} stories\n", workload.len());

    let config = SimConfig {
        nodes,
        buffer_capacity: 100 * 1024, // tight buffers: triage matters
        deadline: Some(staleness),
        horizon,
        ..SimConfig::default()
    };

    for (label, cfg) in [
        ("minimize average delay", RapidConfig::avg_delay()),
        ("maximize fresh stories", RapidConfig::deadline(staleness)),
    ] {
        let mut rapid = Rapid::new(cfg.with_delay_cap(2.0 * horizon.as_secs_f64()));
        let report =
            Simulation::new(config.clone(), schedule.clone(), workload.clone()).run(&mut rapid);
        println!(
            "{label:<26} fresh: {:>5.1}%   eventually delivered: {:>5.1}%   avg delay: {:>5.1}s",
            100.0 * report.within_deadline_rate(None),
            100.0 * report.delivery_rate(),
            report.avg_delay_secs().unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nThe deadline metric trades eventual deliveries for fresh ones — the\n\
         intentional-routing point of §1: the metric drives the protocol."
    );
}
