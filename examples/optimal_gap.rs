//! How far is RAPID from optimal? (§6.2.4, Fig. 13.)
//!
//! Builds a small day, solves it exactly (the Appendix-D ILP equivalent)
//! and with the scalable bound pair, then runs RAPID on the same instance.
//!
//! ```sh
//! cargo run --release --example optimal_gap
//! ```

use rapid_dtn::optimal::{solve_bounded, solve_exact, ExactLimits};
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::pairwise_poisson;
use rapid_dtn::sim::{NodeId, SimConfig, Simulation, Time, TimeDelta};
use rapid_dtn::stats::stream;

fn main() {
    // A small instance the exact solver can certify: 6 nodes, 40 minutes.
    let nodes = 6;
    let horizon = Time::from_mins(40);
    let mobility = rapid_dtn::mobility::UniformExponential {
        nodes,
        mean_inter_meeting: TimeDelta::from_mins(8),
        opportunity_bytes: 2 * 1024, // two packets per meeting: contention
    };
    let mut rng = stream(3, "optimal-example");
    let schedule = mobility.generate(horizon, &mut rng);
    let ids: Vec<_> = (0..nodes as u32).map(NodeId).collect();
    let workload = pairwise_poisson(
        &ids,
        TimeDelta::from_mins(30),
        1024,
        Time::from_mins(20),
        &mut rng,
    );
    println!(
        "instance: {} contacts, {} packets",
        schedule.len(),
        workload.len()
    );

    let bounds = solve_bounded(&schedule, &workload, horizon);
    println!(
        "optimal lower bound : {:>6.1} s avg delay ({} delivered)",
        bounds.lower_bound_avg_delay_secs, bounds.lower_bound_delivered
    );
    println!(
        "greedy feasible     : {:>6.1} s avg delay ({} delivered, gap {:.1}%)",
        bounds.feasible_avg_delay_secs,
        bounds.feasible_delivered,
        100.0 * bounds.gap()
    );
    if let Some(exact) = solve_exact(&schedule, &workload, horizon, ExactLimits::default()) {
        println!(
            "exact (ILP equiv.)  : {:>6.1} s avg delay ({} delivered)",
            exact.avg_delay_secs, exact.delivered
        );
    } else {
        println!("exact solver        : instance too large, bounds only");
    }

    let config = SimConfig {
        nodes,
        horizon,
        deadline: Some(TimeDelta::from_mins(10)),
        ..SimConfig::default()
    };
    let mut rapid =
        Rapid::new(RapidConfig::avg_delay().with_delay_cap(1.5 * horizon.as_secs_f64()));
    let report = Simulation::new(config, schedule, workload).run(&mut rapid);
    println!(
        "RAPID (online)      : {:>6.1} s avg delay incl. undelivered ({} delivered)",
        report.avg_delay_with_undelivered_secs().unwrap_or(f64::NAN),
        report.delivered()
    );
    println!(
        "\nTheorems 1-2 say no online or efficient algorithm can close this gap\n\
         in general; RAPID's heuristic lands near the offline optimum here."
    );
}
