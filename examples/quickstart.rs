//! Quickstart: a four-node DTN, a handful of packets, RAPID routing.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::{PacketSpec, Workload};
use rapid_dtn::sim::{Contact, NodeId, Routing, Schedule, SimConfig, Simulation, Time, TimeDelta};

fn main() {
    // Four nodes. Node 0 wants to reach node 3, but they never meet:
    // delivery must relay through 1 or 2.
    let schedule = Schedule::new(vec![
        Contact::new(Time::from_secs(60), NodeId(1), NodeId(3), 64 * 1024),
        Contact::new(Time::from_secs(120), NodeId(1), NodeId(3), 64 * 1024),
        Contact::new(Time::from_secs(200), NodeId(0), NodeId(1), 64 * 1024),
        Contact::new(Time::from_secs(240), NodeId(0), NodeId(2), 64 * 1024),
        Contact::new(Time::from_secs(300), NodeId(1), NodeId(3), 64 * 1024),
        Contact::new(Time::from_secs(400), NodeId(2), NodeId(3), 64 * 1024),
    ]);

    let workload = Workload::new(vec![
        PacketSpec {
            time: Time::from_secs(10),
            src: NodeId(0),
            dst: NodeId(3),
            size_bytes: 1024,
        },
        PacketSpec {
            time: Time::from_secs(150),
            src: NodeId(0),
            dst: NodeId(3),
            size_bytes: 1024,
        },
    ]);

    let config = SimConfig {
        nodes: 4,
        deadline: Some(TimeDelta::from_mins(10)),
        horizon: Time::from_mins(20),
        ..SimConfig::default()
    };

    let mut rapid = Rapid::new(RapidConfig::avg_delay());
    let report = Simulation::new(config, schedule, workload).run(&mut rapid);

    println!("protocol        : {}", rapid.name());
    println!("packets created : {}", report.created());
    println!("packets delivered: {}", report.delivered());
    println!(
        "average delay   : {:.1} s",
        report.avg_delay_secs().unwrap_or(f64::NAN)
    );
    println!("replications    : {}", report.replications);
    println!(
        "control channel : {} bytes ({:.2}% of data)",
        report.metadata_bytes,
        100.0 * report.metadata_over_data()
    );
    for o in &report.outcomes {
        match o.delivered_at {
            Some(at) => println!(
                "  {} {}→{} delivered at {} (delay {})",
                o.id,
                o.src,
                o.dst,
                at,
                at.since(o.created_at)
            ),
            None => println!("  {} {}→{} not delivered", o.id, o.src, o.dst),
        }
    }
    assert_eq!(report.delivered(), 2, "both packets should arrive");
}
