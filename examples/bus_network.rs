//! A DieselNet-style day: 40 buses, rotating daily schedules, heavy-tailed
//! link capacities — RAPID head-to-head with MaxProp, Spray and Wait and
//! Random on the same day.
//!
//! ```sh
//! cargo run --release --example bus_network
//! ```

use rapid_dtn::mobility::{DieselNet, DieselNetConfig};
use rapid_dtn::protocols::{MaxProp, Random, SprayAndWait};
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::pairwise_poisson;
use rapid_dtn::sim::{Routing, SimConfig, Simulation, Time, TimeDelta};
use rapid_dtn::stats::stream;

fn main() {
    let fleet = DieselNet::new(DieselNetConfig::default(), 42);
    let day = fleet.generate_day(3);
    println!(
        "day 3: {} buses on the road, {} meetings",
        day.on_road.len(),
        day.schedule.len()
    );

    // The deployment's default load: 4 packets/hour per source-destination
    // pair of on-road buses (§5.1).
    let horizon = Time::from_hours(19);
    let mut rng = stream(42, "example-workload");
    let workload = pairwise_poisson(
        &day.on_road,
        TimeDelta::from_secs(900),
        1024,
        horizon,
        &mut rng,
    );
    println!("workload: {} packets of 1 KB\n", workload.len());

    let config = SimConfig {
        nodes: fleet.config().total_buses,
        deadline: Some(TimeDelta::from_secs_f64(2.7 * 3600.0)),
        horizon,
        ..SimConfig::default()
    };

    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>10}",
        "protocol", "delivered", "avg delay", "max delay", "meta/data"
    );
    let mut protocols: Vec<Box<dyn Routing>> = vec![
        Box::new(Rapid::new(RapidConfig::avg_delay())),
        Box::new(MaxProp::new()),
        Box::new(SprayAndWait::new()),
        Box::new(Random::new()),
    ];
    for routing in &mut protocols {
        let sim = Simulation::new(config.clone(), day.schedule.clone(), workload.clone());
        let report = sim.run(routing.as_mut());
        println!(
            "{:<22} {:>8.1}% {:>9.1} min {:>9.1} min {:>9.2}%",
            routing.name(),
            100.0 * report.delivery_rate(),
            report.avg_delay_secs().unwrap_or(f64::NAN) / 60.0,
            report.max_delay_secs().unwrap_or(f64::NAN) / 60.0,
            100.0 * report.metadata_over_data(),
        );
    }
}
