//! Facade crate re-exporting the whole RAPID reproduction workspace.
pub use dtn_mobility as mobility;
pub use dtn_optimal as optimal;
pub use dtn_protocols as protocols;
pub use dtn_sim as sim;
pub use dtn_stats as stats;
pub use dtn_trace as trace;
pub use rapid_core as rapid;
