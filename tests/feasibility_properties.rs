//! Property-based feasibility tests: random small DTN instances across
//! every protocol must respect the §3.1 feasibility rules and the optimal
//! lower bound, for *any* inputs.

use proptest::prelude::*;
use rapid_dtn::optimal::earliest_arrivals;
use rapid_dtn::protocols::{Epidemic, MaxProp, Prophet, Random, SprayAndWait};
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::{PacketSpec, Workload};
use rapid_dtn::sim::{Contact, NodeId, Routing, Schedule, SimConfig, Simulation, Time, TimeDelta};

const NODES: usize = 6;

fn arb_contact() -> impl Strategy<Value = Contact> {
    (0u64..2_000, 0u32..NODES as u32, 0u32..NODES as u32, 1u64..8)
        .prop_filter("distinct endpoints", |(_, a, b, _)| a != b)
        .prop_map(|(t, a, b, kb)| Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), kb * 1024))
}

fn arb_spec() -> impl Strategy<Value = PacketSpec> {
    (0u64..1_500, 0u32..NODES as u32, 0u32..NODES as u32)
        .prop_filter("distinct endpoints", |(_, s, d)| s != d)
        .prop_map(|(t, src, dst)| PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        })
}

fn protocols() -> Vec<Box<dyn Routing>> {
    vec![
        Box::new(Rapid::new(RapidConfig::avg_delay().with_delay_cap(4000.0))),
        Box::new(Rapid::new(
            RapidConfig::deadline(TimeDelta::from_secs(300)).with_delay_cap(4000.0),
        )),
        Box::new(Rapid::new(RapidConfig::max_delay().with_delay_cap(4000.0))),
        Box::new(MaxProp::new()),
        Box::new(SprayAndWait::new()),
        Box::new(Prophet::new()),
        Box::new(Random::new()),
        Box::new(Epidemic::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_protocols_respect_feasibility(
        contacts in prop::collection::vec(arb_contact(), 1..40),
        specs in prop::collection::vec(arb_spec(), 1..25),
        tight_buffers in any::<bool>(),
    ) {
        let schedule = Schedule::new(contacts);
        let workload = Workload::new(specs);
        let config = SimConfig {
            nodes: NODES,
            buffer_capacity: if tight_buffers { 3 * 1024 } else { u64::MAX },
            deadline: Some(TimeDelta::from_secs(300)),
            horizon: Time::from_secs(2_500),
            ..SimConfig::default()
        };
        for mut routing in protocols() {
            let report = Simulation::new(
                config.clone(),
                schedule.clone(),
                workload.clone(),
            )
            .run(routing.as_mut());

            // Conservation: outcomes cover exactly the workload.
            prop_assert_eq!(report.created(), workload.len());

            // Bandwidth feasibility: bytes moved never exceed offered.
            prop_assert!(
                report.data_bytes + report.metadata_bytes <= report.offered_bytes,
                "{}: moved more bytes than offered", routing.name()
            );

            // Causality: every delivery is at or after the uncapacitated
            // earliest arrival, and never before creation.
            for o in &report.outcomes {
                if let Some(at) = o.delivered_at {
                    prop_assert!(at >= o.created_at);
                    let arr = earliest_arrivals(&schedule, NODES, o.src, o.created_at);
                    let bound = arr[o.dst.index()];
                    prop_assert!(
                        bound.is_some() && at >= bound.unwrap().0,
                        "{}: impossible delivery of {} at {at}",
                        routing.name(), o.id
                    );
                }
            }

            // Metrics are well-formed.
            let rate = report.delivery_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
            let wd = report.within_deadline_rate(None);
            prop_assert!((0.0..=1.0).contains(&wd));
            prop_assert!(wd <= rate + 1e-12, "within-deadline ⊆ delivered");
        }
    }

    #[test]
    fn runs_are_deterministic(
        contacts in prop::collection::vec(arb_contact(), 1..25),
        specs in prop::collection::vec(arb_spec(), 1..15),
    ) {
        let schedule = Schedule::new(contacts);
        let workload = Workload::new(specs);
        let config = SimConfig {
            nodes: NODES,
            horizon: Time::from_secs(2_500),
            ..SimConfig::default()
        };
        for make in [
            || -> Box<dyn Routing> { Box::new(Rapid::new(RapidConfig::avg_delay())) },
            || -> Box<dyn Routing> { Box::new(Random::new()) },
            || -> Box<dyn Routing> { Box::new(MaxProp::new()) },
        ] {
            let r1 = Simulation::new(config.clone(), schedule.clone(), workload.clone())
                .run(make().as_mut());
            let r2 = Simulation::new(config.clone(), schedule.clone(), workload.clone())
                .run(make().as_mut());
            prop_assert_eq!(r1, r2);
        }
    }
}
