//! The simulator must recover the closed forms of §4.1.1 on uniform
//! exponential mobility — the analytical ground the Estimate Delay
//! machinery is built on.

use rapid_dtn::mobility::UniformExponential;
use rapid_dtn::sim::workload::{PacketSpec, Workload};
use rapid_dtn::sim::{
    ContactDriver, NodeId, Routing, SimConfig, Simulation, Time, TimeDelta, TransferOutcome,
};
use rapid_dtn::stats::{stream, Summary};

/// Direct-delivery-only protocol: the source holds its packet until it
/// meets the destination (no replication) — so delivery delay is exactly
/// one source–destination inter-meeting time.
struct DirectOnly;

impl Routing for DirectOnly {
    fn name(&self) -> String {
        "direct-only".into()
    }
    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            let to = driver.peer_of(from);
            for id in driver.buffer(from).ids() {
                if driver.packets().get(id).dst == to {
                    let _ = driver.try_transfer(from, id);
                }
            }
        }
    }
}

#[test]
fn direct_delivery_delay_matches_mean_inter_meeting_time() {
    // With exponential pairwise meetings of mean M, the expected wait from
    // a random instant until the next meeting is M (memorylessness).
    let mean = 50.0;
    let nodes = 8;
    let horizon = Time::from_secs(40_000);
    let mut delays = Summary::new();
    for run in 0..8u64 {
        let mobility = UniformExponential {
            nodes,
            mean_inter_meeting: TimeDelta::from_secs_f64(mean),
            opportunity_bytes: 10 * 1024,
        };
        let mut rng = stream(run, "analytic");
        let schedule = mobility.generate(horizon, &mut rng);
        // Packets early in the run so nearly all get delivered.
        let workload = Workload::new(
            (0..40)
                .map(|k| PacketSpec {
                    time: Time::from_secs(10 * k),
                    src: NodeId((k % nodes as u64) as u32),
                    dst: NodeId(((k + 3) % nodes as u64) as u32),
                    size_bytes: 1024,
                })
                .collect(),
        );
        let config = SimConfig {
            nodes,
            horizon,
            ..SimConfig::default()
        };
        let report = Simulation::new(config, schedule, workload).run(&mut DirectOnly);
        assert!(report.delivery_rate() > 0.95, "long horizon delivers all");
        for d in report.delivered_delays_secs() {
            delays.observe(d);
        }
    }
    let measured = delays.mean().unwrap();
    assert!(
        (measured - mean).abs() < mean * 0.15,
        "measured mean delay {measured:.1}s, expected ≈ {mean}s"
    );
}

/// The source sprays its packet to the first `k − 1` relays it meets, then
/// all holders deliver directly: exactly k replicas racing — Eq. 8's
/// min-of-exponentials.
struct FloodK {
    k: usize,
    sprayed: std::collections::HashMap<u32, usize>,
}

impl FloodK {
    fn new(k: usize) -> Self {
        Self {
            k,
            sprayed: std::collections::HashMap::new(),
        }
    }
}

impl Routing for FloodK {
    fn name(&self) -> String {
        format!("flood-{}", self.k)
    }
    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            let to = driver.peer_of(from);
            for id in driver.buffer(from).ids() {
                let p = driver.packets().get(id);
                if p.dst == to {
                    let _ = driver.try_transfer(from, id);
                } else if p.src == from
                    && *self.sprayed.entry(id.0).or_insert(0) < self.k - 1
                    && !driver.buffer(to).contains(id)
                    && driver.try_transfer(from, id) == TransferOutcome::Replicated
                {
                    *self.sprayed.get_mut(&id.0).expect("inserted above") += 1;
                }
            }
        }
    }
}

#[test]
fn replication_reduces_delay_towards_one_over_k_lambda() {
    // §4.1.1: with k replicas and rate λ, A(i) = 1/(kλ). We check the
    // direction and rough magnitude: more replicas ⇒ shorter delays, and
    // the 1-replica case sits near 1/λ.
    let mean = 60.0;
    let nodes = 10;
    let horizon = Time::from_secs(30_000);
    let mut means = Vec::new();
    for k in [1usize, 4] {
        let mut delays = Summary::new();
        for run in 0..6u64 {
            let mobility = UniformExponential {
                nodes,
                mean_inter_meeting: TimeDelta::from_secs_f64(mean),
                opportunity_bytes: 100 * 1024,
            };
            let mut rng = stream(100 + run, "analytic-k");
            let schedule = mobility.generate(horizon, &mut rng);
            let workload = Workload::new(
                (0..30)
                    .map(|j| PacketSpec {
                        time: Time::from_secs(20 * j),
                        src: NodeId((j % nodes as u64) as u32),
                        dst: NodeId(((j + 5) % nodes as u64) as u32),
                        size_bytes: 1024,
                    })
                    .collect(),
            );
            let config = SimConfig {
                nodes,
                horizon,
                ..SimConfig::default()
            };
            let report = Simulation::new(config, schedule, workload).run(&mut FloodK::new(k));
            for d in report.delivered_delays_secs() {
                delays.observe(d);
            }
        }
        means.push(delays.mean().unwrap());
    }
    let (m1, m4) = (means[0], means[1]);
    assert!(
        m1 > m4 * 1.5,
        "4-way replication must clearly beat forwarding: {m1:.1}s vs {m4:.1}s"
    );
    assert!(
        (m1 - mean).abs() < mean * 0.35,
        "single-copy delay {m1:.1}s should sit near 1/λ = {mean}s"
    );
}
