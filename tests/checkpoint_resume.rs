//! Crash-safe run properties: a run checkpointed at time T and resumed
//! from the snapshot must finish byte-identical to the uninterrupted run —
//! under the serial engine and the sharded runtime, at any shard count,
//! from a snapshot written by either runtime (the format captures only
//! global serial-order state), for both a stateful protocol (RAPID, via
//! `Routing::save_state`/`load_state`) and a stateless one (Epidemic).

use proptest::prelude::*;
use rapid_dtn::protocols::Epidemic;
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::contact::Schedule;
use rapid_dtn::sim::workload::{PacketSpec, Workload};
use rapid_dtn::sim::{
    load_latest, run_sharded_hooked, run_streaming_hooked, Checkpointer, CompiledPlan,
    ContactWindow, NodeEvent, NodeId, Partition, Routing, RunHooks, SimConfig, SimReport, Snapshot,
    Time, TimeDelta,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A self-contained deterministic run: everything the engine pulls.
#[derive(Clone)]
struct Scenario {
    config: SimConfig,
    windows: Vec<ContactWindow>,
    specs: Vec<PacketSpec>,
    churn: Vec<NodeEvent>,
}

impl Scenario {
    /// The engine pulls sources in nondecreasing time order; route the raw
    /// vectors through `Schedule`/`Workload` to get their canonical sort.
    fn normalized(mut self) -> Self {
        self.windows = Schedule::new(self.windows).windows().to_vec();
        self.specs = Workload::new(self.specs).specs().to_vec();
        self
    }

    fn run_serial(&self, routing: &mut dyn Routing, hooks: RunHooks<'_>) -> SimReport {
        run_streaming_hooked(
            &self.config,
            &mut self.windows.iter().copied(),
            &mut self.specs.iter().copied(),
            &self.churn,
            None,
            routing,
            hooks,
        )
    }

    /// Same run through the compressed-plan streaming source.
    fn run_serial_compiled(&self, routing: &mut dyn Routing, hooks: RunHooks<'_>) -> SimReport {
        let plan = Arc::new(CompiledPlan::compress(self.windows.iter().copied()));
        run_streaming_hooked(
            &self.config,
            &mut plan.stream(),
            &mut self.specs.iter().copied(),
            &self.churn,
            None,
            routing,
            hooks,
        )
    }

    fn run_sharded(
        &self,
        shards: usize,
        factory: &mut dyn FnMut() -> Box<dyn Routing + Send>,
        hooks: RunHooks<'_>,
    ) -> SimReport {
        run_sharded_hooked(
            &self.config,
            &Partition::even(self.config.nodes, shards),
            &mut self.windows.iter().copied(),
            &mut self.specs.iter().copied(),
            &self.churn,
            None,
            factory,
            hooks,
        )
        .0
    }
}

/// The shard tests' 9-node scenario: churn interrupting a durative window,
/// TTL expiry, cross-shard traffic — every event kind a snapshot carries.
fn scenario() -> Scenario {
    let spec = |t, src, dst, size| PacketSpec {
        time: Time::from_secs(t),
        src: NodeId(src),
        dst: NodeId(dst),
        size_bytes: size,
    };
    Scenario {
        config: SimConfig {
            nodes: 9,
            buffer_capacity: 4096,
            horizon: Time::from_secs(300),
            ttl: Some(TimeDelta::from_secs(60)),
            seed: 7,
            ..SimConfig::default()
        },
        windows: vec![
            ContactWindow::instant(Time::from_secs(10), NodeId(0), NodeId(1), 4096),
            ContactWindow::instant(Time::from_secs(20), NodeId(2), NodeId(3), 4096),
            ContactWindow::new(
                Time::from_secs(25),
                Time::from_secs(80),
                NodeId(4),
                NodeId(5),
                64,
            ),
            ContactWindow::instant(Time::from_secs(40), NodeId(6), NodeId(7), 4096),
            ContactWindow::instant(Time::from_secs(90), NodeId(8), NodeId(0), 4096),
            ContactWindow::instant(Time::from_secs(50), NodeId(4), NodeId(5), 4096),
            ContactWindow::instant(Time::from_secs(120), NodeId(0), NodeId(8), 4096),
            ContactWindow::instant(Time::from_secs(150), NodeId(3), NodeId(8), 4096),
        ],
        specs: vec![
            spec(1, 0, 2, 512),
            spec(2, 1, 8, 512),
            spec(3, 4, 5, 1024),
            spec(35, 6, 3, 512),
            spec(50, 5, 6, 512),
            spec(100, 0, 3, 512),
        ],
        churn: vec![
            NodeEvent {
                time: Time::from_secs(45),
                node: NodeId(5),
                up: false,
            },
            NodeEvent {
                time: Time::from_secs(85),
                node: NodeId(5),
                up: true,
            },
        ],
    }
    .normalized()
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "rapid-resume-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn snapshots_in(dir: &PathBuf) -> Vec<Snapshot> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rsnp"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| Snapshot::decode(&std::fs::read(p).unwrap()).expect("well-formed snapshot"))
        .collect()
}

fn rapid() -> Box<dyn Routing + Send> {
    Box::new(Rapid::new(RapidConfig::avg_delay()))
}

fn resume_hooks(snap: Snapshot) -> RunHooks<'static> {
    RunHooks {
        resume: Some(snap),
        ..RunHooks::default()
    }
}

/// Serial engine, RAPID: checkpointing does not perturb the run, and a
/// resume from *every* snapshot taken along the way finishes identically.
#[test]
fn serial_rapid_resume_from_each_checkpoint_is_identical() {
    let sc = scenario();
    let reference = sc.run_serial(rapid().as_mut(), RunHooks::default());
    assert!(reference.delivered() >= 1, "scenario must be non-trivial");

    let dir = temp_dir("serial-rapid");
    let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(40), 64).unwrap();
    let checkpointed = sc.run_serial(
        rapid().as_mut(),
        RunHooks {
            checkpoint: Some(&mut ckpt),
            ..RunHooks::default()
        },
    );
    assert_eq!(checkpointed, reference, "checkpointing perturbed the run");

    let snaps = snapshots_in(&dir);
    assert!(
        snaps.len() >= 3,
        "expected several snapshots, got {}",
        snaps.len()
    );
    for (i, snap) in snaps.into_iter().enumerate() {
        let resumed = sc.run_serial(rapid().as_mut(), resume_hooks(snap));
        assert_eq!(resumed, reference, "resume from snapshot {i} diverged");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Stateless protocols need no `save_state`: Epidemic resumes exactly.
#[test]
fn serial_epidemic_resume_is_identical() {
    let sc = scenario();
    let reference = sc.run_serial(&mut Epidemic::new(), RunHooks::default());

    let dir = temp_dir("serial-epidemic");
    let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(60), 64).unwrap();
    let checkpointed = sc.run_serial(
        &mut Epidemic::new(),
        RunHooks {
            checkpoint: Some(&mut ckpt),
            ..RunHooks::default()
        },
    );
    assert_eq!(checkpointed, reference);

    for snap in snapshots_in(&dir) {
        let resumed = sc.run_serial(&mut Epidemic::new(), resume_hooks(snap));
        assert_eq!(resumed, reference);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Snapshots are runtime- and partition-independent: one written by the
/// serial engine restores under the sharded runtime at any shard count,
/// and one written by a 3-shard director restores serially and at other
/// shard counts — all byte-identical to the uninterrupted run.
#[test]
fn snapshots_cross_runtimes_and_shard_counts() {
    let sc = scenario();
    let reference = sc.run_serial(rapid().as_mut(), RunHooks::default());

    // Serial-written snapshot → sharded resume.
    let dir = temp_dir("cross-serial");
    let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(70), 64).unwrap();
    let _ = sc.run_serial(
        rapid().as_mut(),
        RunHooks {
            checkpoint: Some(&mut ckpt),
            ..RunHooks::default()
        },
    );
    let latest = load_latest(&dir).unwrap().expect("snapshots written");
    assert!(latest.skipped.is_empty());
    for shards in [1, 2, 4] {
        let resumed = sc.run_sharded(shards, &mut rapid, resume_hooks(latest.snapshot.clone()));
        assert_eq!(
            resumed, reference,
            "serial snapshot on {shards} shards diverged"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();

    // Sharded-written snapshot → serial and differently-sharded resumes.
    let dir = temp_dir("cross-sharded");
    let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(70), 64).unwrap();
    let sharded = sc.run_sharded(
        3,
        &mut rapid,
        RunHooks {
            checkpoint: Some(&mut ckpt),
            ..RunHooks::default()
        },
    );
    assert_eq!(sharded, reference, "sharded checkpointed run diverged");
    let latest = load_latest(&dir).unwrap().expect("snapshots written");
    let resumed = sc.run_serial(rapid().as_mut(), resume_hooks(latest.snapshot.clone()));
    assert_eq!(
        resumed, reference,
        "sharded snapshot on serial engine diverged"
    );
    for shards in [2, 4] {
        let resumed = sc.run_sharded(shards, &mut rapid, resume_hooks(latest.snapshot.clone()));
        assert_eq!(
            resumed, reference,
            "sharded snapshot on {shards} shards diverged"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The compressed-plan streaming source supports resume too (the snapshot
/// replays source positions by count, whatever the source's shape).
#[test]
fn compiled_plan_source_resumes_identically() {
    let sc = scenario();
    let reference = sc.run_serial_compiled(rapid().as_mut(), RunHooks::default());
    assert_eq!(
        reference,
        sc.run_serial(rapid().as_mut(), RunHooks::default()),
        "compiled plan must replay the raw schedule exactly"
    );

    let dir = temp_dir("compiled");
    let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(40), 64).unwrap();
    let _ = sc.run_serial_compiled(
        rapid().as_mut(),
        RunHooks {
            checkpoint: Some(&mut ckpt),
            ..RunHooks::default()
        },
    );
    for snap in snapshots_in(&dir) {
        let resumed = sc.run_serial_compiled(rapid().as_mut(), resume_hooks(snap));
        assert_eq!(resumed, reference);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save at an arbitrary point → restore → run to end == uninterrupted,
    /// across proptest-chosen contact plans, workloads, churn, TTL,
    /// checkpoint cadence, runtimes and shard counts, for both protocols.
    #[test]
    fn resume_matches_uninterrupted_run(
        contacts in prop::collection::vec((0u16..400, 0u8..5, 0u8..5, 256u16..4096, 0u16..40), 1..24),
        specs in prop::collection::vec((0u16..380, 0u8..5, 0u8..5), 1..24),
        churn in prop::collection::vec((0u16..400, 0u8..5, any::<bool>()), 0..5),
        capacity in 1024u64..6_000,
        with_ttl in any::<bool>(),
        every_s in 20u64..120,
        use_rapid in any::<bool>(),
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let n = 5u8;
        let windows = contacts
            .into_iter()
            .map(|(t, a, b, bytes, dur)| {
                let a = a % n;
                let b = if b % n == a { (a + 1) % n } else { b % n };
                let start = Time::from_secs(u64::from(t));
                if dur == 0 {
                    ContactWindow::instant(start, NodeId(a.into()), NodeId(b.into()), bytes.into())
                } else {
                    ContactWindow::new(
                        start,
                        start + TimeDelta::from_secs(u64::from(dur)),
                        NodeId(a.into()),
                        NodeId(b.into()),
                        64,
                    )
                }
            })
            .collect();
        let specs = specs
            .into_iter()
            .map(|(t, src, dst)| {
                let src = src % n;
                let dst = if dst % n == src { (src + 1) % n } else { dst % n };
                PacketSpec {
                    time: Time::from_secs(u64::from(t)),
                    src: NodeId(src.into()),
                    dst: NodeId(dst.into()),
                    size_bytes: 512,
                }
            })
            .collect();
        let churn = churn
            .into_iter()
            .map(|(t, node, up)| NodeEvent {
                time: Time::from_secs(u64::from(t)),
                node: NodeId(u32::from(node % n)),
                up,
            })
            .collect();
        let sc = Scenario {
            config: SimConfig {
                nodes: n as usize,
                buffer_capacity: capacity,
                horizon: Time::from_secs(450),
                ttl: with_ttl.then_some(TimeDelta::from_secs(90)),
                seed: 11,
                ..SimConfig::default()
            },
            windows,
            specs,
            churn,
        }
        .normalized();
        let mut fresh: Box<dyn FnMut() -> Box<dyn Routing + Send>> = if use_rapid {
            Box::new(rapid)
        } else {
            Box::new(|| Box::new(Epidemic::new()))
        };

        let reference = sc.run_serial(fresh().as_mut(), RunHooks::default());

        let dir = temp_dir("prop");
        let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(every_s), 64).unwrap();
        let checkpointed = sc.run_serial(
            fresh().as_mut(),
            RunHooks { checkpoint: Some(&mut ckpt), ..RunHooks::default() },
        );
        prop_assert_eq!(&checkpointed, &reference);

        if let Some(loaded) = load_latest(&dir).unwrap() {
            let resumed = if shards == 1 {
                sc.run_serial(fresh().as_mut(), resume_hooks(loaded.snapshot))
            } else {
                sc.run_sharded(shards, &mut fresh, resume_hooks(loaded.snapshot))
            };
            prop_assert_eq!(&resumed, &reference);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
