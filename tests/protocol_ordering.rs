//! Cross-crate integration: the qualitative orderings the paper reports
//! must hold on a standard synthetic scenario.

use rapid_dtn::mobility::UniformExponential;
use rapid_dtn::optimal::solve_bounded;
use rapid_dtn::protocols::{MaxProp, Random, SprayAndWait};
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::pairwise_poisson;
use rapid_dtn::sim::workload::Workload;
use rapid_dtn::sim::{
    NodeId, Routing, Schedule, SimConfig, SimReport, Simulation, Time, TimeDelta,
};
use rapid_dtn::stats::stream;

fn scenario(seed: u64) -> (SimConfig, Schedule, Workload) {
    let nodes = 12;
    let horizon = Time::from_mins(15);
    let mobility = UniformExponential {
        nodes,
        mean_inter_meeting: TimeDelta::from_secs(120),
        opportunity_bytes: 20 * 1024, // 20 packets per meeting
    };
    let mut rng = stream(seed, "ordering-mobility");
    let schedule = mobility.generate(horizon, &mut rng);
    let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
    let workload = pairwise_poisson(&ids, TimeDelta::from_secs(200), 1024, horizon, &mut rng);
    let config = SimConfig {
        nodes,
        buffer_capacity: 200 * 1024,
        deadline: Some(TimeDelta::from_secs(60)),
        horizon,
        ..SimConfig::default()
    };
    (config, schedule, workload)
}

fn run(seed: u64, routing: &mut dyn Routing) -> SimReport {
    let (config, schedule, workload) = scenario(seed);
    Simulation::new(config, schedule, workload).run(routing)
}

#[test]
fn rapid_beats_random_on_both_headline_metrics() {
    let mut rapid_wins_delivery = 0;
    let mut rapid_wins_delay = 0;
    let trials = 3;
    for seed in 0..trials {
        let rapid = run(
            seed,
            &mut Rapid::new(RapidConfig::avg_delay().with_delay_cap(2000.0)),
        );
        let random = run(seed, &mut Random::new());
        if rapid.delivery_rate() >= random.delivery_rate() {
            rapid_wins_delivery += 1;
        }
        if rapid.avg_delay_with_undelivered_secs().unwrap()
            <= random.avg_delay_with_undelivered_secs().unwrap()
        {
            rapid_wins_delay += 1;
        }
    }
    assert!(
        rapid_wins_delivery >= trials - 1,
        "RAPID must deliver at least as much as Random ({rapid_wins_delivery}/{trials})"
    );
    assert!(
        rapid_wins_delay >= trials - 1,
        "RAPID must beat Random on delay ({rapid_wins_delay}/{trials})"
    );
}

#[test]
fn every_protocol_is_bounded_by_optimal() {
    // No protocol may beat the uncapacitated optimal lower bound on the
    // delay-including-undelivered objective.
    let (config, schedule, workload) = scenario(9);
    let bounds = solve_bounded(&schedule, &workload, config.horizon);
    let lb = bounds.lower_bound_avg_delay_secs;

    let mut protocols: Vec<Box<dyn Routing>> = vec![
        Box::new(Rapid::new(RapidConfig::avg_delay().with_delay_cap(2000.0))),
        Box::new(MaxProp::new()),
        Box::new(SprayAndWait::new()),
        Box::new(Random::new()),
    ];
    for routing in &mut protocols {
        let report = Simulation::new(config.clone(), schedule.clone(), workload.clone())
            .run(routing.as_mut());
        let achieved = report.avg_delay_with_undelivered_secs().unwrap();
        assert!(
            achieved + 1e-6 >= lb,
            "{} achieved {achieved:.1}s, below the optimal bound {lb:.1}s",
            routing.name()
        );
        // And nobody delivers more than uncapacitated reachability allows.
        assert!(report.delivered() <= bounds.lower_bound_delivered);
    }
}

#[test]
fn per_packet_delays_respect_earliest_arrival() {
    // Stronger per-packet invariant: no protocol can deliver a packet
    // earlier than its uncapacitated earliest arrival.
    let (config, schedule, workload) = scenario(5);
    let nodes = config.nodes;
    let mut rapid = Rapid::new(RapidConfig::avg_delay().with_delay_cap(2000.0));
    let report = Simulation::new(config, schedule.clone(), workload).run(&mut rapid);
    for o in &report.outcomes {
        let Some(at) = o.delivered_at else { continue };
        let arr = rapid_dtn::optimal::earliest_arrivals(&schedule, nodes, o.src, o.created_at);
        let bound = arr[o.dst.index()].expect("delivered ⇒ reachable").0;
        assert!(
            at >= bound,
            "{} delivered at {at} before earliest possible {bound}",
            o.id
        );
    }
}

#[test]
fn identical_inputs_identical_reports_across_protocol_instances() {
    let a = run(3, &mut Rapid::new(RapidConfig::avg_delay()));
    let b = run(3, &mut Rapid::new(RapidConfig::avg_delay()));
    assert_eq!(a, b);
    let c = run(3, &mut SprayAndWait::new());
    let d = run(3, &mut SprayAndWait::new());
    assert_eq!(c, d);
}
