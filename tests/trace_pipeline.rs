//! End-to-end trace pipeline: generate a synthetic DieselNet fleet,
//! persist it through the trace format, reload, and verify the simulation
//! is bit-identical to running on the original in-memory schedule.

use rapid_dtn::mobility::{DieselNet, DieselNetConfig};
use rapid_dtn::rapid::{Rapid, RapidConfig};
use rapid_dtn::sim::workload::pairwise_poisson;
use rapid_dtn::sim::{Schedule, SimConfig, Simulation, Time, TimeDelta};
use rapid_dtn::stats::stream;
use rapid_dtn::trace;

#[test]
fn persisted_trace_reproduces_the_run() {
    let fleet = DieselNet::new(DieselNetConfig::default(), 21);
    let days = fleet.generate_days(2);

    // Persist and reload through the text format.
    let text = DieselNet::to_trace(&days).to_string_format();
    let parsed = trace::parse(&text).expect("round trip");

    for day in &days {
        let rebuilt = Schedule::from_records(&parsed.contacts_on(day.day));
        assert_eq!(rebuilt, day.schedule, "schedule survives serialization");

        let mut rng = stream(99, "pipeline-workload");
        let horizon = Time::from_hours(19);
        let workload = pairwise_poisson(
            &day.on_road,
            TimeDelta::from_secs(1800),
            1024,
            horizon,
            &mut rng,
        );
        let config = SimConfig {
            nodes: 40,
            horizon,
            deadline: Some(TimeDelta::from_hours(2)),
            ..SimConfig::default()
        };
        let from_memory = Simulation::new(config.clone(), day.schedule.clone(), workload.clone())
            .run(&mut Rapid::new(RapidConfig::avg_delay()));
        let from_disk = Simulation::new(config, rebuilt, workload)
            .run(&mut Rapid::new(RapidConfig::avg_delay()));
        assert_eq!(from_memory, from_disk, "bit-identical replay");
    }
}

#[test]
fn trace_rejects_corruption() {
    let fleet = DieselNet::new(DieselNetConfig::default(), 21);
    let days = fleet.generate_days(1);
    let mut text = DieselNet::to_trace(&days).to_string_format();
    // Corrupt a random digit field into a word.
    text = text.replacen("C ", "C x", 1);
    assert!(trace::parse(&text).is_err());
}
