//! The bench runner's crash-retry loop: with `RAPID_CKPT_EVERY_S` set and
//! a scheduled crash fault injected, `run_spec` must recover by resuming
//! from the last good checkpoint and finish with a report byte-identical
//! to an undisturbed run; with the retry budget exhausted it must re-raise
//! instead of quietly returning garbage.
//!
//! One test function on purpose: the knobs live in the process
//! environment, and parallel mutation would race.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{NodeId, Schedule, Time, TimeDelta};
use rapid_bench::{run_spec, ContactsSpec, PacketsSpec, Proto, RunSpec};
use std::sync::atomic::{AtomicU64, Ordering};

fn spec() -> RunSpec {
    let windows = (1..40)
        .map(|i| {
            dtn_sim::ContactWindow::instant(
                Time::from_secs(i * 5),
                NodeId((i % 4) as u32),
                NodeId(((i + 1) % 4) as u32),
                4096,
            )
        })
        .collect();
    let specs = (0..10)
        .map(|i| PacketSpec {
            time: Time::from_secs(i * 13),
            src: NodeId((i % 4) as u32),
            dst: NodeId(((i + 2) % 4) as u32),
            size_bytes: 512,
        })
        .collect();
    RunSpec {
        contacts: ContactsSpec::shared(Schedule::new(windows)),
        packets: PacketsSpec::shared(Workload::new(specs)),
        nodes: 4,
        buffer: 64 << 10,
        deadline: TimeDelta::from_secs(120),
        horizon: Time::from_secs(250),
        seed: 5,
        noise: None,
        measure_from: Time::ZERO,
        churn: Vec::new(),
        ttl: None,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "rapid-bench-resilience-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn injected_crash_recovers_via_checkpoint_resume() {
    let spec = spec();
    // Reference: knobs unset, plain run.
    let reference = run_spec(&spec, Proto::RapidAvg);
    assert!(reference.delivered() >= 1, "scenario must be non-trivial");

    // A crash at sim time 100 s with a 30 s checkpoint cadence: the run
    // dies once, the retry resumes from the last snapshot and finishes.
    let dir = temp_dir("recover");
    std::env::set_var("RAPID_CKPT_EVERY_S", "30");
    std::env::set_var("RAPID_CKPT_DIR", &dir);
    std::env::set_var("RAPID_CKPT_KEEP", "2");
    std::env::set_var("RAPID_FAULT_CRASH_S", "100");
    let recovered = run_spec(&spec, Proto::RapidAvg);
    assert_eq!(recovered, reference, "recovered run diverged");
    // Success cleans up the run's checkpoint directory.
    let leftovers = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftovers, 0, "checkpoints must be pruned after success");

    // Epidemic (stateless) takes the same path.
    std::env::set_var("RAPID_FAULT_CRASH_S", "60");
    let epidemic_ref = {
        std::env::remove_var("RAPID_CKPT_EVERY_S");
        let r = run_spec(&spec, Proto::Epidemic);
        std::env::set_var("RAPID_CKPT_EVERY_S", "30");
        r
    };
    assert_eq!(run_spec(&spec, Proto::Epidemic), epidemic_ref);

    // Retry budget 1: the injected crash must surface, not be swallowed.
    std::env::set_var("RAPID_CKPT_RETRIES", "1");
    std::env::set_var("RAPID_FAULT_CRASH_S", "100");
    let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_spec(&spec, Proto::RapidAvg)
    }));
    assert!(died.is_err(), "with no retries the crash must propagate");

    for knob in [
        "RAPID_CKPT_EVERY_S",
        "RAPID_CKPT_DIR",
        "RAPID_CKPT_KEEP",
        "RAPID_CKPT_RETRIES",
        "RAPID_FAULT_CRASH_S",
    ] {
        std::env::remove_var(knob);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
