//! Intra-run parallel equivalence: `RAPID_INTRA_JOBS > 1` must be
//! observationally identical to the serial engine — same reports, and
//! byte-identical figure TSVs.
//!
//! Everything lives in **one** test function: the figure plans and the
//! `RAPID_INTRA_JOBS` knob are driven through process environment
//! variables, so concurrent tests in this binary would race on them.

use dtn_mobility::ScaleFleet;
use dtn_sim::{Time, TimeDelta};
use rapid_bench::registry;
use rapid_bench::runner::{run_spec, ContactsSpec, PacketsSpec, RunSpec};
use rapid_bench::Proto;

/// A small sparse-fleet run spec (hub traffic, tight buffers, TTL) that
/// exercises replication, eviction, expiry and full-buffer contacts.
fn spec(run: u32) -> RunSpec {
    let fleet = ScaleFleet {
        nodes: 600,
        contacts: 4_000,
        opportunity_bytes: 2 * 1024,
        contact_duration: TimeDelta::ZERO,
        horizon: Time::from_secs(1800),
        hubs: 16,
        hub_bias: 0.3,
    };
    RunSpec {
        contacts: ContactsSpec::streaming(move || {
            Box::new(fleet.contact_stream(11, u64::from(run)))
        }),
        packets: PacketsSpec::streaming(move || {
            Box::new(fleet.packet_stream(300, 1024, 11, u64::from(run)))
        }),
        nodes: fleet.nodes,
        buffer: 8 * 1024,
        deadline: TimeDelta::from_secs(300),
        horizon: fleet.horizon,
        seed: 11,
        noise: None,
        measure_from: Time::ZERO,
        churn: Vec::new(),
        ttl: Some(TimeDelta::from_secs(600)),
    }
}

fn run_plan(id: &str) -> String {
    let plan = registry::find(id).unwrap_or_else(|| panic!("unknown plan {id}"));
    (plan.run)();
    std::fs::read_to_string(format!("results/{id}.tsv"))
        .unwrap_or_else(|e| panic!("results/{id}.tsv unreadable: {e}"))
}

#[test]
fn intra_jobs_reproduce_serial_byte_for_byte() {
    // Shrink every figure to its smoke shape (mirrors the CI smoke).
    std::env::set_var("RAPID_DAYS", "1");
    std::env::set_var("RAPID_RUNS", "1");
    std::env::set_var("RAPID_FIG3_DAYS", "1");
    std::env::set_var("RAPID_SYNTH_LOADS", "1");

    // Report-level equivalence for the NodeDisjoint protocols on a
    // sparse-fleet scenario (replication + eviction + TTL expiry).
    for proto in [Proto::Random, Proto::Epidemic, Proto::RapidAvg] {
        std::env::set_var("RAPID_INTRA_JOBS", "1");
        let serial = run_spec(&spec(0), proto);
        for jobs in ["2", "8"] {
            std::env::set_var("RAPID_INTRA_JOBS", jobs);
            let parallel = run_spec(&spec(0), proto);
            assert_eq!(
                serial, parallel,
                "{proto:?} with RAPID_INTRA_JOBS={jobs} diverged from serial"
            );
        }
        // Lookahead policy must not be observable either — fixed bounds
        // straddling the batch sizes and the adaptive policy all replay
        // the serial scan order.
        for lookahead in ["1", "3", "adaptive"] {
            std::env::set_var("RAPID_INTRA_JOBS", "4");
            std::env::set_var("RAPID_LOOKAHEAD", lookahead);
            let parallel = run_spec(&spec(0), proto);
            assert_eq!(
                serial, parallel,
                "{proto:?} with RAPID_LOOKAHEAD={lookahead} diverged from serial"
            );
        }
        std::env::remove_var("RAPID_LOOKAHEAD");
    }

    // Kernel equivalence end-to-end: a full RAPID run with the scalar
    // Eq. 4–9 kernel must equal the detected (possibly AVX2) kernel's
    // run bit-for-bit, serial and parallel alike.
    {
        std::env::set_var("RAPID_INTRA_JOBS", "1");
        std::env::set_var("RAPID_KERNEL", "scalar");
        let scalar = run_spec(&spec(0), Proto::RapidAvg);
        std::env::set_var("RAPID_KERNEL", "auto");
        std::env::set_var("RAPID_INTRA_JOBS", "4");
        let detected = run_spec(&spec(0), Proto::RapidAvg);
        assert_eq!(
            scalar,
            detected,
            "detected kernel (RAPID_KERNEL=auto, {:?}) diverged from scalar",
            rapid_core::Kernel::detect()
        );
        std::env::remove_var("RAPID_KERNEL");
    }

    // TSV-level equivalence across full figure plans: trace-driven
    // (fig03), synthetic load sweep (fig16_18) and the durative-window +
    // churn family (fig_churn) must be byte-identical at 8 workers.
    for id in ["fig03", "fig16_18", "fig_churn"] {
        std::env::set_var("RAPID_INTRA_JOBS", "1");
        let serial = run_plan(id);
        std::env::set_var("RAPID_INTRA_JOBS", "8");
        let parallel = run_plan(id);
        assert_eq!(
            serial, parallel,
            "{id} TSV not byte-identical under RAPID_INTRA_JOBS=8"
        );
    }
    std::env::remove_var("RAPID_INTRA_JOBS");
}
