//! Sharded RAPID equivalence: the paper's own protocol under
//! `RAPID_SHARDS > 1` must be observationally identical to the serial
//! engine — same reports under churn/TTL and arbitrary partitions, and
//! byte-identical figure TSVs with intra-run parallelism composed on top.
//!
//! Everything lives in **one** test function: the figure plans and the
//! `RAPID_SHARDS`/`RAPID_INTRA_JOBS` knobs are driven through process
//! environment variables, so concurrent tests in this binary would race
//! on them.

use dtn_mobility::ScaleFleet;
use dtn_sim::{run_sharded, run_streaming, NodeEvent, NodeId, Partition, SimConfig};
use dtn_sim::{Time, TimeDelta};
use rapid_bench::registry;
use rapid_bench::runner::{run_spec, ContactsSpec, PacketsSpec, RunSpec};
use rapid_bench::Proto;

fn fleet() -> ScaleFleet {
    ScaleFleet {
        nodes: 600,
        contacts: 4_000,
        opportunity_bytes: 2 * 1024,
        contact_duration: TimeDelta::ZERO,
        horizon: Time::from_secs(1800),
        hubs: 16,
        hub_bias: 0.3,
    }
}

/// Churn that lands inside the contact structure: hubs flap, so sharded
/// runs must replay the suppressed contacts and cache invalidations in
/// the engine's exact order.
fn churn() -> Vec<NodeEvent> {
    vec![
        NodeEvent {
            time: Time::from_secs(400),
            node: NodeId(3),
            up: false,
        },
        NodeEvent {
            time: Time::from_secs(900),
            node: NodeId(3),
            up: true,
        },
        NodeEvent {
            time: Time::from_secs(600),
            node: NodeId(17),
            up: false,
        },
        NodeEvent {
            time: Time::from_secs(1000),
            node: NodeId(17),
            up: true,
        },
    ]
}

/// A sparse-fleet run spec (hub traffic, tight buffers, TTL, churn) that
/// exercises replication, eviction, expiry and full-buffer contacts.
fn spec(run: u32) -> RunSpec {
    let fleet = fleet();
    RunSpec {
        contacts: ContactsSpec::streaming(move || {
            Box::new(fleet.contact_stream(11, u64::from(run)))
        }),
        packets: PacketsSpec::streaming(move || {
            Box::new(fleet.packet_stream(300, 1024, 11, u64::from(run)))
        }),
        nodes: fleet.nodes,
        buffer: 8 * 1024,
        deadline: TimeDelta::from_secs(300),
        horizon: fleet.horizon,
        seed: 11,
        noise: None,
        measure_from: Time::ZERO,
        churn: churn(),
        ttl: Some(TimeDelta::from_secs(600)),
    }
}

fn run_plan(id: &str) -> String {
    let plan = registry::find(id).unwrap_or_else(|| panic!("unknown plan {id}"));
    (plan.run)();
    std::fs::read_to_string(format!("results/{id}.tsv"))
        .unwrap_or_else(|e| panic!("results/{id}.tsv unreadable: {e}"))
}

#[test]
fn sharded_rapid_reproduces_serial_byte_for_byte() {
    // Shrink every figure to its smoke shape (mirrors the CI smoke).
    std::env::set_var("RAPID_DAYS", "1");
    std::env::set_var("RAPID_RUNS", "1");
    std::env::set_var("RAPID_FIG3_DAYS", "1");
    std::env::set_var("RAPID_SYNTH_LOADS", "1");

    // Report equivalence for the node-disjoint RAPID variants across
    // shard counts, with churn and TTL expiry in play.
    for proto in [Proto::RapidAvg, Proto::RapidAvgLocal] {
        std::env::set_var("RAPID_SHARDS", "1");
        let serial = run_spec(&spec(0), proto);
        for shards in ["2", "4", "7"] {
            std::env::set_var("RAPID_SHARDS", shards);
            let sharded = run_spec(&spec(0), proto);
            assert_eq!(
                serial, sharded,
                "{proto:?} with RAPID_SHARDS={shards} diverged from serial"
            );
        }
        // Composed with intra-run parallel contact batches: the two
        // runtimes multiply, the report must not move.
        std::env::set_var("RAPID_SHARDS", "4");
        std::env::set_var("RAPID_INTRA_JOBS", "8");
        let composed = run_spec(&spec(0), proto);
        assert_eq!(
            serial, composed,
            "{proto:?} with RAPID_SHARDS=4 + RAPID_INTRA_JOBS=8 diverged from serial"
        );
        std::env::remove_var("RAPID_INTRA_JOBS");
        std::env::remove_var("RAPID_SHARDS");
    }

    // Arbitrary (lopsided, singleton-shard) partitions through the
    // sharded runtime directly — gateway placement must not matter.
    {
        let fleet = fleet();
        let cfg = SimConfig {
            nodes: fleet.nodes,
            buffer_capacity: 8 * 1024,
            deadline: Some(TimeDelta::from_secs(300)),
            ttl: Some(TimeDelta::from_secs(600)),
            horizon: fleet.horizon,
            seed: 11,
            ..SimConfig::default()
        };
        let build = || Proto::RapidAvg.build(TimeDelta::from_secs(300), TimeDelta(fleet.horizon.0));
        let serial = {
            let mut contacts = fleet.contact_stream(11, 0);
            let mut packets = fleet.packet_stream(300, 1024, 11, 0);
            let mut routing = build();
            run_streaming(
                &cfg,
                &mut contacts,
                &mut packets,
                &churn(),
                None,
                routing.as_mut(),
            )
        };
        for bounds in [
            vec![0, 1, 600],
            vec![0, 599, 600],
            vec![0, 37, 37, 301, 600],
        ] {
            let partition = Partition::from_bounds(bounds.clone());
            let mut contacts = fleet.contact_stream(11, 0);
            let mut packets = fleet.packet_stream(300, 1024, 11, 0);
            let sharded = run_sharded(
                &cfg,
                &partition,
                &mut contacts,
                &mut packets,
                &churn(),
                None,
                &mut || build(),
            );
            assert_eq!(serial, sharded, "RAPID diverged under bounds {bounds:?}");
        }
    }

    // TSV-level equivalence across figure plans: fig03 is all-RAPID
    // (trace-driven validation), fig16_18 carries labeled Rapid rows in
    // the synthetic load sweep. Both must be byte-identical when the
    // sharded runtime and intra-run batches are both on.
    for (id, rapid_marker) in [("fig03", "sim_avg_delay_min"), ("fig16_18", "Rapid")] {
        std::env::set_var("RAPID_SHARDS", "1");
        std::env::set_var("RAPID_INTRA_JOBS", "1");
        let serial = run_plan(id);
        assert!(
            serial.contains(rapid_marker),
            "{id} TSV lost its Rapid rows — the diff below would be vacuous"
        );
        std::env::set_var("RAPID_SHARDS", "4");
        std::env::set_var("RAPID_INTRA_JOBS", "8");
        let sharded = run_plan(id);
        assert_eq!(
            serial, sharded,
            "{id} TSV not byte-identical under RAPID_SHARDS=4 + RAPID_INTRA_JOBS=8"
        );
        std::env::remove_var("RAPID_SHARDS");
        std::env::remove_var("RAPID_INTRA_JOBS");
    }
}
