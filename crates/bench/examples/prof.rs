//! Scale-shape cost breakdown: how much of a windows-heavy run is scenario
//! *generation* versus engine + protocol work. Used to attribute wall
//! clock when tuning the contact hot path (generation is typically <1%,
//! so per-contact engine/protocol cost dominates).
//!
//! Honors the `RAPID_SCALE_*` knobs and `RAPID_INTRA_JOBS`:
//!
//! ```sh
//! RAPID_SCALE_WINDOWS=1500000 RAPID_SCALE_PACKETS=250 \
//!     cargo run --release -p rapid-bench --example prof
//! ```

use rapid_bench::runner::run_spec;
use rapid_bench::scale::ScaleLab;
use rapid_bench::Proto;
use std::time::Instant;

fn main() {
    let lab = ScaleLab::from_env(7);

    // 1. Generation only: drain both streams without driving the engine.
    let t0 = Instant::now();
    let windows = lab.fleet.contact_stream(7, 0).count();
    let packets = lab.fleet.packet_stream(lab.packets, 1024, 7, 0).count();
    let gen_s = t0.elapsed().as_secs_f64();
    eprintln!("generation: {windows} windows + {packets} packets in {gen_s:.3} s");

    // 2. The full run over the same scenario.
    let t0 = Instant::now();
    let r = run_spec(&lab.spec(0), Proto::Random);
    let run_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "full run: {} contacts, {} repl, {} data KB, {} expired in {run_s:.3} s \
         ({:.2} us/contact); engine+proto share = {:.1}%",
        r.contacts,
        r.replications,
        r.data_bytes / 1024,
        r.expired,
        run_s * 1e6 / r.contacts as f64,
        100.0 * (run_s - gen_s) / run_s
    );
}
