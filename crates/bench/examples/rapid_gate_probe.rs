//! One cell of the BENCH_pr9.json shards×windows matrix: the in-band
//! RAPID gate shape (400-node regional fleet, the same one `bench_smoke`
//! pins), run once through the sharded runtime with wall/RSS printed.
//!
//! Usage: `cargo run --release -p rapid-bench --example rapid_gate_probe
//! -- [shards] [nodes] [windows]` (defaults 4 / 400 / 300000). The
//! printed `concurrency=` field is the executed tier — it must say
//! `NodeDisjoint`, never a silent serial fallback.

use dtn_mobility::{RegionalFleet, ScaleFleet};
use dtn_sim::{run_sharded_with_stats, SimConfig, Time, TimeDelta};
use rapid_bench::scale::{peak_rss_mb, reset_peak_rss};
use rapid_bench::Proto;
use std::time::Instant;

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let nodes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let contacts: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let rf = RegionalFleet {
        fleet: ScaleFleet {
            nodes,
            contacts: contacts as u64,
            opportunity_bytes: 2 * 1024,
            contact_duration: TimeDelta::ZERO,
            horizon: Time::from_secs(7200),
            hubs: 16,
            hub_bias: 0.3,
        },
        regions: 8,
        locality: 0.95,
    };
    let partition = rf.partition(shards);
    let config = SimConfig {
        nodes: rf.fleet.nodes,
        buffer_capacity: 16 * 1024,
        deadline: Some(TimeDelta::from_secs(600)),
        ttl: Some(TimeDelta::from_secs(900)),
        horizon: rf.fleet.horizon,
        seed: 7,
        ..SimConfig::default()
    };
    let build = || Proto::RapidAvg.build(TimeDelta::from_secs(600), TimeDelta::from_secs(7200));
    reset_peak_rss();
    let mut windows = rf.contact_stream(7, 0);
    let mut packets = rf.packet_stream(50, 1024, 7, 0);
    let start = Instant::now();
    let (report, stats) = run_sharded_with_stats(
        &config,
        &partition,
        &mut windows,
        &mut packets,
        &[],
        None,
        &mut || build(),
    );
    println!(
        "shards={shards} nodes={nodes} contacts_planned={contacts} wall={:.1} ms contacts={} delivered={} concurrency={:?} peak_rss_mb={:.1}",
        start.elapsed().as_secs_f64() * 1e3,
        report.contacts,
        report.delivered(),
        stats.first().map(|s| s.concurrency),
        peak_rss_mb().unwrap_or(0.0),
    );
}
