//! Synthetic-mobility experiment assembly (the §6.3 family, Table 4).
//!
//! 20 nodes, 100 KB buffers, 100 KB opportunities, 15-minute runs, 1 KB
//! packets, 20 s delivery deadline. Loads are packets per destination per
//! 50 s (each node receives `L` packets per 50 s from uniformly chosen
//! sources). The pairwise mean inter-meeting time (150 s) is calibrated so
//! delays land on the paper's 5–25 s scale; EXPERIMENTS.md records the
//! calibration.

use crate::proto::Proto;
use crate::runner::{run_spec, ContactsSpec, PacketsSpec, RunSpec};
use dtn_mobility::{PowerLaw, UniformExponential};
use dtn_sim::workload::pairwise_poisson;
use dtn_sim::{CompiledPlan, SimReport, Time, TimeDelta};
use dtn_stats::{Mergeable, SeedStream};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Packet size (Table 4: 1 KB).
pub const PACKET_BYTES: u64 = 1024;

/// Which synthetic mobility model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mobility {
    /// Uniform exponential inter-meeting times (§6.3.3).
    Exponential,
    /// Popularity-skewed power-law meetings (§6.3.1).
    PowerLaw,
}

/// The synthetic laboratory with Table 4 defaults.
#[derive(Debug, Clone)]
pub struct SynthLab {
    /// Number of nodes (Table 4: 20).
    pub nodes: usize,
    /// Buffer capacity, bytes (Table 4: 100 KB).
    pub buffer: u64,
    /// Opportunity size, bytes (Table 4: 100 KB).
    pub opportunity: u64,
    /// Run duration (Table 4: 15 min).
    pub duration: TimeDelta,
    /// Delivery deadline (Table 4: 20 s).
    pub deadline: TimeDelta,
    /// Mean pairwise inter-meeting time (calibration).
    pub mean_inter_meeting: TimeDelta,
    seeds: SeedStream,
    /// Compiled contact plans keyed by `(mobility, run)`, shared across
    /// every sweep point that replays the same mobility draw. A sweep over
    /// loads × protocols used to regenerate (and separately own) the same
    /// schedule at every point; now each `(mobility, run)` is generated
    /// once, compressed, and expanded per run through a cursor.
    plans: Arc<Mutex<PlanCache>>,
}

/// Compiled plans keyed by `(mobility kind, run)`.
type PlanCache = HashMap<(u8, u32), Arc<CompiledPlan>>;

impl SynthLab {
    /// Table 4 defaults.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: 20,
            buffer: 100 * 1024,
            opportunity: 100 * 1024,
            duration: TimeDelta::from_mins(15),
            deadline: TimeDelta::from_secs(20),
            mean_inter_meeting: TimeDelta::from_secs(150),
            seeds: SeedStream::new(seed).derive("synth-lab"),
            plans: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The compiled contact plan for `(mobility, run)`: generated and
    /// compressed once, then shared by every sweep point (loads ×
    /// protocols × buffer sizes) that replays the same mobility draw. The
    /// expansion is byte-identical to the schedule `generate` used to
    /// rebuild at each point, so figures are unchanged.
    fn compiled_contacts(&self, mobility: Mobility, run: u32) -> Arc<CompiledPlan> {
        let key = (matches!(mobility, Mobility::PowerLaw) as u8, run);
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            return Arc::clone(plan);
        }
        let horizon = Time(self.duration.0);
        let mut mob_rng = self.seeds.rng_indexed(
            match mobility {
                Mobility::Exponential => "mob-exp",
                Mobility::PowerLaw => "mob-pl",
            },
            u64::from(run),
        );
        let schedule = match mobility {
            Mobility::Exponential => UniformExponential {
                nodes: self.nodes,
                mean_inter_meeting: self.mean_inter_meeting,
                opportunity_bytes: self.opportunity,
            }
            .generate(horizon, &mut mob_rng),
            Mobility::PowerLaw => PowerLaw {
                nodes: self.nodes,
                base_mean: self.mean_inter_meeting,
                opportunity_bytes: self.opportunity,
            }
            .generate(horizon, &mut mob_rng),
        };
        let plan = Arc::new(CompiledPlan::compress_schedule(&schedule));
        // Deterministic generation: a racing builder produced identical
        // atoms, so first insert wins and both callers share it.
        Arc::clone(self.plans.lock().unwrap().entry(key).or_insert(plan))
    }

    /// Builds one run at a per-destination load (packets per 50 s).
    pub fn spec(
        &self,
        mobility: Mobility,
        run: u32,
        load_per_dest_per_50s: f64,
        buffer_override: Option<u64>,
    ) -> RunSpec {
        assert!(load_per_dest_per_50s > 0.0);
        let horizon = Time(self.duration.0);
        let plan = self.compiled_contacts(mobility, run);
        let gap_secs = (self.nodes as f64 - 1.0) * 50.0 / load_per_dest_per_50s;
        let mut wl_rng = self.seeds.rng_indexed("workload", u64::from(run));
        let nodes: Vec<dtn_sim::NodeId> = (0..self.nodes as u32).map(dtn_sim::NodeId).collect();
        let workload = pairwise_poisson(
            &nodes,
            TimeDelta::from_secs_f64(gap_secs),
            PACKET_BYTES,
            horizon,
            &mut wl_rng,
        );
        RunSpec {
            contacts: ContactsSpec::compiled(plan),
            packets: PacketsSpec::shared(workload),
            nodes: self.nodes,
            buffer: buffer_override.unwrap_or(self.buffer),
            deadline: self.deadline,
            horizon,
            seed: self.seeds.seed() ^ u64::from(run),
            noise: None,
            measure_from: Time::ZERO,
            churn: Vec::new(),
            ttl: None,
        }
    }

    /// Runs `runs` independent repetitions of one configuration.
    pub fn run_many(
        &self,
        mobility: Mobility,
        runs: u32,
        load: f64,
        buffer_override: Option<u64>,
        proto: Proto,
    ) -> Vec<SimReport> {
        crate::parallel_map(runs as usize, |r| {
            let spec = self.spec(mobility, r as u32, load, buffer_override);
            run_spec(&spec, proto)
        })
    }

    /// Streaming variant of [`SynthLab::run_many`]: run reports fold into
    /// a [`SynthAcc`] in run order as they complete — same parallelism,
    /// bounded memory, bit-identical aggregate.
    pub fn run_many_agg(
        &self,
        mobility: Mobility,
        runs: u32,
        load: f64,
        buffer_override: Option<u64>,
        proto: Proto,
    ) -> SynthAggregate {
        let mut acc = SynthAcc::new(runs as usize);
        crate::parallel_reduce(
            runs as usize,
            |r| {
                let spec = self.spec(mobility, r as u32, load, buffer_override);
                run_spec(&spec, proto)
            },
            |_, report| acc.push(&report),
        );
        acc.finish()
    }
}

/// Synthetic aggregate (seconds scale, unlike the trace minutes scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthAggregate {
    /// Mean of per-run average delay, seconds.
    pub avg_delay_s: f64,
    /// Mean of per-run max delay, seconds.
    pub max_delay_s: f64,
    /// Mean delivery rate.
    pub delivery_rate: f64,
    /// Mean within-deadline rate.
    pub within_deadline: f64,
}

/// Streaming accumulator behind [`SynthAggregate`]: fixed expected count,
/// so the float operations match the collected reduction bit-for-bit;
/// mergeable across shards.
#[derive(Debug, Clone, Copy)]
pub struct SynthAcc {
    n: f64,
    agg: SynthAggregate,
}

impl SynthAcc {
    /// An accumulator expecting `runs` reports.
    pub fn new(runs: usize) -> Self {
        Self {
            n: runs.max(1) as f64,
            agg: SynthAggregate::default(),
        }
    }

    /// Absorbs one run report.
    pub fn push(&mut self, r: &SimReport) {
        let n = self.n;
        self.agg.avg_delay_s += r.avg_delay_secs().unwrap_or(0.0) / n;
        self.agg.max_delay_s += r.max_delay_secs().unwrap_or(0.0) / n;
        self.agg.delivery_rate += r.delivery_rate() / n;
        self.agg.within_deadline += r.within_deadline_rate(None) / n;
    }

    /// The aggregate over everything pushed.
    pub fn finish(self) -> SynthAggregate {
        self.agg
    }
}

impl Mergeable for SynthAcc {
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.n, other.n, "shards must share the expected count");
        self.agg.avg_delay_s += other.agg.avg_delay_s;
        self.agg.max_delay_s += other.agg.max_delay_s;
        self.agg.delivery_rate += other.agg.delivery_rate;
        self.agg.within_deadline += other.agg.within_deadline;
    }
}

/// Reduces run reports to a [`SynthAggregate`].
pub fn aggregate(reports: &[SimReport]) -> SynthAggregate {
    let mut acc = SynthAcc::new(reports.len());
    for r in reports {
        acc.push(r);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_scales_with_load() {
        let lab = SynthLab::new(5);
        let lo = lab.spec(Mobility::Exponential, 0, 5.0, None);
        let hi = lab.spec(Mobility::Exponential, 0, 40.0, None);
        let ratio = hi.packets.materialize().len() as f64 / lo.packets.materialize().len() as f64;
        assert!(ratio > 5.0 && ratio < 12.0, "ratio {ratio}");
        assert_eq!(lo.buffer, 100 * 1024);
        let small = lab.spec(Mobility::Exponential, 0, 5.0, Some(10 * 1024));
        assert_eq!(small.buffer, 10 * 1024);
    }

    #[test]
    fn sweep_points_share_one_compiled_plan() {
        let lab = SynthLab::new(5);
        let a = lab.spec(Mobility::Exponential, 0, 5.0, None);
        let b = lab.spec(Mobility::Exponential, 0, 40.0, Some(10 * 1024));
        let (ContactsSpec::Compiled(pa), ContactsSpec::Compiled(pb)) = (&a.contacts, &b.contacts)
        else {
            panic!("synth contacts are compiled plans");
        };
        assert!(Arc::ptr_eq(pa, pb), "same (mobility, run) → same plan");
        let c = lab.spec(Mobility::Exponential, 1, 5.0, None);
        let ContactsSpec::Compiled(pc) = &c.contacts else {
            panic!("compiled");
        };
        assert!(!Arc::ptr_eq(pa, pc), "different runs → different plans");
    }

    #[test]
    fn mobility_models_differ_but_are_deterministic() {
        let lab = SynthLab::new(5);
        let a = lab.spec(Mobility::PowerLaw, 0, 5.0, None);
        let b = lab.spec(Mobility::PowerLaw, 0, 5.0, None);
        assert_eq!(a.contacts.materialize(), b.contacts.materialize());
        let c = lab.spec(Mobility::Exponential, 0, 5.0, None);
        assert_ne!(a.contacts.materialize(), c.contacts.materialize());
    }

    #[test]
    fn streaming_aggregate_matches_collected() {
        let lab = SynthLab::new(5);
        let collected = aggregate(&lab.run_many(Mobility::PowerLaw, 2, 10.0, None, Proto::Random));
        let streamed = lab.run_many_agg(Mobility::PowerLaw, 2, 10.0, None, Proto::Random);
        assert_eq!(collected.avg_delay_s, streamed.avg_delay_s);
        assert_eq!(collected.max_delay_s, streamed.max_delay_s);
        assert_eq!(collected.delivery_rate, streamed.delivery_rate);
        assert_eq!(collected.within_deadline, streamed.within_deadline);
    }
}
