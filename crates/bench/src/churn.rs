//! Windowed-contact and node-churn experiment family (beyond the paper).
//!
//! The paper models transfer opportunities as instantaneous lumps and keeps
//! every node up all day. This family stretches both assumptions at once on
//! the §6.3 synthetic laboratory:
//!
//! * **Window duration sweep** — each meeting's opportunity is spread over a
//!   contact window of fixed length at rate `opportunity / duration`
//!   (duration 0 = the paper's lump). Total offered capacity is held
//!   constant up to day-end truncation (windows are clamped at the
//!   horizon), so the sweep isolates the *shape* of the opportunity: RAPID's
//!   delay estimates assume lump opportunities, and its utility ordering
//!   degrades as windows stretch while flooding-style protocols only pay
//!   the window-close delay.
//! * **Node churn sweep** — each node alternates exponentially-distributed
//!   up/down periods. Downtime suppresses new windows and interrupts open
//!   ones mid-accrual (the capacity accrued before the interruption is all
//!   that transfers), so churn interacts with duration: long windows lose
//!   more capacity to interruptions.
//!
//! Runs also set a packet TTL so the engine's `PacketExpired` path is
//! exercised end-to-end; expired packets are reported per run.
//! Calibration notes live in EXPERIMENTS.md.

use crate::proto::Proto;
use crate::runner::{run_spec, ContactsSpec, PacketsSpec, RunSpec};
use crate::synth::PACKET_BYTES;
use dtn_mobility::UniformExponential;
use dtn_sim::workload::pairwise_poisson;
use dtn_sim::{NodeEvent, NodeId, SimReport, Time, TimeDelta};
use dtn_stats::sample::Exponential;
use dtn_stats::{Mergeable, SeedStream};
use rand::Rng;

/// The churn laboratory: the §6.3 synthetic defaults (Table 4) plus the
/// windowed-contact and availability knobs.
#[derive(Debug, Clone)]
pub struct ChurnLab {
    /// Number of nodes (Table 4: 20).
    pub nodes: usize,
    /// Buffer capacity, bytes (Table 4: 100 KB).
    pub buffer: u64,
    /// Per-meeting opportunity, bytes (Table 4: 100 KB) — held constant
    /// across window durations.
    pub opportunity: u64,
    /// Run duration (Table 4: 15 min).
    pub duration: TimeDelta,
    /// Delivery deadline (Table 4: 20 s).
    pub deadline: TimeDelta,
    /// Mean pairwise inter-meeting time (EXPERIMENTS.md calibration).
    pub mean_inter_meeting: TimeDelta,
    /// Mean length of one up+down availability cycle per node.
    pub churn_cycle: TimeDelta,
    /// Packet TTL (exercises engine-level expiry; `None` disables).
    pub ttl: Option<TimeDelta>,
    seeds: SeedStream,
}

impl ChurnLab {
    /// Table 4 defaults with a 4-minute churn cycle and a 60 s TTL (three
    /// deadlines: late packets die instead of clogging buffers).
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: 20,
            buffer: 100 * 1024,
            opportunity: 100 * 1024,
            duration: TimeDelta::from_mins(15),
            deadline: TimeDelta::from_secs(20),
            mean_inter_meeting: TimeDelta::from_secs(150),
            churn_cycle: TimeDelta::from_mins(4),
            ttl: Some(TimeDelta::from_secs(60)),
            seeds: SeedStream::new(seed).derive("churn-lab"),
        }
    }

    /// Draws one node's availability transitions: alternating up/down
    /// periods with means `cycle·(1−f)` and `cycle·f`. `f == 0` yields no
    /// events (always up).
    fn node_churn<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        down_fraction: f64,
        horizon: Time,
        rng: &mut R,
        out: &mut Vec<NodeEvent>,
    ) {
        if down_fraction <= 0.0 {
            return;
        }
        assert!(down_fraction < 1.0, "a node must sometimes be up");
        let up_mean = self.churn_cycle.as_secs_f64() * (1.0 - down_fraction);
        let down_mean = self.churn_cycle.as_secs_f64() * down_fraction;
        let up_gap = Exponential::with_mean(up_mean);
        let down_gap = Exponential::with_mean(down_mean);
        let mut t = up_gap.sample(rng);
        let mut up = true;
        while Time::from_secs_f64(t) < horizon {
            out.push(NodeEvent {
                time: Time::from_secs_f64(t),
                node,
                up: !up,
            });
            up = !up;
            t += if up {
                up_gap.sample(rng)
            } else {
                down_gap.sample(rng)
            };
        }
    }

    /// Builds one run: windows of length `window` (0 = instantaneous), a
    /// per-node downtime fraction, and the lab's load model (packets per
    /// destination per 50 s, as in [`crate::synth::SynthLab`]).
    pub fn spec(
        &self,
        run: u32,
        load_per_dest_per_50s: f64,
        window: TimeDelta,
        down_fraction: f64,
    ) -> RunSpec {
        assert!(load_per_dest_per_50s > 0.0);
        let horizon = Time(self.duration.0);
        let mut mob_rng = self.seeds.rng_indexed("mob", u64::from(run));
        let schedule = UniformExponential {
            nodes: self.nodes,
            mean_inter_meeting: self.mean_inter_meeting,
            opportunity_bytes: self.opportunity,
        }
        .generate_windows(horizon, window, &mut mob_rng);

        let gap_secs = (self.nodes as f64 - 1.0) * 50.0 / load_per_dest_per_50s;
        let mut wl_rng = self.seeds.rng_indexed("workload", u64::from(run));
        let nodes: Vec<NodeId> = (0..self.nodes as u32).map(NodeId).collect();
        let workload = pairwise_poisson(
            &nodes,
            TimeDelta::from_secs_f64(gap_secs),
            PACKET_BYTES,
            horizon,
            &mut wl_rng,
        );

        let mut churn_rng = self.seeds.rng_indexed("churn", u64::from(run));
        let mut churn = Vec::new();
        for &node in &nodes {
            self.node_churn(node, down_fraction, horizon, &mut churn_rng, &mut churn);
        }

        RunSpec {
            contacts: ContactsSpec::shared(schedule),
            packets: PacketsSpec::shared(workload),
            nodes: self.nodes,
            buffer: self.buffer,
            deadline: self.deadline,
            horizon,
            seed: self.seeds.seed() ^ u64::from(run),
            noise: None,
            measure_from: Time::ZERO,
            churn,
            ttl: self.ttl,
        }
    }

    /// Runs `runs` independent repetitions of one configuration (parallel).
    pub fn run_many(
        &self,
        runs: u32,
        load: f64,
        window: TimeDelta,
        down_fraction: f64,
        proto: Proto,
    ) -> Vec<SimReport> {
        crate::parallel_map(runs as usize, |r| {
            let spec = self.spec(r as u32, load, window, down_fraction);
            run_spec(&spec, proto)
        })
    }

    /// Streaming variant of [`ChurnLab::run_many`]: reports fold into a
    /// [`ChurnAcc`] in run order — bounded memory, bit-identical aggregate.
    pub fn run_many_agg(
        &self,
        runs: u32,
        load: f64,
        window: TimeDelta,
        down_fraction: f64,
        proto: Proto,
    ) -> ChurnAggregate {
        let mut acc = ChurnAcc::new(runs as usize);
        crate::parallel_reduce(
            runs as usize,
            |r| {
                let spec = self.spec(r as u32, load, window, down_fraction);
                run_spec(&spec, proto)
            },
            |_, report| acc.push(&report),
        );
        acc.finish()
    }
}

/// Aggregate for the churn family: the synthetic headline metrics plus the
/// expiry and interruption counters the new event kinds produce.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnAggregate {
    /// Mean of per-run average delay, seconds.
    pub avg_delay_s: f64,
    /// Mean delivery rate.
    pub delivery_rate: f64,
    /// Mean within-deadline rate.
    pub within_deadline: f64,
    /// Mean fraction of created packets whose TTL expired undelivered.
    pub expired_rate: f64,
    /// Mean count of windows suppressed by downtime per run.
    pub suppressed_contacts: f64,
}

/// Streaming accumulator behind [`ChurnAggregate`]: fixed expected count,
/// bit-identical to the collected reduction; mergeable across shards.
#[derive(Debug, Clone, Copy)]
pub struct ChurnAcc {
    n: f64,
    agg: ChurnAggregate,
    delay_sum: f64,
    delay_runs: u32,
}

impl ChurnAcc {
    /// An accumulator expecting `runs` reports.
    pub fn new(runs: usize) -> Self {
        Self {
            n: runs.max(1) as f64,
            agg: ChurnAggregate::default(),
            delay_sum: 0.0,
            delay_runs: 0,
        }
    }

    /// Absorbs one run report.
    pub fn push(&mut self, r: &SimReport) {
        let n = self.n;
        if let Some(d) = r.avg_delay_secs() {
            self.delay_sum += d;
            self.delay_runs += 1;
        }
        self.agg.delivery_rate += r.delivery_rate() / n;
        self.agg.within_deadline += r.within_deadline_rate(None) / n;
        self.agg.expired_rate += r.expired as f64 / r.created().max(1) as f64 / n;
        self.agg.suppressed_contacts += r.contacts_suppressed as f64 / n;
    }

    /// The aggregate over everything pushed. The delay mean covers only
    /// runs that delivered something — folding zero-delivery runs in as
    /// 0 s would make the hardest configurations look fastest.
    pub fn finish(self) -> ChurnAggregate {
        let mut agg = self.agg;
        agg.avg_delay_s = if self.delay_runs > 0 {
            self.delay_sum / f64::from(self.delay_runs)
        } else {
            f64::NAN
        };
        agg
    }
}

impl Mergeable for ChurnAcc {
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.n, other.n, "shards must share the expected count");
        self.delay_sum += other.delay_sum;
        self.delay_runs += other.delay_runs;
        self.agg.delivery_rate += other.agg.delivery_rate;
        self.agg.within_deadline += other.agg.within_deadline;
        self.agg.expired_rate += other.agg.expired_rate;
        self.agg.suppressed_contacts += other.agg.suppressed_contacts;
    }
}

/// Reduces run reports to a [`ChurnAggregate`] (see [`ChurnAcc::finish`]
/// for the delay-mean convention).
pub fn aggregate(reports: &[SimReport]) -> ChurnAggregate {
    let mut acc = ChurnAcc::new(reports.len());
    for r in reports {
        acc.push(r);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_deterministic() {
        let lab = ChurnLab::new(9);
        let a = lab.spec(0, 20.0, TimeDelta::from_secs(60), 0.25);
        let b = lab.spec(0, 20.0, TimeDelta::from_secs(60), 0.25);
        assert_eq!(a.contacts.materialize(), b.contacts.materialize());
        assert_eq!(a.packets.materialize(), b.packets.materialize());
        assert_eq!(a.churn, b.churn);
        assert!(!a.churn.is_empty());
    }

    #[test]
    fn zero_churn_and_zero_window_is_the_plain_lab() {
        let lab = ChurnLab::new(9);
        let spec = lab.spec(0, 20.0, TimeDelta::ZERO, 0.0);
        assert!(spec.churn.is_empty());
        assert!(spec
            .contacts
            .materialize()
            .windows()
            .iter()
            .all(|w| w.is_instantaneous()));
    }

    #[test]
    fn window_preserves_offered_capacity_up_to_truncation() {
        let lab = ChurnLab::new(9);
        let lump = lab
            .spec(0, 20.0, TimeDelta::ZERO, 0.0)
            .contacts
            .materialize();
        let spec = lab.spec(0, 20.0, TimeDelta::from_secs(120), 0.0);
        let windowed = spec.contacts.materialize();
        assert_eq!(lump.len(), windowed.len());
        // No window outlives the run.
        assert!(windowed.windows().iter().all(|w| w.end <= spec.horizon));
        // Capacity matches up to day-end truncation: windows starting in
        // the last 120 s of the 900 s run lose their tail, bounding the
        // expected loss well under 10%.
        let a = lump.offered_bytes() as f64;
        let b = windowed.offered_bytes() as f64;
        assert!(b <= a, "windowing must not create capacity: {a} vs {b}");
        assert!(b > 0.85 * a, "truncation lost too much: {a} vs {b}");
    }

    #[test]
    fn downtime_share_tracks_down_fraction() {
        let lab = ChurnLab::new(9);
        // Integrates each node's down intervals over the horizon.
        let downtime = |f: f64| {
            let spec = lab.spec(0, 20.0, TimeDelta::ZERO, f);
            let horizon = spec.horizon;
            let mut total = 0.0;
            for node in 0..lab.nodes as u32 {
                let mut down_since: Option<dtn_sim::Time> = None;
                for ev in spec.churn.iter().filter(|e| e.node == NodeId(node)) {
                    match (ev.up, down_since) {
                        (false, None) => down_since = Some(ev.time),
                        (true, Some(t)) => {
                            total += ev.time.since(t).as_secs_f64();
                            down_since = None;
                        }
                        _ => {}
                    }
                }
                if let Some(t) = down_since {
                    total += horizon.since(t).as_secs_f64();
                }
            }
            total / (lab.nodes as f64 * horizon.as_secs_f64())
        };
        let light = downtime(0.1);
        let heavy = downtime(0.45);
        assert!(light > 0.02 && light < 0.25, "light share {light}");
        assert!(heavy > 2.0 * light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn churn_run_reports_new_counters() {
        let lab = ChurnLab::new(9);
        let reports = lab.run_many(2, 20.0, TimeDelta::from_secs(60), 0.3, Proto::Random);
        let agg = aggregate(&reports);
        assert!(agg.delivery_rate > 0.0 && agg.delivery_rate <= 1.0);
        assert!(agg.suppressed_contacts > 0.0, "churn must suppress windows");
        assert!(agg.expired_rate > 0.0, "a 60 s TTL must expire something");
    }
}
