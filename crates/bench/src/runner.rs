//! Run assembly and a small worker pool.
//!
//! A [`RunSpec`] no longer owns materialized scenario data: contacts and
//! packets are described by [`ContactsSpec`] / [`PacketsSpec`], which open
//! a fresh streaming source per run. Materialized scenarios are shared
//! behind `Arc`s and streamed through cursors — zero per-run clones —
//! while generator-backed scenarios are never materialized at all.

use crate::proto::Proto;
use dtn_sim::checkpoint::routing_checkpointable;
use dtn_sim::source::{ContactSource, ScheduleStream, WorkloadSource, WorkloadStream};
use dtn_sim::workload::Workload;
use dtn_sim::{
    config_digest, diag, load_latest, run_sharded_hooked, run_streaming_hooked, Checkpointer,
    CompiledPlan, Fault, FaultPlan, NodeEvent, NoiseModel, Partition, RunHooks, Schedule,
    SimConfig, SimReport, Time, TimeDelta,
};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Factory building a fresh contact source for one run.
pub type ContactFactory = Arc<dyn Fn() -> Box<dyn ContactSource + Send> + Send + Sync>;

/// Factory building a fresh workload source for one run.
pub type PacketFactory = Arc<dyn Fn() -> Box<dyn WorkloadSource + Send> + Send + Sync>;

/// How a run obtains its contact windows.
#[derive(Clone)]
pub enum ContactsSpec {
    /// A materialized schedule shared behind an `Arc`, streamed through a
    /// per-run cursor (the seed-exact path; never cloned).
    Shared(Arc<Schedule>),
    /// A factory that opens a fresh streaming source per run; the schedule
    /// never exists in memory.
    Streaming(ContactFactory),
    /// A compiled (compressed) plan shared behind an `Arc`, expanded
    /// through a per-run [`PlanStream`] cursor. Like `Shared` the scenario
    /// is built once and never cloned per run — but the shared state is
    /// the atom plan, not the expansion, so a sweep holds the plan's
    /// memory, not `windows × runs × protocols`.
    Compiled(Arc<CompiledPlan>),
}

impl ContactsSpec {
    /// Wraps a materialized schedule for sharing.
    pub fn shared(schedule: Schedule) -> Self {
        Self::Shared(Arc::new(schedule))
    }

    /// Wraps a per-run source factory.
    pub fn streaming<F>(factory: F) -> Self
    where
        F: Fn() -> Box<dyn ContactSource + Send> + Send + Sync + 'static,
    {
        Self::Streaming(Arc::new(factory))
    }

    /// Wraps a compiled plan for sharing across sweep points.
    pub fn compiled(plan: Arc<CompiledPlan>) -> Self {
        Self::Compiled(plan)
    }

    /// Opens a fresh source over this scenario.
    pub fn source(&self) -> Box<dyn ContactSource + Send> {
        match self {
            Self::Shared(s) => Box::new(ScheduleStream::new(Arc::clone(s))),
            Self::Streaming(f) => f(),
            Self::Compiled(p) => Box::new(p.stream()),
        }
    }

    /// Drains a fresh source into a [`Schedule`] — for consumers that need
    /// random access (the optimal solver, diagnostics). Costs the full
    /// materialization a streaming run avoids; keep it off hot paths.
    pub fn materialize(&self) -> Schedule {
        match self {
            Self::Shared(s) => (**s).clone(),
            Self::Streaming(_) => {
                let mut source = self.source();
                let mut windows = Vec::new();
                while let Some(w) = source.next_window() {
                    windows.push(w);
                }
                Schedule::new(windows)
            }
            Self::Compiled(p) => p.materialize(),
        }
    }
}

impl fmt::Debug for ContactsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shared(s) => f.debug_tuple("Shared").field(&s.len()).finish(),
            Self::Streaming(_) => f.write_str("Streaming(..)"),
            Self::Compiled(p) => f
                .debug_struct("Compiled")
                .field("atoms", &p.atom_count())
                .field("windows", &p.window_count())
                .finish(),
        }
    }
}

/// How a run obtains its packet creations.
#[derive(Clone)]
pub enum PacketsSpec {
    /// A materialized workload shared behind an `Arc`, streamed through a
    /// per-run cursor.
    Shared(Arc<Workload>),
    /// A factory that opens a fresh streaming source per run.
    Streaming(PacketFactory),
}

impl PacketsSpec {
    /// Wraps a materialized workload for sharing.
    pub fn shared(workload: Workload) -> Self {
        Self::Shared(Arc::new(workload))
    }

    /// Wraps a per-run source factory.
    pub fn streaming<F>(factory: F) -> Self
    where
        F: Fn() -> Box<dyn WorkloadSource + Send> + Send + Sync + 'static,
    {
        Self::Streaming(Arc::new(factory))
    }

    /// Opens a fresh source over this workload.
    pub fn source(&self) -> Box<dyn WorkloadSource + Send> {
        match self {
            Self::Shared(w) => Box::new(WorkloadStream::new(Arc::clone(w))),
            Self::Streaming(f) => f(),
        }
    }

    /// Drains a fresh source into a [`Workload`] (see
    /// [`ContactsSpec::materialize`]).
    pub fn materialize(&self) -> Workload {
        match self {
            Self::Shared(w) => (**w).clone(),
            Self::Streaming(_) => {
                let mut source = self.source();
                let mut specs = Vec::new();
                while let Some(s) = source.next_packet() {
                    specs.push(s);
                }
                Workload::new(specs)
            }
        }
    }
}

impl fmt::Debug for PacketsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shared(w) => f.debug_tuple("Shared").field(&w.len()).finish(),
            Self::Streaming(_) => f.write_str("Streaming(..)"),
        }
    }
}

/// A fully specified simulation job.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Contact-window scenario.
    pub contacts: ContactsSpec,
    /// Packet workload scenario.
    pub packets: PacketsSpec,
    /// Node-id space.
    pub nodes: usize,
    /// Per-node buffer capacity, bytes.
    pub buffer: u64,
    /// Delivery deadline (reporting and the RAPID deadline metric).
    pub deadline: TimeDelta,
    /// End of the run.
    pub horizon: Time,
    /// Run seed.
    pub seed: u64,
    /// Deployment-noise emulation, if any.
    pub noise: Option<NoiseModel>,
    /// Start of the measured window (contacts before it are warm-up).
    pub measure_from: Time,
    /// Node churn events (empty = everyone stays up, the paper's model).
    pub churn: Vec<NodeEvent>,
    /// Per-packet TTL (`None` = packets live to the horizon).
    pub ttl: Option<TimeDelta>,
}

/// Executes one job with one protocol, streaming the scenario through the
/// engine — no per-run clones of schedules or workloads.
///
/// `RAPID_SHARDS=N` (default 1 = today's engine) routes the run through
/// the sharded runtime over an even node partition; results are
/// byte-identical at any shard count. Any node-disjoint protocol tier
/// qualifies — `Stateless` protocols get per-shard instances, and
/// `NodeDisjoint` ones (in-band/local RAPID) a single partitioned
/// instance. `Serial` protocols and global-knowledge runs fall back to
/// the serial engine — same report, one event loop — with a one-shot
/// warning naming the protocol and the reason (no silent fallback).
pub fn run_spec(spec: &RunSpec, proto: Proto) -> SimReport {
    let config = spec_config(spec, proto);
    let measured_len = TimeDelta(spec.horizon.0.saturating_sub(spec.measure_from.0));
    let probe = proto.build(spec.deadline, measured_len);
    let checkpointable = routing_checkpointable(probe.as_ref());
    run_with_recovery(&config, &probe.name(), checkpointable, &mut |hooks| {
        run_spec_hooked(spec, proto, hooks)
    })
}

/// The engine [`SimConfig`] for one job (shared by the direct and the
/// checkpointed paths — the snapshot config digest hangs off it).
fn spec_config(spec: &RunSpec, proto: Proto) -> SimConfig {
    SimConfig {
        nodes: spec.nodes,
        buffer_capacity: spec.buffer,
        deadline: Some(spec.deadline),
        ttl: spec.ttl,
        horizon: spec.horizon,
        allow_global_knowledge: proto.needs_global(),
        seed: spec.seed,
        measure_from: spec.measure_from,
        // Intra-run workers (RAPID_INTRA_JOBS, default 1 = serial). The
        // engine ignores it for protocols without NodeDisjoint support
        // and for global-knowledge runs; results are byte-identical
        // either way. Composes with RAPID_JOBS (across-run workers): the
        // total worker budget is their product.
        intra_jobs: dtn_sim::intra_jobs_from_env(),
        // Batch lookahead policy (RAPID_LOOKAHEAD, default adaptive);
        // results are byte-identical at any setting.
        lookahead: dtn_sim::par::Lookahead::from_env(),
    }
}

/// One attempt at a job, with whatever checkpoint/resume/fault hooks the
/// caller supplies. Scenario sources are opened fresh per call, so retries
/// replay the identical input streams.
fn run_spec_hooked(spec: &RunSpec, proto: Proto, hooks: RunHooks<'_>) -> SimReport {
    let config = spec_config(spec, proto);
    let mut contacts = spec.contacts.source();
    let mut packets = spec.packets.source();
    let measured_len = TimeDelta(spec.horizon.0.saturating_sub(spec.measure_from.0));
    let mut routing = proto.build(spec.deadline, measured_len);
    let shards = dtn_sim::clamp_shards(dtn_sim::shards_from_env(), spec.nodes);
    if shards > 1 {
        if !config.allow_global_knowledge && routing.contact_concurrency().is_node_disjoint() {
            let partition = Partition::even(spec.nodes, shards);
            return run_sharded_hooked(
                &config,
                &partition,
                contacts.as_mut(),
                packets.as_mut(),
                &spec.churn,
                spec.noise,
                &mut || proto.build(spec.deadline, measured_len),
                hooks,
            )
            .0;
        }
        // Loud serial fallback: say once per process why RAPID_SHARDS had
        // no effect, instead of quietly timing the serial engine.
        let reason = if config.allow_global_knowledge {
            "it needs global knowledge (an oracle, not a protocol state partition)"
        } else {
            "its contact handling declares ContactConcurrency::Serial"
        };
        diag::warn_once(
            "serial-fallback",
            &format!(
                "RAPID_SHARDS={shards} ignored for {}: {reason}; running serial",
                routing.name()
            ),
            &[
                ("proto", routing.name()),
                ("shards", shards.to_string()),
                (
                    "reason",
                    if config.allow_global_knowledge {
                        "global-knowledge".into()
                    } else {
                        "serial-concurrency".into()
                    },
                ),
            ],
        );
    }
    run_streaming_hooked(
        &config,
        contacts.as_mut(),
        packets.as_mut(),
        &spec.churn,
        spec.noise,
        routing.as_mut(),
        hooks,
    )
}

/// Checkpoint policy from the environment:
///
/// * `RAPID_CKPT_EVERY_S` — snapshot cadence in sim seconds; unset or
///   absent = checkpointing off (the zero-overhead default).
/// * `RAPID_CKPT_DIR` — checkpoint directory (default `rapid-ckpt`).
///   Each job writes under a subdirectory keyed by its config digest and
///   protocol, so a killed process restarted with the same environment
///   resumes the right run.
/// * `RAPID_CKPT_KEEP` — snapshots retained per job (default 3); older
///   ones are pruned, and a corrupt newest degrades to the previous.
/// * `RAPID_CKPT_RETRIES` — in-process crash-retry budget (default 3).
struct CkptPolicy {
    dir: PathBuf,
    every: TimeDelta,
    keep: usize,
    retries: u64,
}

impl CkptPolicy {
    fn from_env() -> Option<Self> {
        let every = dtn_sim::from_env_or("RAPID_CKPT_EVERY_S", None, |v| {
            match v.trim().parse::<f64>() {
                Ok(x) if x.is_finite() && x > 0.0 => Ok(Some(TimeDelta::from_secs_f64(x))),
                _ => Err(format!(
                    "invalid RAPID_CKPT_EVERY_S value {v:?}: expected a finite positive number of seconds"
                )),
            }
        })?;
        Some(Self {
            dir: std::env::var("RAPID_CKPT_DIR")
                .unwrap_or_else(|_| "rapid-ckpt".into())
                .into(),
            every,
            keep: dtn_sim::env::u64_from_env("RAPID_CKPT_KEEP", 3).max(1) as usize,
            retries: dtn_sim::env::u64_from_env("RAPID_CKPT_RETRIES", 3).max(1),
        })
    }
}

/// Scheduled fault injection from `RAPID_FAULT_CRASH_S`: a comma-separated
/// list of sim-time seconds at which the run panics (once each). A testing
/// and CI hook — with checkpointing on, the retry loop must recover and
/// the final report must match an undisturbed run.
fn fault_plan_from_env() -> Option<FaultPlan> {
    dtn_sim::from_env_or("RAPID_FAULT_CRASH_S", None, |v| {
        let mut faults = Vec::new();
        for part in v.split(',') {
            match part.trim().parse::<f64>() {
                Ok(x) if x.is_finite() && x >= 0.0 => faults.push(Fault::Crash {
                    at: Time::from_secs_f64(x),
                }),
                _ => {
                    return Err(format!(
                        "invalid RAPID_FAULT_CRASH_S value {v:?}: expected comma-separated seconds"
                    ))
                }
            }
        }
        Ok(Some(FaultPlan::scheduled(faults)))
    })
}

/// Runs one job under the environment's checkpoint policy: resume from
/// the last good snapshot if one exists, checkpoint on cadence, and on a
/// crash retry from the freshest surviving snapshot with bounded backoff.
/// Every recovery step is reported through [`diag`] (grep
/// `diag=run-retry`, `diag=resume-from-checkpoint`); exhausting the retry
/// budget re-raises the original panic.
///
/// `attempt` is one full run of the job with the supplied hooks; it must
/// open its scenario sources fresh per call so retries replay identical
/// input streams. With `RAPID_CKPT_EVERY_S` unset (the default) this is a
/// single hook-free call with zero overhead. Both [`run_spec`] and the
/// scale-family runner route through here, so the knobs and the crash
/// recovery behave identically for spec-driven and scale-driven jobs.
pub fn run_with_recovery(
    config: &SimConfig,
    name: &str,
    checkpointable: bool,
    attempt_fn: &mut dyn FnMut(RunHooks<'_>) -> SimReport,
) -> SimReport {
    let policy = match CkptPolicy::from_env() {
        Some(policy) => policy,
        None => return attempt_fn(RunHooks::default()),
    };
    if !checkpointable {
        diag::warn_once(
            "ckpt-unsupported",
            &format!(
                "RAPID_CKPT_EVERY_S ignored for {name}: no save_state and contacts are not Stateless"
            ),
            &[("proto", name.to_string())],
        );
        return attempt_fn(RunHooks::default());
    }
    let digest = config_digest(config);
    let slug: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let run_dir = policy.dir.join(format!("{digest:016x}-{slug}"));

    let mut faults = fault_plan_from_env();
    let mut backoff = std::time::Duration::from_millis(50);
    for attempt in 1..=policy.retries {
        let resume = match load_latest(&run_dir) {
            Ok(Some(loaded)) if loaded.snapshot.config_digest == digest => {
                diag::warn(
                    "resume-from-checkpoint",
                    &format!(
                        "resuming {name} from {} (sim time {})",
                        loaded.path.display(),
                        loaded.snapshot.now
                    ),
                    &[
                        ("proto", name.to_string()),
                        ("path", loaded.path.display().to_string()),
                        ("at_us", loaded.snapshot.now.0.to_string()),
                    ],
                );
                Some(loaded.snapshot)
            }
            Ok(Some(loaded)) => {
                diag::warn(
                    "ckpt-stale",
                    &format!(
                        "ignoring checkpoint {}: config digest mismatch (snapshot {:016x}, run {digest:016x})",
                        loaded.path.display(),
                        loaded.snapshot.config_digest
                    ),
                    &[("path", loaded.path.display().to_string())],
                );
                None
            }
            Ok(None) => None,
            Err(e) => {
                diag::warn(
                    "ckpt-dir-unreadable",
                    &format!("cannot scan {}: {e}; starting fresh", run_dir.display()),
                    &[("dir", run_dir.display().to_string())],
                );
                None
            }
        };
        let mut ckpt = Checkpointer::new(&run_dir, policy.every, policy.keep).unwrap_or_else(|e| {
            panic!(
                "cannot create checkpoint dir {}: {e} [diag=ckpt-dir-failed]",
                run_dir.display()
            )
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            attempt_fn(RunHooks {
                checkpoint: Some(&mut ckpt),
                resume,
                faults: faults.as_mut(),
            })
        }));
        match outcome {
            Ok(report) => {
                // The run completed; its snapshots have served their
                // purpose (a later identical invocation should start
                // fresh, not replay the tail of this one).
                let _ = std::fs::remove_dir_all(&run_dir);
                return report;
            }
            Err(payload) => {
                let msg = panic_message(&payload);
                if attempt == policy.retries {
                    diag::warn(
                        "run-failed",
                        &format!("{name} failed after {attempt} attempts: {msg}"),
                        &[
                            ("proto", name.to_string()),
                            ("attempts", attempt.to_string()),
                        ],
                    );
                    resume_unwind(payload);
                }
                diag::warn(
                    "run-retry",
                    &format!(
                        "attempt {attempt}/{} of {name} crashed ({msg}); retrying from last good checkpoint in {}",
                        policy.retries,
                        run_dir.display()
                    ),
                    &[
                        ("proto", name.to_string()),
                        ("attempt", attempt.to_string()),
                        ("of", policy.retries.to_string()),
                    ],
                );
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(std::time::Duration::from_secs(2));
            }
        }
    }
    unreachable!("retry loop either returns or re-raises")
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Worker count: `RAPID_JOBS` (default: available parallelism), capped at
/// the job count. Rejects `0` and non-numeric values loudly instead of
/// silently falling back to serial execution.
fn worker_count(n: usize) -> usize {
    let default_jobs = std::thread::available_parallelism().map_or(4, |p| p.get());
    let jobs = dtn_sim::jobs_from_env("RAPID_JOBS", default_jobs);
    jobs.clamp(1, n.max(1))
}

/// Maps `f` over `0..n` on a small worker pool and returns results in
/// index order. Worker count comes from `RAPID_JOBS` (default: available
/// parallelism, capped at `n`).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    parallel_reduce(n, f, |i, v| out[i] = Some(v));
    out.into_iter()
        .map(|s| s.expect("every index computed"))
        .collect()
}

/// Computes `f(i)` for `0..n` on the worker pool and hands each result to
/// `push` in **strict index order** — the streaming reduction behind sweep
/// aggregation. Only out-of-order completions are buffered, so memory
/// stays bounded by the pool's reordering window instead of all `n`
/// results, and the deterministic fold order keeps aggregate floats
/// bit-identical to a sequential reduction.
pub fn parallel_reduce<T, F, G>(n: usize, f: F, mut push: G)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(usize, T),
{
    if n == 0 {
        return;
    }
    let jobs = worker_count(n);
    if jobs == 1 {
        for i in 0..n {
            let v = f(i);
            push(i, v);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                if tx.send((i, value)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Reorder buffer: release results to `push` in index order.
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut expected = 0usize;
        for (i, value) in rx {
            pending.insert(i, value);
            while let Some(value) = pending.remove(&expected) {
                push(expected, value);
                expected += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::PacketSpec;
    use dtn_sim::{Contact, NodeId};

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_reduce_pushes_in_index_order() {
        let mut seen = Vec::new();
        parallel_reduce(64, |i| i * 3, |i, v| seen.push((i, v)));
        assert_eq!(seen.len(), 64);
        for (k, (i, v)) in seen.iter().enumerate() {
            assert_eq!(*i, k);
            assert_eq!(*v, k * 3);
        }
    }

    #[test]
    fn shared_specs_stream_without_cloning() {
        let schedule = Schedule::new(vec![Contact::new(
            Time::from_secs(1),
            NodeId(0),
            NodeId(1),
            64,
        )]);
        let contacts = ContactsSpec::shared(schedule.clone());
        // Two independent runs read the same Arc'd data.
        for _ in 0..2 {
            let mut src = contacts.source();
            assert_eq!(src.next_window(), Some(schedule.windows()[0]));
            assert_eq!(src.next_window(), None);
        }
        assert_eq!(contacts.materialize(), schedule);
    }

    #[test]
    fn compiled_specs_share_one_plan_across_runs() {
        let schedule = Schedule::new(vec![
            Contact::new(Time::from_secs(1), NodeId(0), NodeId(1), 64),
            Contact::new(Time::from_secs(2), NodeId(0), NodeId(1), 64),
            Contact::new(Time::from_secs(3), NodeId(0), NodeId(1), 64),
        ]);
        let plan = Arc::new(CompiledPlan::compress_schedule(&schedule));
        let contacts = ContactsSpec::compiled(Arc::clone(&plan));
        // Two independent runs expand the same Arc'd plan.
        for _ in 0..2 {
            let mut src = contacts.source();
            let mut windows = Vec::new();
            while let Some(w) = src.next_window() {
                windows.push(w);
            }
            assert_eq!(windows, schedule.windows());
        }
        assert_eq!(contacts.materialize(), schedule);
        assert_eq!(Arc::strong_count(&plan), 2, "spec holds one shared Arc");
        assert!(format!("{contacts:?}").contains("atoms"));
    }

    #[test]
    fn streaming_specs_rebuild_per_run() {
        let contacts = ContactsSpec::streaming(|| {
            Box::new(
                [
                    dtn_sim::ContactWindow::instant(Time::from_secs(2), NodeId(0), NodeId(1), 9),
                    dtn_sim::ContactWindow::instant(Time::from_secs(4), NodeId(1), NodeId(2), 9),
                ]
                .into_iter(),
            )
        });
        assert_eq!(contacts.materialize().len(), 2);
        assert_eq!(contacts.materialize().len(), 2, "factory reopens cleanly");

        let packets = PacketsSpec::streaming(|| {
            Box::new(
                [PacketSpec {
                    time: Time::from_secs(1),
                    src: NodeId(0),
                    dst: NodeId(1),
                    size_bytes: 10,
                }]
                .into_iter(),
            )
        });
        assert_eq!(packets.materialize().len(), 1);
    }
}
