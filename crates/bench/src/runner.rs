//! Run assembly and a small worker pool.

use crate::proto::Proto;
use dtn_sim::workload::Workload;
use dtn_sim::{NodeEvent, NoiseModel, Schedule, SimConfig, SimReport, Simulation, Time, TimeDelta};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fully specified simulation job.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Meeting schedule.
    pub schedule: Schedule,
    /// Packet workload.
    pub workload: Workload,
    /// Node-id space.
    pub nodes: usize,
    /// Per-node buffer capacity, bytes.
    pub buffer: u64,
    /// Delivery deadline (reporting and the RAPID deadline metric).
    pub deadline: TimeDelta,
    /// End of the run.
    pub horizon: Time,
    /// Run seed.
    pub seed: u64,
    /// Deployment-noise emulation, if any.
    pub noise: Option<NoiseModel>,
    /// Start of the measured window (contacts before it are warm-up).
    pub measure_from: Time,
    /// Node churn events (empty = everyone stays up, the paper's model).
    pub churn: Vec<NodeEvent>,
    /// Per-packet TTL (`None` = packets live to the horizon).
    pub ttl: Option<TimeDelta>,
}

/// Executes one job with one protocol.
pub fn run_spec(spec: &RunSpec, proto: Proto) -> SimReport {
    let config = SimConfig {
        nodes: spec.nodes,
        buffer_capacity: spec.buffer,
        deadline: Some(spec.deadline),
        ttl: spec.ttl,
        horizon: spec.horizon,
        allow_global_knowledge: proto.needs_global(),
        seed: spec.seed,
        measure_from: spec.measure_from,
    };
    let mut sim = Simulation::new(config, spec.schedule.clone(), spec.workload.clone())
        .with_churn(spec.churn.clone());
    if let Some(noise) = spec.noise {
        sim = sim.with_noise(noise);
    }
    let measured_len = TimeDelta(spec.horizon.0.saturating_sub(spec.measure_from.0));
    let mut routing = proto.build(spec.deadline, measured_len);
    sim.run(routing.as_mut())
}

/// Maps `f` over `0..n` on a small worker pool and returns results in
/// index order. Worker count comes from `RAPID_JOBS` (default: available
/// parallelism, capped at `n`).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let default_jobs = std::thread::available_parallelism().map_or(4, |p| p.get());
    let jobs = crate::env_u64("RAPID_JOBS", default_jobs as u64) as usize;
    let jobs = jobs.clamp(1, n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots_ptr = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                let mut guard = slots_ptr.lock().expect("no poisoned workers");
                guard[i] = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }
}
