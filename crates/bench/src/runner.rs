//! Run assembly and a small worker pool.
//!
//! A [`RunSpec`] no longer owns materialized scenario data: contacts and
//! packets are described by [`ContactsSpec`] / [`PacketsSpec`], which open
//! a fresh streaming source per run. Materialized scenarios are shared
//! behind `Arc`s and streamed through cursors — zero per-run clones —
//! while generator-backed scenarios are never materialized at all.

use crate::proto::Proto;
use dtn_sim::source::{ContactSource, ScheduleStream, WorkloadSource, WorkloadStream};
use dtn_sim::workload::Workload;
use dtn_sim::{
    run_sharded, run_streaming, CompiledPlan, NodeEvent, NoiseModel, Partition, Schedule,
    SimConfig, SimReport, Time, TimeDelta,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Factory building a fresh contact source for one run.
pub type ContactFactory = Arc<dyn Fn() -> Box<dyn ContactSource + Send> + Send + Sync>;

/// Factory building a fresh workload source for one run.
pub type PacketFactory = Arc<dyn Fn() -> Box<dyn WorkloadSource + Send> + Send + Sync>;

/// How a run obtains its contact windows.
#[derive(Clone)]
pub enum ContactsSpec {
    /// A materialized schedule shared behind an `Arc`, streamed through a
    /// per-run cursor (the seed-exact path; never cloned).
    Shared(Arc<Schedule>),
    /// A factory that opens a fresh streaming source per run; the schedule
    /// never exists in memory.
    Streaming(ContactFactory),
    /// A compiled (compressed) plan shared behind an `Arc`, expanded
    /// through a per-run [`PlanStream`] cursor. Like `Shared` the scenario
    /// is built once and never cloned per run — but the shared state is
    /// the atom plan, not the expansion, so a sweep holds the plan's
    /// memory, not `windows × runs × protocols`.
    Compiled(Arc<CompiledPlan>),
}

impl ContactsSpec {
    /// Wraps a materialized schedule for sharing.
    pub fn shared(schedule: Schedule) -> Self {
        Self::Shared(Arc::new(schedule))
    }

    /// Wraps a per-run source factory.
    pub fn streaming<F>(factory: F) -> Self
    where
        F: Fn() -> Box<dyn ContactSource + Send> + Send + Sync + 'static,
    {
        Self::Streaming(Arc::new(factory))
    }

    /// Wraps a compiled plan for sharing across sweep points.
    pub fn compiled(plan: Arc<CompiledPlan>) -> Self {
        Self::Compiled(plan)
    }

    /// Opens a fresh source over this scenario.
    pub fn source(&self) -> Box<dyn ContactSource + Send> {
        match self {
            Self::Shared(s) => Box::new(ScheduleStream::new(Arc::clone(s))),
            Self::Streaming(f) => f(),
            Self::Compiled(p) => Box::new(p.stream()),
        }
    }

    /// Drains a fresh source into a [`Schedule`] — for consumers that need
    /// random access (the optimal solver, diagnostics). Costs the full
    /// materialization a streaming run avoids; keep it off hot paths.
    pub fn materialize(&self) -> Schedule {
        match self {
            Self::Shared(s) => (**s).clone(),
            Self::Streaming(_) => {
                let mut source = self.source();
                let mut windows = Vec::new();
                while let Some(w) = source.next_window() {
                    windows.push(w);
                }
                Schedule::new(windows)
            }
            Self::Compiled(p) => p.materialize(),
        }
    }
}

impl fmt::Debug for ContactsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shared(s) => f.debug_tuple("Shared").field(&s.len()).finish(),
            Self::Streaming(_) => f.write_str("Streaming(..)"),
            Self::Compiled(p) => f
                .debug_struct("Compiled")
                .field("atoms", &p.atom_count())
                .field("windows", &p.window_count())
                .finish(),
        }
    }
}

/// How a run obtains its packet creations.
#[derive(Clone)]
pub enum PacketsSpec {
    /// A materialized workload shared behind an `Arc`, streamed through a
    /// per-run cursor.
    Shared(Arc<Workload>),
    /// A factory that opens a fresh streaming source per run.
    Streaming(PacketFactory),
}

impl PacketsSpec {
    /// Wraps a materialized workload for sharing.
    pub fn shared(workload: Workload) -> Self {
        Self::Shared(Arc::new(workload))
    }

    /// Wraps a per-run source factory.
    pub fn streaming<F>(factory: F) -> Self
    where
        F: Fn() -> Box<dyn WorkloadSource + Send> + Send + Sync + 'static,
    {
        Self::Streaming(Arc::new(factory))
    }

    /// Opens a fresh source over this workload.
    pub fn source(&self) -> Box<dyn WorkloadSource + Send> {
        match self {
            Self::Shared(w) => Box::new(WorkloadStream::new(Arc::clone(w))),
            Self::Streaming(f) => f(),
        }
    }

    /// Drains a fresh source into a [`Workload`] (see
    /// [`ContactsSpec::materialize`]).
    pub fn materialize(&self) -> Workload {
        match self {
            Self::Shared(w) => (**w).clone(),
            Self::Streaming(_) => {
                let mut source = self.source();
                let mut specs = Vec::new();
                while let Some(s) = source.next_packet() {
                    specs.push(s);
                }
                Workload::new(specs)
            }
        }
    }
}

impl fmt::Debug for PacketsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shared(w) => f.debug_tuple("Shared").field(&w.len()).finish(),
            Self::Streaming(_) => f.write_str("Streaming(..)"),
        }
    }
}

/// A fully specified simulation job.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Contact-window scenario.
    pub contacts: ContactsSpec,
    /// Packet workload scenario.
    pub packets: PacketsSpec,
    /// Node-id space.
    pub nodes: usize,
    /// Per-node buffer capacity, bytes.
    pub buffer: u64,
    /// Delivery deadline (reporting and the RAPID deadline metric).
    pub deadline: TimeDelta,
    /// End of the run.
    pub horizon: Time,
    /// Run seed.
    pub seed: u64,
    /// Deployment-noise emulation, if any.
    pub noise: Option<NoiseModel>,
    /// Start of the measured window (contacts before it are warm-up).
    pub measure_from: Time,
    /// Node churn events (empty = everyone stays up, the paper's model).
    pub churn: Vec<NodeEvent>,
    /// Per-packet TTL (`None` = packets live to the horizon).
    pub ttl: Option<TimeDelta>,
}

/// Executes one job with one protocol, streaming the scenario through the
/// engine — no per-run clones of schedules or workloads.
///
/// `RAPID_SHARDS=N` (default 1 = today's engine) routes the run through
/// the sharded runtime over an even node partition; results are
/// byte-identical at any shard count. Any node-disjoint protocol tier
/// qualifies — `Stateless` protocols get per-shard instances, and
/// `NodeDisjoint` ones (in-band/local RAPID) a single partitioned
/// instance. `Serial` protocols and global-knowledge runs fall back to
/// the serial engine — same report, one event loop — with a one-shot
/// warning naming the protocol and the reason (no silent fallback).
pub fn run_spec(spec: &RunSpec, proto: Proto) -> SimReport {
    let config = SimConfig {
        nodes: spec.nodes,
        buffer_capacity: spec.buffer,
        deadline: Some(spec.deadline),
        ttl: spec.ttl,
        horizon: spec.horizon,
        allow_global_knowledge: proto.needs_global(),
        seed: spec.seed,
        measure_from: spec.measure_from,
        // Intra-run workers (RAPID_INTRA_JOBS, default 1 = serial). The
        // engine ignores it for protocols without NodeDisjoint support
        // and for global-knowledge runs; results are byte-identical
        // either way. Composes with RAPID_JOBS (across-run workers): the
        // total worker budget is their product.
        intra_jobs: dtn_sim::intra_jobs_from_env(),
        // Batch lookahead policy (RAPID_LOOKAHEAD, default adaptive);
        // results are byte-identical at any setting.
        lookahead: dtn_sim::par::Lookahead::from_env(),
    };
    let mut contacts = spec.contacts.source();
    let mut packets = spec.packets.source();
    let measured_len = TimeDelta(spec.horizon.0.saturating_sub(spec.measure_from.0));
    let mut routing = proto.build(spec.deadline, measured_len);
    let shards = dtn_sim::clamp_shards(dtn_sim::shards_from_env(), spec.nodes);
    if shards > 1 {
        if !config.allow_global_knowledge && routing.contact_concurrency().is_node_disjoint() {
            let partition = Partition::even(spec.nodes, shards);
            return run_sharded(
                &config,
                &partition,
                contacts.as_mut(),
                packets.as_mut(),
                &spec.churn,
                spec.noise,
                &mut || proto.build(spec.deadline, measured_len),
            );
        }
        // Loud serial fallback: say once per process why RAPID_SHARDS had
        // no effect, instead of quietly timing the serial engine.
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            let reason = if config.allow_global_knowledge {
                "it needs global knowledge (an oracle, not a protocol state partition)"
            } else {
                "its contact handling declares ContactConcurrency::Serial"
            };
            eprintln!(
                "warning: RAPID_SHARDS={shards} ignored for {}: {reason}; running serial",
                routing.name()
            );
        });
    }
    run_streaming(
        &config,
        contacts.as_mut(),
        packets.as_mut(),
        &spec.churn,
        spec.noise,
        routing.as_mut(),
    )
}

/// Worker count: `RAPID_JOBS` (default: available parallelism), capped at
/// the job count. Rejects `0` and non-numeric values loudly instead of
/// silently falling back to serial execution.
fn worker_count(n: usize) -> usize {
    let default_jobs = std::thread::available_parallelism().map_or(4, |p| p.get());
    let jobs = dtn_sim::jobs_from_env("RAPID_JOBS", default_jobs);
    jobs.clamp(1, n.max(1))
}

/// Maps `f` over `0..n` on a small worker pool and returns results in
/// index order. Worker count comes from `RAPID_JOBS` (default: available
/// parallelism, capped at `n`).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    parallel_reduce(n, f, |i, v| out[i] = Some(v));
    out.into_iter()
        .map(|s| s.expect("every index computed"))
        .collect()
}

/// Computes `f(i)` for `0..n` on the worker pool and hands each result to
/// `push` in **strict index order** — the streaming reduction behind sweep
/// aggregation. Only out-of-order completions are buffered, so memory
/// stays bounded by the pool's reordering window instead of all `n`
/// results, and the deterministic fold order keeps aggregate floats
/// bit-identical to a sequential reduction.
pub fn parallel_reduce<T, F, G>(n: usize, f: F, mut push: G)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(usize, T),
{
    if n == 0 {
        return;
    }
    let jobs = worker_count(n);
    if jobs == 1 {
        for i in 0..n {
            let v = f(i);
            push(i, v);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                if tx.send((i, value)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Reorder buffer: release results to `push` in index order.
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut expected = 0usize;
        for (i, value) in rx {
            pending.insert(i, value);
            while let Some(value) = pending.remove(&expected) {
                push(expected, value);
                expected += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::PacketSpec;
    use dtn_sim::{Contact, NodeId};

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_reduce_pushes_in_index_order() {
        let mut seen = Vec::new();
        parallel_reduce(64, |i| i * 3, |i, v| seen.push((i, v)));
        assert_eq!(seen.len(), 64);
        for (k, (i, v)) in seen.iter().enumerate() {
            assert_eq!(*i, k);
            assert_eq!(*v, k * 3);
        }
    }

    #[test]
    fn shared_specs_stream_without_cloning() {
        let schedule = Schedule::new(vec![Contact::new(
            Time::from_secs(1),
            NodeId(0),
            NodeId(1),
            64,
        )]);
        let contacts = ContactsSpec::shared(schedule.clone());
        // Two independent runs read the same Arc'd data.
        for _ in 0..2 {
            let mut src = contacts.source();
            assert_eq!(src.next_window(), Some(schedule.windows()[0]));
            assert_eq!(src.next_window(), None);
        }
        assert_eq!(contacts.materialize(), schedule);
    }

    #[test]
    fn compiled_specs_share_one_plan_across_runs() {
        let schedule = Schedule::new(vec![
            Contact::new(Time::from_secs(1), NodeId(0), NodeId(1), 64),
            Contact::new(Time::from_secs(2), NodeId(0), NodeId(1), 64),
            Contact::new(Time::from_secs(3), NodeId(0), NodeId(1), 64),
        ]);
        let plan = Arc::new(CompiledPlan::compress_schedule(&schedule));
        let contacts = ContactsSpec::compiled(Arc::clone(&plan));
        // Two independent runs expand the same Arc'd plan.
        for _ in 0..2 {
            let mut src = contacts.source();
            let mut windows = Vec::new();
            while let Some(w) = src.next_window() {
                windows.push(w);
            }
            assert_eq!(windows, schedule.windows());
        }
        assert_eq!(contacts.materialize(), schedule);
        assert_eq!(Arc::strong_count(&plan), 2, "spec holds one shared Arc");
        assert!(format!("{contacts:?}").contains("atoms"));
    }

    #[test]
    fn streaming_specs_rebuild_per_run() {
        let contacts = ContactsSpec::streaming(|| {
            Box::new(
                [
                    dtn_sim::ContactWindow::instant(Time::from_secs(2), NodeId(0), NodeId(1), 9),
                    dtn_sim::ContactWindow::instant(Time::from_secs(4), NodeId(1), NodeId(2), 9),
                ]
                .into_iter(),
            )
        });
        assert_eq!(contacts.materialize().len(), 2);
        assert_eq!(contacts.materialize().len(), 2, "factory reopens cleanly");

        let packets = PacketsSpec::streaming(|| {
            Box::new(
                [PacketSpec {
                    time: Time::from_secs(1),
                    src: NodeId(0),
                    dst: NodeId(1),
                    size_bytes: 10,
                }]
                .into_iter(),
            )
        });
        assert_eq!(packets.materialize().len(), 1);
    }
}
