//! TSV output: every experiment binary prints its series to stdout and
//! mirrors them into `results/<id>.tsv`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// A TSV sink writing simultaneously to stdout and `results/<id>.tsv`.
pub struct Tsv {
    file: Option<std::fs::File>,
    id: String,
}

impl Tsv {
    /// Opens the sink for experiment `id`.
    pub fn new(id: &str) -> Self {
        let dir = PathBuf::from("results");
        let file = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::File::create(dir.join(format!("{id}.tsv"))))
            .ok();
        if file.is_none() {
            eprintln!("# note: could not open results/{id}.tsv; stdout only");
        }
        Self {
            file,
            id: id.to_string(),
        }
    }

    /// Emits a comment line (`# ...`).
    pub fn comment(&mut self, text: &str) {
        self.emit(&format!("# {text}"));
    }

    /// Emits a row of tab-separated cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push('\t');
            }
            let _ = write!(line, "{}", c.as_ref());
        }
        self.emit(&line);
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        &self.id
    }

    fn emit(&mut self, line: &str) {
        println!("{line}");
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Formats a float with 3 decimals (the precision the figures need).
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_formatting() {
        assert_eq!(super::f(1.23456), "1.235");
        assert_eq!(super::f(0.0), "0.000");
    }
}
