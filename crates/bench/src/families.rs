//! Shared drivers for the figure families.

use crate::proto::Proto;
use crate::synth::{Mobility, SynthLab};
use crate::trace_exp::TraceLab;
use crate::tsv::{f, Tsv};
use crate::{days_per_point, root_seed, runs_per_point};

/// Long-format trace sweep: one row per (load, series) with the four
/// headline metrics. Used by Figs. 4–7, 10–12 and 14.
pub fn trace_sweep(id: &str, title: &str, loads: &[f64], protos: &[Proto]) {
    let mut tsv = Tsv::new(id);
    tsv.comment(title);
    tsv.comment(&format!(
        "days per point = {}, seed = {} (override via RAPID_DAYS / RAPID_SEED)",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "load_per_dest_per_hour",
        "series",
        "avg_delay_min",
        "delivery_rate",
        "max_delay_min",
        "within_deadline",
        "metadata_over_bw",
        "utilization",
    ]);
    let lab = TraceLab::load_sweep(root_seed());
    for &load in loads {
        for &proto in protos {
            let a = lab.run_days_agg(days_per_point(), load, proto, None);
            tsv.row(&[
                f(load),
                proto.label(),
                f(a.avg_delay_min),
                f(a.delivery_rate),
                f(a.max_delay_min),
                f(a.within_deadline),
                f(a.metadata_over_bandwidth),
                f(a.utilization),
            ]);
        }
    }
}

/// Long-format synthetic sweep over loads. Used by Figs. 16–18 and 22–24.
pub fn synth_load_sweep(id: &str, title: &str, mobility: Mobility, loads: &[f64]) {
    let mut tsv = Tsv::new(id);
    tsv.comment(title);
    tsv.comment(&format!(
        "runs per point = {}, seed = {}",
        runs_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "load_per_dest_per_50s",
        "series",
        "avg_delay_s",
        "max_delay_s",
        "delivery_rate",
        "within_deadline",
    ]);
    let lab = SynthLab::new(root_seed());
    let protos = [
        Proto::RapidAvg,
        Proto::RapidMax,
        Proto::RapidDeadline,
        Proto::MaxProp,
        Proto::SprayWait,
        Proto::Random,
    ];
    for &load in loads {
        for proto in protos {
            let a = lab.run_many_agg(mobility, runs_per_point(), load, None, proto);
            tsv.row(&[
                f(load),
                series_label(proto),
                f(a.avg_delay_s),
                f(a.max_delay_s),
                f(a.delivery_rate),
                f(a.within_deadline),
            ]);
        }
    }
}

/// Long-format synthetic sweep over buffer sizes at a fixed load.
/// Used by Figs. 19–21.
pub fn synth_buffer_sweep(
    id: &str,
    title: &str,
    mobility: Mobility,
    load: f64,
    buffers_kb: &[u64],
) {
    let mut tsv = Tsv::new(id);
    tsv.comment(title);
    tsv.comment(&format!(
        "load = {load} per destination per 50 s; runs per point = {}, seed = {}",
        runs_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "buffer_kb",
        "series",
        "avg_delay_s",
        "max_delay_s",
        "delivery_rate",
        "within_deadline",
    ]);
    let lab = SynthLab::new(root_seed());
    let protos = [
        Proto::RapidAvg,
        Proto::RapidMax,
        Proto::RapidDeadline,
        Proto::MaxProp,
        Proto::SprayWait,
        Proto::Random,
    ];
    for &kb in buffers_kb {
        for proto in protos {
            let a = lab.run_many_agg(mobility, runs_per_point(), load, Some(kb * 1024), proto);
            tsv.row(&[
                format!("{kb}"),
                series_label(proto),
                f(a.avg_delay_s),
                f(a.max_delay_s),
                f(a.delivery_rate),
                f(a.within_deadline),
            ]);
        }
    }
}

/// RAPID metric variants get distinct series labels in synthetic sweeps
/// (each figure reads the variant optimizing its own metric).
fn series_label(proto: Proto) -> String {
    match proto {
        Proto::RapidAvg => "Rapid(avg)".into(),
        Proto::RapidMax => "Rapid(max)".into(),
        Proto::RapidDeadline => "Rapid(deadline)".into(),
        other => other.label(),
    }
}

/// The standard trace load axis (packets/hour per destination per source).
pub fn trace_loads() -> Vec<f64> {
    vec![2.0, 5.0, 10.0, 20.0, 30.0, 40.0]
}

/// The standard synthetic load axis (packets per destination per 50 s).
pub fn synth_loads() -> Vec<f64> {
    let mut loads = vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0];
    // `RAPID_SYNTH_LOADS` truncates the axis to its first N points — the
    // smoke/equivalence knob (CI and the intra-parallel TSV test run one
    // point instead of eight).
    let cap = crate::env_u64("RAPID_SYNTH_LOADS", loads.len() as u64) as usize;
    loads.truncate(cap.max(1));
    loads
}
