//! The declarative experiment registry.
//!
//! Every figure/table reproduction is one [`ExperimentPlan`]: an id, the
//! sweep axes it walks, the TSV schema it emits, and the run function that
//! produces it (the bodies live in [`crate::experiments`]). The `fig*`
//! binaries are one-line dispatches into this table, and `fig_all` walks
//! it — adding an experiment means adding one entry here plus its run
//! function, not a new hand-written binary.

use crate::experiments;
use crate::scale;

/// One registered experiment.
pub struct ExperimentPlan {
    /// Stable id: the binary name, the TSV basename (`results/<id>.tsv`).
    pub id: &'static str,
    /// One-line description (shown by `fig_all --list`).
    pub title: &'static str,
    /// The sweep axes the plan walks, human-readable.
    pub axes: &'static str,
    /// Columns of the emitted TSV, in order.
    pub columns: &'static [&'static str],
    /// Runs the experiment, writing stdout + `results/<id>.tsv`.
    pub run: fn(),
}

/// Every registered experiment, in canonical (fig_all) order.
pub const PLANS: &[ExperimentPlan] = &[
    ExperimentPlan {
        id: "table3",
        title: "Table 3: deployment daily averages (noise model on)",
        axes: "58 deployment days",
        columns: &["statistic", "value", "paper_value"],
        run: experiments::table3,
    },
    ExperimentPlan {
        id: "fig03",
        title: "Fig. 3: real (deployment emulation) vs simulation avg delay per day",
        axes: "day x {noisy run, RAPID_RUNS clean draws}",
        columns: &[
            "day",
            "real_avg_delay_min",
            "sim_avg_delay_min",
            "sim_ci95_min",
        ],
        run: experiments::fig03,
    },
    ExperimentPlan {
        id: "fig04_05",
        title: "Figs. 4-5 (Trace): avg delay / delivery rate vs load",
        axes: "load x {Rapid, MaxProp, SprayAndWait, Random}",
        columns: TRACE_SWEEP_COLUMNS,
        run: experiments::fig04_05,
    },
    ExperimentPlan {
        id: "fig06",
        title: "Fig. 6 (Trace): max delay vs load; RAPID metric = max delay",
        axes: "load x {Rapid(max), MaxProp, SprayAndWait, Random}",
        columns: TRACE_SWEEP_COLUMNS,
        run: experiments::fig06,
    },
    ExperimentPlan {
        id: "fig07",
        title: "Fig. 7 (Trace): delivery within 2.7h deadline vs load",
        axes: "load x {Rapid(deadline), MaxProp, SprayAndWait, Random}",
        columns: TRACE_SWEEP_COLUMNS,
        run: experiments::fig07,
    },
    ExperimentPlan {
        id: "fig08",
        title: "Fig. 8 (Trace): avg delay vs metadata cap",
        axes: "metadata cap fraction x load",
        columns: &[
            "metadata_cap_fraction",
            "load_per_dest_per_hour",
            "avg_delay_min",
            "delivery_rate",
            "metadata_over_bw",
        ],
        run: experiments::fig08,
    },
    ExperimentPlan {
        id: "fig09",
        title: "Fig. 9 (Trace): utilization / delivery / metadata-over-data vs load",
        axes: "load (RAPID only)",
        columns: &[
            "load_per_dest_per_hour",
            "channel_utilization",
            "delivery_rate",
            "metadata_over_data",
            "metadata_over_bw",
        ],
        run: experiments::fig09,
    },
    ExperimentPlan {
        id: "fig10_12",
        title: "Figs. 10-12 (Trace): in-band vs instant global control channel",
        axes: "load x {Rapid, Rapid-Global} x {avg, deadline}",
        columns: TRACE_SWEEP_COLUMNS,
        run: experiments::fig10_12,
    },
    ExperimentPlan {
        id: "fig13",
        title: "Fig. 13 (Trace): avg delay incl. undelivered vs load, with Optimal bounds",
        axes: "small loads x {Optimal-LB, Optimal-Feasible, Rapid-Global, Rapid, MaxProp}",
        columns: &["load_per_dest_per_hour", "series", "avg_delay_min"],
        run: experiments::fig13,
    },
    ExperimentPlan {
        id: "fig14",
        title: "Fig. 14 (Trace): component decomposition",
        axes: "load x {Random, Random+acks, Rapid-Local, Rapid}",
        columns: TRACE_SWEEP_COLUMNS,
        run: experiments::fig14,
    },
    ExperimentPlan {
        id: "fig15",
        title: "Fig. 15 (Trace): CDF of Jain's fairness index over parallel-packet groups",
        axes: "burst group size x burst groups",
        columns: &["parallel_packets", "fairness_index", "cdf"],
        run: experiments::fig15,
    },
    ExperimentPlan {
        id: "fig16_18",
        title: "Figs. 16-18 (Powerlaw): avg delay / max delay / within-deadline vs load",
        axes: "load x {Rapid variants, MaxProp, SprayAndWait, Random}",
        columns: SYNTH_SWEEP_COLUMNS,
        run: experiments::fig16_18,
    },
    ExperimentPlan {
        id: "fig19_21",
        title: "Figs. 19-21 (Powerlaw): metrics vs buffer size",
        axes: "buffer KB x {Rapid variants, MaxProp, SprayAndWait, Random}",
        columns: &[
            "buffer_kb",
            "series",
            "avg_delay_s",
            "max_delay_s",
            "delivery_rate",
            "within_deadline",
        ],
        run: experiments::fig19_21,
    },
    ExperimentPlan {
        id: "fig22_24",
        title: "Figs. 22-24 (Exponential): avg delay / max delay / within-deadline vs load",
        axes: "load x {Rapid variants, MaxProp, SprayAndWait, Random}",
        columns: SYNTH_SWEEP_COLUMNS,
        run: experiments::fig22_24,
    },
    ExperimentPlan {
        id: "fig_churn",
        title: "Churn family: avg delay / delivery vs window duration and node downtime",
        axes: "window duration x down fraction x {Rapid, Epidemic, Random}",
        columns: &[
            "window_s",
            "down_fraction",
            "series",
            "avg_delay_s",
            "delivery_rate",
            "within_deadline",
            "expired_rate",
            "suppressed_contacts",
        ],
        run: experiments::fig_churn,
    },
    ExperimentPlan {
        id: "scale",
        title: "Scale family: 100k-node streamed fleet, bounded-memory proof",
        axes: "RAPID_SCALE_RUNS streamed (or materialized) runs",
        columns: &[
            "mode",
            "run",
            "nodes",
            "contacts_driven",
            "packets_created",
            "delivery_rate",
            "expired",
            "wall_s",
            "peak_rss_mb",
        ],
        run: scale::run_scale,
    },
    ExperimentPlan {
        id: "scale_compressed",
        title: "Compressed scale family: periodic-atom plan, lazy expansion, flat memory",
        axes: "RAPID_SCALE_RUNS compressed (or materialized) runs",
        columns: &[
            "mode",
            "run",
            "nodes",
            "contacts_driven",
            "packets_created",
            "delivery_rate",
            "expired",
            "wall_s",
            "peak_rss_mb",
            "plan_atoms",
            "plan_windows",
            "plan_kb",
            "expanded_kb",
            "compression_ratio",
        ],
        run: scale::run_scale_compressed,
    },
    ExperimentPlan {
        id: "scale_sharded",
        title:
            "Sharded scale family: regional fleet, per-shard event loops, conservative sync horizon",
        axes: "RAPID_SCALE_RUNS runs x RAPID_SHARDS partitioned event loops x RAPID_SCALE_PROTO {random, rapid}",
        columns: &[
            "run",
            "nodes",
            "windows_planned",
            "contacts_driven",
            "packets_created",
            "delivery_rate",
            "expired",
            "shards",
            "free_run_horizon_s",
            "wall_s",
            "peak_rss_mb",
        ],
        run: scale::run_scale_sharded,
    },
    ExperimentPlan {
        id: "ttest",
        title: "Paired t-test on per-(src,dst) mean delays: RAPID vs MaxProp",
        axes: "load x {Rapid, MaxProp}",
        columns: &[
            "load_per_dest_per_hour",
            "pairs",
            "t",
            "p_two_sided",
            "mean_diff_min",
        ],
        run: experiments::ttest,
    },
];

/// Long-format trace sweep schema (Figs. 4–7, 10–12, 14).
const TRACE_SWEEP_COLUMNS: &[&str] = &[
    "load_per_dest_per_hour",
    "series",
    "avg_delay_min",
    "delivery_rate",
    "max_delay_min",
    "within_deadline",
    "metadata_over_bw",
    "utilization",
];

/// Long-format synthetic sweep schema (Figs. 16–18, 22–24).
const SYNTH_SWEEP_COLUMNS: &[&str] = &[
    "load_per_dest_per_50s",
    "series",
    "avg_delay_s",
    "max_delay_s",
    "delivery_rate",
    "within_deadline",
];

/// Looks up a plan by id.
pub fn find(id: &str) -> Option<&'static ExperimentPlan> {
    PLANS.iter().find(|p| p.id == id)
}

/// All registered ids, in canonical order.
pub fn ids() -> Vec<&'static str> {
    PLANS.iter().map(|p| p.id).collect()
}

/// Dispatch for the thin `fig*` binaries: runs the plan or exits 2 with a
/// usage message (an unknown id here is a programming error in the bin).
pub fn run_or_exit(id: &str) {
    match find(id) {
        Some(plan) => (plan.run)(),
        None => {
            eprintln!(
                "error: unknown experiment `{id}`; known: {}",
                ids().join(" ")
            );
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonempty() {
        let mut ids = ids();
        assert!(!ids.is_empty());
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment id");
    }

    #[test]
    fn every_plan_documents_its_schema() {
        for p in PLANS {
            assert!(!p.title.is_empty(), "{} has no title", p.id);
            assert!(!p.axes.is_empty(), "{} has no axes", p.id);
            assert!(!p.columns.is_empty(), "{} has no columns", p.id);
        }
    }

    #[test]
    fn find_resolves_known_and_rejects_unknown() {
        assert!(find("fig03").is_some());
        assert!(find("scale").is_some());
        assert!(find("fig99").is_none());
    }
}
