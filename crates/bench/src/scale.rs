//! The `scale` scenario family: proof that the streaming pipeline runs
//! fleets far past anything a materialized schedule could hold.
//!
//! Defaults: 100 000 nodes and ≈1.2 million contact windows drawn from the
//! sparse [`ScaleFleet`] generator — the windows are pulled straight into
//! the engine and dropped after being driven, so the full contact plan
//! never exists in memory. `RAPID_SCALE_MODE=materialized` runs the same
//! scenario the old way (collect into a `Schedule`/`Workload` first) for
//! an apples-to-apples wall-clock / peak-RSS comparison (recorded in
//! `BENCH_pr4.json`).
//!
//! Knobs (all env): `RAPID_SCALE_NODES`, `RAPID_SCALE_WINDOWS`,
//! `RAPID_SCALE_PACKETS`, `RAPID_SCALE_HORIZON_S`, `RAPID_SCALE_RUNS`,
//! `RAPID_SCALE_MODE` (`streamed` | `materialized`), and
//! `RAPID_SCALE_MAX_RSS_MB` (> 0 ⇒ exit 1 if peak RSS exceeds the bound —
//! the CI memory check).

use crate::proto::Proto;
use crate::runner::{run_spec, run_with_recovery, ContactsSpec, PacketsSpec, RunSpec};
use crate::tsv::{f, Tsv};
use crate::{env_u64, root_seed};
use dtn_mobility::{RegionalFleet, ScaleFleet};
use dtn_sim::checkpoint::routing_checkpointable;
use dtn_sim::{
    run_sharded_hooked, run_streaming_hooked, CompiledPlan, Partition, ShardStats, SimConfig, Time,
    TimeDelta,
};
use dtn_stats::{Extrema, ShardSlots, StreamingMean};
use std::sync::Arc;

/// Packet size (matches the rest of the harness: 1 KB).
pub const PACKET_BYTES: u64 = 1024;

/// The scale laboratory: a sparse fleet plus workload/buffer calibration.
#[derive(Debug, Clone, Copy)]
pub struct ScaleLab {
    /// The sparse fleet (nodes, expected windows, opportunity, horizon).
    pub fleet: ScaleFleet,
    /// Expected packet creations over the horizon.
    pub packets: u64,
    /// Per-node buffer capacity, bytes.
    pub buffer: u64,
    /// Delivery deadline (reporting only).
    pub deadline: TimeDelta,
    /// Packet TTL — keeps replica state bounded over long horizons.
    pub ttl: TimeDelta,
    /// Root seed.
    pub seed: u64,
}

impl ScaleLab {
    /// Defaults (overridable via the `RAPID_SCALE_*` env knobs): 100k
    /// nodes, 1.2M expected windows, 50k packets over a 2-hour horizon,
    /// user-to-gateway traffic toward 64 hubs (`RAPID_SCALE_HUBS=0` for
    /// uniform pairs).
    pub fn from_env(seed: u64) -> Self {
        let nodes = env_u64("RAPID_SCALE_NODES", 100_000) as usize;
        let windows = env_u64("RAPID_SCALE_WINDOWS", 1_200_000);
        let packets = env_u64("RAPID_SCALE_PACKETS", 50_000);
        let horizon = Time::from_secs(env_u64("RAPID_SCALE_HORIZON_S", 7200));
        let hubs = env_u64("RAPID_SCALE_HUBS", 64) as usize;
        // Calibration note: once the schedule itself streams, peak memory
        // and wall time are made of *world state* — replica metadata,
        // holder lists, full buffers. The small per-contact opportunity
        // (2 packets each way) damps Random's flooding so replica counts
        // stay in the tens per packet, the 16-packet buffers bound
        // per-node state, and the 15-minute TTL gives a packet a
        // multi-contact lifetime (a node sees ~1 contact per 5 minutes at
        // the default density) without letting replicas pile up.
        Self {
            fleet: ScaleFleet {
                nodes,
                contacts: windows,
                opportunity_bytes: 2 * 1024,
                contact_duration: TimeDelta::ZERO,
                horizon,
                hubs: hubs.min(nodes),
                hub_bias: 0.3,
            },
            packets,
            buffer: 16 * 1024,
            deadline: TimeDelta::from_secs(600),
            ttl: TimeDelta::from_secs(900),
            seed,
        }
    }

    /// One streamed run: both sources are per-run generator streams.
    pub fn spec(&self, run: u32) -> RunSpec {
        let fleet = self.fleet;
        let (seed, packets) = (self.seed, self.packets);
        RunSpec {
            contacts: ContactsSpec::streaming(move || {
                Box::new(fleet.contact_stream(seed, u64::from(run)))
            }),
            packets: PacketsSpec::streaming(move || {
                Box::new(fleet.packet_stream(packets, PACKET_BYTES, seed, u64::from(run)))
            }),
            nodes: self.fleet.nodes,
            buffer: self.buffer,
            deadline: self.deadline,
            horizon: self.fleet.horizon,
            seed: self.seed ^ u64::from(run),
            noise: None,
            measure_from: Time::ZERO,
            churn: Vec::new(),
            ttl: Some(self.ttl),
        }
    }

    /// The same run with the scenario materialized up front — the
    /// pre-streaming pipeline, kept for the baseline comparison.
    pub fn spec_materialized(&self, run: u32) -> RunSpec {
        let streamed = self.spec(run);
        RunSpec {
            contacts: ContactsSpec::shared(streamed.contacts.materialize()),
            packets: PacketsSpec::shared(streamed.packets.materialize()),
            ..streamed
        }
    }

    /// Route count for the compressed family: `RAPID_SCALE_ROUTES`, default
    /// one periodic route per ~200 windows (so the plan is a few thousandths
    /// the size of its expansion at the default repeat count).
    pub fn routes_from_env(&self) -> usize {
        env_u64("RAPID_SCALE_ROUTES", (self.fleet.contacts / 200).max(1)) as usize
    }

    /// The compressed contact plan for one run: `routes` periodic generator
    /// atoms whose expansion walks the same fleet shape as
    /// [`ScaleFleet::contact_stream`] — hub-biased pairs, the same per-window
    /// opportunity — but held as O(routes) atoms instead of O(windows)
    /// structs.
    pub fn compiled_plan(&self, routes: usize, run: u32) -> Arc<CompiledPlan> {
        Arc::new(self.fleet.periodic_plan(routes, self.seed, u64::from(run)))
    }

    /// One run over a compiled plan: contacts expand lazily from the plan's
    /// atom cursor, packets stream exactly as in [`ScaleLab::spec`].
    pub fn spec_compressed(&self, plan: &Arc<CompiledPlan>, run: u32) -> RunSpec {
        RunSpec {
            contacts: ContactsSpec::compiled(Arc::clone(plan)),
            ..self.spec(run)
        }
    }
}

/// Peak resident set size of this process in MB (`VmHWM`), if the
/// platform exposes it.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Best-effort reset of the `VmHWM` high-water mark (Linux: writing `5`
/// to `/proc/self/clear_refs`), so each measurement covers the run it
/// brackets rather than the process lifetime — `fig_all` executes plans
/// in-process, and without the reset `scale` would report whatever peak
/// an earlier experiment reached. Freed-but-cached allocator pages can
/// still inflate an in-process reading; the standalone `scale` binary
/// (what CI runs) is the clean-room measurement. Public so `bench_smoke`
/// can bracket each gate with its own peak reading.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// The `scale` experiment: runs the family, reports throughput and peak
/// memory, and enforces `RAPID_SCALE_MAX_RSS_MB` when set.
pub fn run_scale() {
    let seed = root_seed();
    let lab = ScaleLab::from_env(seed);
    let mode = std::env::var("RAPID_SCALE_MODE").unwrap_or_else(|_| "streamed".into());
    assert!(
        mode == "streamed" || mode == "materialized",
        "RAPID_SCALE_MODE must be `streamed` or `materialized`"
    );
    let runs = env_u64("RAPID_SCALE_RUNS", 1).max(1) as u32;
    let max_rss_mb = env_u64("RAPID_SCALE_MAX_RSS_MB", 0);

    let mut tsv = Tsv::new("scale");
    tsv.comment("Scale family: sparse fleet streamed through the engine (Random replication)");
    tsv.comment(&format!(
        "mode = {mode}, nodes = {}, expected windows = {}, expected packets = {}, \
         horizon = {} s, seed = {seed}",
        lab.fleet.nodes,
        lab.fleet.contacts,
        lab.packets,
        lab.fleet.horizon.as_secs_f64(),
    ));
    tsv.row(&[
        "mode",
        "run",
        "nodes",
        "contacts_driven",
        "packets_created",
        "delivery_rate",
        "expired",
        "wall_s",
        "peak_rss_mb",
    ]);

    let mut delivery = StreamingMean::new();
    let mut wall = StreamingMean::new();
    let mut rss = Extrema::new();
    for run in 0..runs {
        // Reset before building the spec so a materialized scenario's
        // allocation is part of its own footprint.
        reset_peak_rss();
        let spec = if mode == "materialized" {
            lab.spec_materialized(run)
        } else {
            lab.spec(run)
        };
        let t0 = std::time::Instant::now();
        let report = run_spec(&spec, Proto::Random);
        let wall_s = t0.elapsed().as_secs_f64();
        let peak = peak_rss_mb().unwrap_or(0.0);
        delivery.push(report.delivery_rate());
        wall.push(wall_s);
        rss.push(peak);
        tsv.row(&[
            mode.clone(),
            format!("{run}"),
            format!("{}", lab.fleet.nodes),
            format!("{}", report.contacts),
            format!("{}", report.created()),
            f(report.delivery_rate()),
            format!("{}", report.expired),
            f(wall_s),
            f(peak),
        ]);
    }
    tsv.comment(&format!(
        "mean delivery = {}, mean wall = {} s, peak rss = {} MB",
        f(delivery.mean().unwrap_or(0.0)),
        f(wall.mean().unwrap_or(0.0)),
        f(rss.max().unwrap_or(0.0)),
    ));

    if max_rss_mb > 0 {
        let peak = rss.max().unwrap_or(0.0);
        // Panic, don't exit: the standalone binary still dies non-zero
        // (CI's check), while fig_all's per-plan catch_unwind records one
        // FAIL row and keeps running the remaining experiments.
        assert!(
            peak <= max_rss_mb as f64,
            "scale family FAILED: peak RSS {peak:.1} MB exceeds the \
             RAPID_SCALE_MAX_RSS_MB bound ({max_rss_mb} MB)"
        );
        eprintln!("scale family: peak RSS {peak:.1} MB within the {max_rss_mb} MB bound");
    }
}

/// The `scale_compressed` experiment: the scale family driven from a
/// compressed contact plan — `RAPID_SCALE_ROUTES` periodic generator atoms
/// expanding lazily to `RAPID_SCALE_WINDOWS` windows — instead of a
/// per-window stream. `RAPID_SCALE_MODE=materialized` expands the *same*
/// plan into a full `Schedule` first, so the two modes simulate a
/// byte-identical scenario and differ only in plan representation; CI
/// diffs the aggregate columns (2–7) between modes and bounds the
/// compressed mode's peak RSS. Plan-size columns record the compression:
/// `plan_kb` is the resident atom storage, `expanded_kb` what the same
/// windows cost as 48-byte structs.
pub fn run_scale_compressed() {
    let seed = root_seed();
    let lab = ScaleLab::from_env(seed);
    let mode = std::env::var("RAPID_SCALE_MODE").unwrap_or_else(|_| "compressed".into());
    assert!(
        mode == "compressed" || mode == "materialized",
        "RAPID_SCALE_MODE must be `compressed` or `materialized`"
    );
    let routes = lab.routes_from_env();
    let runs = env_u64("RAPID_SCALE_RUNS", 1).max(1) as u32;
    let max_rss_mb = env_u64("RAPID_SCALE_MAX_RSS_MB", 0);

    let mut tsv = Tsv::new("scale_compressed");
    tsv.comment("Compressed scale family: periodic-atom plan expanded lazily through the engine");
    tsv.comment(&format!(
        "mode = {mode}, nodes = {}, routes = {routes}, expected windows = {}, \
         expected packets = {}, horizon = {} s, seed = {seed}",
        lab.fleet.nodes,
        lab.fleet.contacts,
        lab.packets,
        lab.fleet.horizon.as_secs_f64(),
    ));
    tsv.row(&[
        "mode",
        "run",
        "nodes",
        "contacts_driven",
        "packets_created",
        "delivery_rate",
        "expired",
        "wall_s",
        "peak_rss_mb",
        "plan_atoms",
        "plan_windows",
        "plan_kb",
        "expanded_kb",
        "compression_ratio",
    ]);

    let mut delivery = StreamingMean::new();
    let mut wall = StreamingMean::new();
    let mut rss = Extrema::new();
    for run in 0..runs {
        // Reset before compiling so the plan (and, in materialized mode,
        // its full expansion) is part of the run's own footprint.
        reset_peak_rss();
        let plan = lab.compiled_plan(routes, run);
        let plan_kb = plan.in_memory_bytes() as f64 / 1024.0;
        let expanded_kb = plan.materialized_bytes() as f64 / 1024.0;
        let (atoms, windows) = (plan.atom_count(), plan.window_count());
        let spec = if mode == "materialized" {
            RunSpec {
                contacts: ContactsSpec::shared(plan.materialize()),
                ..lab.spec(run)
            }
        } else {
            lab.spec_compressed(&plan, run)
        };
        drop(plan);
        let t0 = std::time::Instant::now();
        let report = run_spec(&spec, Proto::Random);
        let wall_s = t0.elapsed().as_secs_f64();
        let peak = peak_rss_mb().unwrap_or(0.0);
        delivery.push(report.delivery_rate());
        wall.push(wall_s);
        rss.push(peak);
        tsv.row(&[
            mode.clone(),
            format!("{run}"),
            format!("{}", lab.fleet.nodes),
            format!("{}", report.contacts),
            format!("{}", report.created()),
            f(report.delivery_rate()),
            format!("{}", report.expired),
            f(wall_s),
            f(peak),
            format!("{atoms}"),
            format!("{windows}"),
            f(plan_kb),
            f(expanded_kb),
            f(expanded_kb / plan_kb.max(f64::MIN_POSITIVE)),
        ]);
    }
    tsv.comment(&format!(
        "mean delivery = {}, mean wall = {} s, peak rss = {} MB",
        f(delivery.mean().unwrap_or(0.0)),
        f(wall.mean().unwrap_or(0.0)),
        f(rss.max().unwrap_or(0.0)),
    ));

    if max_rss_mb > 0 {
        let peak = rss.max().unwrap_or(0.0);
        assert!(
            peak <= max_rss_mb as f64,
            "scale_compressed FAILED: peak RSS {peak:.1} MB exceeds the \
             RAPID_SCALE_MAX_RSS_MB bound ({max_rss_mb} MB)"
        );
        eprintln!("scale_compressed: peak RSS {peak:.1} MB within the {max_rss_mb} MB bound");
    }
}

/// The regional wrapper for the sharded family: `RAPID_SCALE_REGIONS`
/// contiguous regions (default 64) with `RAPID_SCALE_LOCALITY` of the
/// meetings staying inside one region (default 0.95) — ScaleFleet's
/// hub-gateway structure arranged so shard boundaries fall on region
/// boundaries and only the gateway backbone crosses them.
pub fn regional_fleet(lab: &ScaleLab) -> RegionalFleet {
    let regions = env_u64("RAPID_SCALE_REGIONS", 64) as usize;
    let locality = dtn_sim::env::f64_from_env("RAPID_SCALE_LOCALITY", 0.95);
    assert!(locality <= 1.0, "RAPID_SCALE_LOCALITY is a probability");
    RegionalFleet {
        fleet: lab.fleet,
        regions,
        locality,
    }
}

/// The engine configuration the sharded family runs under (the same
/// shape [`run_spec`] builds, minus the spec indirection).
fn sharded_config(lab: &ScaleLab, run: u32) -> SimConfig {
    SimConfig {
        nodes: lab.fleet.nodes,
        buffer_capacity: lab.buffer,
        deadline: Some(lab.deadline),
        ttl: Some(lab.ttl),
        horizon: lab.fleet.horizon,
        allow_global_knowledge: false,
        seed: lab.seed ^ u64::from(run),
        measure_from: Time::ZERO,
        intra_jobs: dtn_sim::intra_jobs_from_env(),
        lookahead: dtn_sim::par::Lookahead::from_env(),
    }
}

/// The protocol the scale_sharded family drives: `RAPID_SCALE_PROTO` is
/// `random` (default, the PR 8 baseline) or `rapid` (in-band RAPID, the
/// paper's protocol on the sharded runtime). Anything else aborts — a
/// typo must not silently time the wrong protocol.
pub fn scale_proto() -> Proto {
    match std::env::var("RAPID_SCALE_PROTO") {
        Err(_) => Proto::Random,
        Ok(v) if v == "random" => Proto::Random,
        Ok(v) if v == "rapid" => Proto::RapidAvg,
        Ok(v) => panic!("RAPID_SCALE_PROTO must be `random` or `rapid`, got `{v}`"),
    }
}

/// One run of the regional scenario: the compiled regional plan expanded
/// lazily into either the serial engine (one shard) or the sharded
/// runtime (per-shard event loops under conservative barriers). The
/// report is byte-identical at any shard count; the `Vec<ShardStats>` is
/// empty on the serial path.
///
/// Routed through [`run_with_recovery`], so the `RAPID_CKPT_*` knobs
/// apply to the scale family too: a killed `scale_sharded` process
/// restarted with the same environment resumes from its last good
/// snapshot instead of starting over (the CI kill-resume smoke drives
/// exactly this path).
pub fn run_regional(
    lab: &ScaleLab,
    rf: &RegionalFleet,
    partition: &Partition,
    plan: &Arc<CompiledPlan>,
    run: u32,
    proto: Proto,
) -> (dtn_sim::SimReport, Vec<ShardStats>) {
    let config = sharded_config(lab, run);
    let measured_len = TimeDelta(lab.fleet.horizon.0);
    let probe = proto.build(lab.deadline, measured_len);
    let checkpointable = routing_checkpointable(probe.as_ref());
    let mut stats = Vec::new();
    let report = run_with_recovery(&config, &probe.name(), checkpointable, &mut |hooks| {
        let mut contacts = ContactsSpec::compiled(Arc::clone(plan)).source();
        let mut packets =
            Box::new(rf.packet_stream(lab.packets, PACKET_BYTES, lab.seed, u64::from(run)));
        if partition.shards() == 1 {
            let mut routing = proto.build(lab.deadline, measured_len);
            stats = Vec::new();
            run_streaming_hooked(
                &config,
                contacts.as_mut(),
                packets.as_mut(),
                &[],
                None,
                routing.as_mut(),
                hooks,
            )
        } else {
            let (report, shard_stats) = run_sharded_hooked(
                &config,
                partition,
                contacts.as_mut(),
                packets.as_mut(),
                &[],
                None,
                &mut || proto.build(lab.deadline, measured_len),
                hooks,
            );
            stats = shard_stats;
            report
        }
    });
    (report, stats)
}

/// The `scale_sharded` experiment: the scale family on the regional
/// fleet, partitioned into `RAPID_SHARDS` per-shard event loops (default
/// 1 = the serial engine). Aggregate columns (1–7) are byte-identical at
/// any shard count — CI diffs them between `RAPID_SHARDS=1` and `=4` —
/// while the shard-dependent telemetry (shard count, static free-run
/// horizon, wall, RSS) sits after them. Per-shard timing lands in
/// `results/scale_sharded_shards.tsv`.
pub fn run_scale_sharded() {
    let seed = root_seed();
    let lab = ScaleLab::from_env(seed);
    let rf = regional_fleet(&lab);
    let shards = dtn_sim::clamp_shards(dtn_sim::shards_from_env(), lab.fleet.nodes);
    let partition = rf.partition(shards);
    let proto = scale_proto();
    let routes = lab.routes_from_env();
    let runs = env_u64("RAPID_SCALE_RUNS", 1).max(1) as u32;
    let max_rss_mb = env_u64("RAPID_SCALE_MAX_RSS_MB", 0);

    let mut tsv = Tsv::new("scale_sharded");
    tsv.comment(
        "Sharded scale family: regional fleet, per-shard event loops, conservative sync horizon",
    );
    tsv.comment(&format!(
        "shards = {shards}, proto = {}, regions = {}, locality = {}, nodes = {}, \
         routes = {routes}, expected windows = {}, expected packets = {}, \
         horizon = {} s, seed = {seed}",
        proto.label(),
        rf.regions,
        rf.locality,
        lab.fleet.nodes,
        lab.fleet.contacts,
        lab.packets,
        lab.fleet.horizon.as_secs_f64(),
    ));
    tsv.row(&[
        "run",
        "nodes",
        "windows_planned",
        "contacts_driven",
        "packets_created",
        "delivery_rate",
        "expired",
        "shards",
        "free_run_horizon_s",
        "wall_s",
        "peak_rss_mb",
    ]);

    let mut shard_tsv = Tsv::new("scale_sharded_shards");
    shard_tsv.comment("Per-shard timing for the scale_sharded family");
    shard_tsv.row(&[
        "run",
        "shard",
        "nodes",
        "drives",
        "creations",
        "busy_s",
        "concurrency",
    ]);

    let mut delivery = StreamingMean::new();
    let mut wall = StreamingMean::new();
    let mut rss = Extrema::new();
    let mut busy: ShardSlots<StreamingMean> = ShardSlots::new(partition.shards());
    for run in 0..runs {
        // Reset before compiling so the plan is part of the run's own
        // footprint.
        reset_peak_rss();
        let plan = Arc::new(rf.periodic_plan(routes, seed, u64::from(run)));
        let windows = plan.window_count();
        // The static conservative horizon: shards free-run to the first
        // cross-shard window's start before any barrier can occur.
        let free_run = plan.first_cross_shard_start(&partition);
        let t0 = std::time::Instant::now();
        let (report, stats) = run_regional(&lab, &rf, &partition, &plan, run, proto);
        let wall_s = t0.elapsed().as_secs_f64();
        let peak = peak_rss_mb().unwrap_or(0.0);
        delivery.push(report.delivery_rate());
        wall.push(wall_s);
        rss.push(peak);
        tsv.row(&[
            format!("{run}"),
            format!("{}", lab.fleet.nodes),
            format!("{windows}"),
            format!("{}", report.contacts),
            format!("{}", report.created()),
            f(report.delivery_rate()),
            format!("{}", report.expired),
            format!("{shards}"),
            free_run.map_or_else(|| "-".into(), |t| f(t.as_secs_f64())),
            f(wall_s),
            f(peak),
        ]);
        for s in &stats {
            busy.slot_mut(s.shard).push(s.busy.as_secs_f64());
            shard_tsv.row(&[
                format!("{run}"),
                format!("{}", s.shard),
                format!("{}", s.nodes),
                format!("{}", s.drives),
                format!("{}", s.creations),
                f(s.busy.as_secs_f64()),
                s.concurrency.label().into(),
            ]);
        }
    }
    let total_busy = busy.clone().fold();
    if total_busy.count() > 0 {
        shard_tsv.comment(&format!(
            "mean busy per shard = {} s ({} shard-run samples, shard-order fold)",
            f(total_busy.mean().unwrap_or(0.0)),
            total_busy.count(),
        ));
    }
    tsv.comment(&format!(
        "mean delivery = {}, mean wall = {} s, peak rss = {} MB",
        f(delivery.mean().unwrap_or(0.0)),
        f(wall.mean().unwrap_or(0.0)),
        f(rss.max().unwrap_or(0.0)),
    ));

    if max_rss_mb > 0 {
        let peak = rss.max().unwrap_or(0.0);
        assert!(
            peak <= max_rss_mb as f64,
            "scale_sharded FAILED: peak RSS {peak:.1} MB exceeds the \
             RAPID_SCALE_MAX_RSS_MB bound ({max_rss_mb} MB)"
        );
        eprintln!("scale_sharded: peak RSS {peak:.1} MB within the {max_rss_mb} MB bound");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_is_deterministic_and_bounded() {
        let lab = ScaleLab {
            fleet: ScaleFleet {
                nodes: 2_000,
                contacts: 5_000,
                opportunity_bytes: 16 * 1024,
                contact_duration: TimeDelta::ZERO,
                horizon: Time::from_secs(1800),
                hubs: 16,
                hub_bias: 0.5,
            },
            packets: 500,
            buffer: 64 * 1024,
            deadline: TimeDelta::from_secs(60),
            ttl: TimeDelta::from_secs(600),
            seed: 11,
        };
        let a = run_spec(&lab.spec(0), Proto::Random);
        let b = run_spec(&lab.spec(0), Proto::Random);
        assert_eq!(a, b, "streamed scale runs replay bit-identically");
        assert!(a.created() > 300, "workload materialized: {}", a.created());
        assert!(a.contacts > 4000, "contacts driven: {}", a.contacts);

        // The streamed and materialized paths simulate the same scenario.
        let m = run_spec(&lab.spec_materialized(0), Proto::Random);
        assert_eq!(a, m, "materialized baseline must match the stream");
    }

    #[test]
    fn compressed_mode_matches_its_materialized_expansion() {
        let lab = ScaleLab {
            fleet: ScaleFleet {
                nodes: 2_000,
                contacts: 5_000,
                opportunity_bytes: 16 * 1024,
                contact_duration: TimeDelta::ZERO,
                horizon: Time::from_secs(1800),
                hubs: 16,
                hub_bias: 0.5,
            },
            packets: 500,
            buffer: 64 * 1024,
            deadline: TimeDelta::from_secs(60),
            ttl: TimeDelta::from_secs(600),
            seed: 11,
        };
        let routes = (lab.fleet.contacts / 200).max(1) as usize;
        let plan = lab.compiled_plan(routes, 0);
        assert!(
            plan.materialized_bytes() >= 10 * plan.in_memory_bytes() as u64,
            "periodic plan must compress >=10x: {} vs {}",
            plan.in_memory_bytes(),
            plan.materialized_bytes()
        );
        let lazy = run_spec(&lab.spec_compressed(&plan, 0), Proto::Random);
        let eager = run_spec(
            &RunSpec {
                contacts: ContactsSpec::shared(plan.materialize()),
                ..lab.spec(0)
            },
            Proto::Random,
        );
        assert_eq!(
            lazy, eager,
            "lazy expansion must replay the materialized plan"
        );
        assert!(
            lazy.contacts > 4_000,
            "plan drove {} contacts",
            lazy.contacts
        );
        assert!(lazy.created() > 300, "workload created {}", lazy.created());
    }

    #[test]
    fn regional_sharded_run_matches_serial_engine() {
        let lab = ScaleLab {
            fleet: ScaleFleet {
                nodes: 2_000,
                contacts: 5_000,
                opportunity_bytes: 16 * 1024,
                contact_duration: TimeDelta::ZERO,
                horizon: Time::from_secs(1800),
                hubs: 16,
                hub_bias: 0.5,
            },
            packets: 500,
            buffer: 64 * 1024,
            deadline: TimeDelta::from_secs(60),
            ttl: TimeDelta::from_secs(600),
            seed: 11,
        };
        let rf = RegionalFleet {
            fleet: lab.fleet,
            regions: 8,
            locality: 0.9,
        };
        let plan = Arc::new(rf.periodic_plan(50, lab.seed, 0));
        let (serial, no_stats) = run_regional(&lab, &rf, &rf.partition(1), &plan, 0, Proto::Random);
        assert!(no_stats.is_empty(), "serial path has no shard telemetry");
        assert!(serial.contacts > 4_000, "plan drove {}", serial.contacts);
        assert!(
            serial.created() > 300,
            "workload created {}",
            serial.created()
        );
        for shards in [2, 4, 8] {
            let part = rf.partition(shards);
            let (sharded, stats) = run_regional(&lab, &rf, &part, &plan, 0, Proto::Random);
            assert_eq!(serial, sharded, "{shards}-shard run must match the engine");
            assert_eq!(stats.len(), shards);
            assert_eq!(
                stats.iter().map(|s| s.nodes).sum::<usize>(),
                lab.fleet.nodes,
                "shard telemetry covers the node space"
            );
            assert!(
                stats
                    .iter()
                    .all(|s| s.concurrency == dtn_sim::ContactConcurrency::Stateless),
                "Random rides the per-shard-instance tier"
            );
        }

        // The paper's own protocol on a smaller regional plan (debug-mode
        // RAPID recomputes its eviction oracle from scratch, so the fleet
        // is sized for test time): in-band RAPID is NodeDisjoint (one
        // shared instance, per-node partitions) and must also replay the
        // serial engine byte-for-byte.
        let lab = ScaleLab {
            fleet: ScaleFleet {
                nodes: 300,
                contacts: 2_500,
                opportunity_bytes: 4 * 1024,
                contact_duration: TimeDelta::ZERO,
                horizon: Time::from_secs(1800),
                hubs: 8,
                hub_bias: 0.5,
            },
            packets: 200,
            buffer: 16 * 1024,
            deadline: TimeDelta::from_secs(60),
            ttl: TimeDelta::from_secs(600),
            seed: 11,
        };
        let rf = RegionalFleet {
            fleet: lab.fleet,
            regions: 8,
            locality: 0.9,
        };
        let plan = Arc::new(rf.periodic_plan(30, lab.seed, 0));
        let (serial, _) = run_regional(&lab, &rf, &rf.partition(1), &plan, 0, Proto::RapidAvg);
        assert!(serial.contacts > 2_000, "plan drove {}", serial.contacts);
        for shards in [2, 4] {
            let part = rf.partition(shards);
            let (sharded, stats) = run_regional(&lab, &rf, &part, &plan, 0, Proto::RapidAvg);
            assert_eq!(serial, sharded, "{shards}-shard RAPID diverged");
            assert!(
                stats
                    .iter()
                    .all(|s| s.concurrency == dtn_sim::ContactConcurrency::NodeDisjoint),
                "in-band RAPID rides the single-instance tier"
            );
        }
    }
}
