//! Thin dispatch into the experiment registry: `scale_compressed`.
//! See `rapid_bench::registry` for the plan (axes, TSV schema) and
//! `rapid_bench::scale` for the implementation and `RAPID_SCALE_*` knobs
//! (`RAPID_SCALE_ROUTES` sizes the plan; `RAPID_SCALE_MODE=materialized`
//! expands the same plan eagerly for the baseline comparison).

fn main() {
    rapid_bench::registry::run_or_exit("scale_compressed");
}
