//! Fig. 14 (Trace): RAPID component decomposition — Random, Random with
//! flooded acks, rapid-local (metadata about own buffer only), full RAPID.

use rapid_bench::families::{trace_loads, trace_sweep};
use rapid_bench::Proto;

fn main() {
    trace_sweep(
        "fig14",
        "Fig. 14 (Trace): components — Random, Random+acks, Rapid-Local, Rapid",
        &trace_loads(),
        &[
            Proto::Random,
            Proto::RandomAcks,
            Proto::RapidAvgLocal,
            Proto::RapidAvg,
        ],
    );
}
