//! Fig. 7 (Trace): fraction delivered within the 2.7 h deadline vs load,
//! RAPID optimizing missed deadlines (Eq. 2). Read `within_deadline`.

use rapid_bench::families::{trace_loads, trace_sweep};
use rapid_bench::Proto;

fn main() {
    trace_sweep(
        "fig07",
        "Fig. 7 (Trace): delivery within 2.7h deadline vs load; RAPID metric = deadline",
        &trace_loads(),
        &[
            Proto::RapidDeadline,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ],
    );
}
