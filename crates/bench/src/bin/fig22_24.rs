//! Figs. 22–24 (Exponential): the three metrics vs load under uniform
//! exponential mobility (§6.3.3).

use rapid_bench::families::{synth_load_sweep, synth_loads};
use rapid_bench::Mobility;

fn main() {
    synth_load_sweep(
        "fig22_24",
        "Figs. 22-24 (Exponential): avg delay / max delay / within-deadline vs load",
        Mobility::Exponential,
        &synth_loads(),
    );
}
