//! Thin dispatch into the experiment registry: `fig16_18`.
//! See `rapid_bench::registry` for the plan (axes, TSV schema) and
//! `rapid_bench::experiments` for the implementation.

fn main() {
    rapid_bench::registry::run_or_exit("fig16_18");
}
