//! Figs. 16–18 (Powerlaw): average delay, max delay and within-deadline
//! fraction vs load under popularity-skewed mobility. Each figure reads the
//! RAPID variant optimizing its own metric: `Rapid(avg)` for Fig. 16,
//! `Rapid(max)` for Fig. 17, `Rapid(deadline)` for Fig. 18.

use rapid_bench::families::{synth_load_sweep, synth_loads};
use rapid_bench::Mobility;

fn main() {
    synth_load_sweep(
        "fig16_18",
        "Figs. 16-18 (Powerlaw): avg delay / max delay / within-deadline vs load",
        Mobility::PowerLaw,
        &synth_loads(),
    );
}
