//! Fig. 9 (Trace): channel utilization, delivery rate and metadata/data as
//! load grows — the bottleneck-links story: delivery drops although the
//! network is underutilized on average.

use rapid_bench::trace_exp::{aggregate, TraceLab};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{days_per_point, root_seed, Proto};

fn main() {
    let mut tsv = Tsv::new("fig09");
    tsv.comment("Fig. 9 (Trace): utilization / delivery / metadata-over-data vs load (RAPID)");
    tsv.comment(&format!(
        "days per point = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "load_per_dest_per_hour",
        "channel_utilization",
        "delivery_rate",
        "metadata_over_data",
        "metadata_over_bw",
    ]);
    let lab = TraceLab::load_sweep(root_seed());
    for load in [5.0, 10.0, 20.0, 40.0, 60.0, 75.0] {
        let reports = lab.run_days(days_per_point(), load, Proto::RapidAvg, None);
        let a = aggregate(&reports);
        tsv.row(&[
            f(load),
            f(a.utilization),
            f(a.delivery_rate),
            f(a.metadata_over_data),
            f(a.metadata_over_bandwidth),
        ]);
    }
}
