//! Fig. 13 (Trace): comparison with Optimal at small loads. Average delay
//! *including undelivered packets* (charged their time in the system — the
//! ILP objective of Appendix D). Optimal is reported as a lower-bound /
//! feasible pair: when the gap is 0 the feasible schedule is certified
//! optimal (the CPLEX substitution recorded in DESIGN.md).

use dtn_optimal::solve_bounded;
use rapid_bench::runner::run_spec;
use rapid_bench::trace_exp::{TraceLab, WARMUP_DAYS};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{days_per_point, parallel_map, root_seed, Proto};

fn main() {
    let mut tsv = Tsv::new("fig13");
    tsv.comment(
        "Fig. 13 (Trace): avg delay incl. undelivered vs load — Optimal bounds, RAPID, MaxProp",
    );
    tsv.comment(&format!(
        "days per point = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&["load_per_dest_per_hour", "series", "avg_delay_min"]);
    let lab = TraceLab::load_sweep(root_seed());
    let days = days_per_point();
    for load in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        // Optimal bounds per day (on the measured window only).
        let bounds = parallel_map(days as usize, |d| {
            let spec = lab.day_spec(WARMUP_DAYS + d as u32, load, 0, None);
            // Strip the warm-up for the solver: it sees only the measured
            // window, which is exactly the instance the protocols face.
            let contacts: Vec<dtn_sim::ContactWindow> = spec
                .schedule
                .windows()
                .iter()
                .filter(|c| c.start >= spec.measure_from)
                .copied()
                .collect();
            let schedule = dtn_sim::Schedule::new(contacts);
            solve_bounded(&schedule, &spec.workload, spec.horizon)
        });
        let n = bounds.len() as f64;
        let lb: f64 = bounds
            .iter()
            .map(|b| b.lower_bound_avg_delay_secs)
            .sum::<f64>()
            / n
            / 60.0;
        let fs: f64 = bounds
            .iter()
            .map(|b| b.feasible_avg_delay_secs)
            .sum::<f64>()
            / n
            / 60.0;
        tsv.row::<&str>(&[]);
        tsv.row(&[f(load), "Optimal-LB".into(), f(lb)]);
        tsv.row(&[f(load), "Optimal-Feasible".into(), f(fs)]);

        for proto in [Proto::RapidAvgGlobal, Proto::RapidAvg, Proto::MaxProp] {
            let reports = parallel_map(days as usize, |d| {
                let spec = lab.day_spec(WARMUP_DAYS + d as u32, load, 0, None);
                run_spec(&spec, proto)
            });
            let avg: f64 = reports
                .iter()
                .map(|r| r.avg_delay_with_undelivered_secs().unwrap_or(0.0))
                .sum::<f64>()
                / reports.len() as f64
                / 60.0;
            tsv.row(&[f(load), proto.label(), f(avg)]);
        }
    }
}
