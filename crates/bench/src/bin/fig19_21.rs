//! Figs. 19–21 (Powerlaw): the three metrics vs available buffer space at a
//! fixed load of 20 packets per destination per 50 s — the storage-
//! constrained regime where eviction policy dominates (§6.3.2).

use rapid_bench::families::synth_buffer_sweep;
use rapid_bench::Mobility;

fn main() {
    synth_buffer_sweep(
        "fig19_21",
        "Figs. 19-21 (Powerlaw): metrics vs buffer size (load 20 per dest per 50s)",
        Mobility::PowerLaw,
        20.0,
        &[10, 20, 40, 80, 140, 200, 280],
    );
}
