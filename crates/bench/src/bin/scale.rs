//! Thin dispatch into the experiment registry: `scale`.
//! See `rapid_bench::registry` for the plan (axes, TSV schema) and
//! `rapid_bench::scale` for the implementation and `RAPID_SCALE_*` knobs.

fn main() {
    rapid_bench::registry::run_or_exit("scale");
}
