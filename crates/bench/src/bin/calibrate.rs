//! Calibration smoke-run: protocol ordering and runtime on small slices of
//! each experiment family. Not a paper artifact — a health check used while
//! tuning the substrate (kept because it doubles as a quickstart for the
//! harness).

use rapid_bench::synth::{aggregate as synth_agg, Mobility, SynthLab};
use rapid_bench::trace_exp::{aggregate as trace_agg, TraceLab};
use rapid_bench::{root_seed, Proto};
use std::time::Instant;

fn main() {
    let seed = root_seed();
    println!("# calibration (seed {seed})");

    let lab = TraceLab::load_sweep(seed);
    for load in [5.0, 20.0, 40.0] {
        for proto in [
            Proto::RapidAvg,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ] {
            let t0 = Instant::now();
            let reports = lab.run_days(3, load, proto, None);
            let agg = trace_agg(&reports);
            println!(
                "trace load={load:>4} {:<14} delay={:>7.1}min deliv={:.2} dl={:.2} util={:.3} meta/bw={:.4} [{:?}]",
                proto.label(),
                agg.avg_delay_min,
                agg.delivery_rate,
                agg.within_deadline,
                agg.utilization,
                agg.metadata_over_bandwidth,
                t0.elapsed()
            );
        }
    }

    let synth = SynthLab::new(seed);
    for load in [10.0, 40.0, 80.0] {
        for proto in [
            Proto::RapidAvg,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ] {
            let t0 = Instant::now();
            let reports = synth.run_many(Mobility::PowerLaw, 2, load, None, proto);
            let agg = synth_agg(&reports);
            println!(
                "powerlaw load={load:>4} {:<14} delay={:>6.1}s max={:>6.1}s deliv={:.2} dl={:.2} [{:?}]",
                proto.label(),
                agg.avg_delay_s,
                agg.max_delay_s,
                agg.delivery_rate,
                agg.within_deadline,
                t0.elapsed()
            );
        }
    }
}
