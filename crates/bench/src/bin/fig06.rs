//! Fig. 6 (Trace): maximum delay vs load, RAPID optimizing max delay
//! (Eq. 3). Read the `max_delay_min` column.

use rapid_bench::families::{trace_loads, trace_sweep};
use rapid_bench::Proto;

fn main() {
    trace_sweep(
        "fig06",
        "Fig. 6 (Trace): max delay vs load; RAPID metric = max delay",
        &trace_loads(),
        &[
            Proto::RapidMax,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ],
    );
}
