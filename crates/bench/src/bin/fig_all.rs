//! Runs the experiment binaries in sequence (the full reproduction).
//! Results land in `results/*.tsv`. Budget-minded defaults; see the
//! environment knobs in the crate docs to go bigger.
//!
//! Usage:
//!
//! ```text
//! fig_all               # run everything
//! fig_all fig08 table3  # run only the named binaries
//! ```
//!
//! Every requested binary runs even if an earlier one fails; the exit
//! status reflects the pass/fail summary printed at the end.

use std::process::Command;

const BINS: &[&str] = &[
    "table3",
    "fig03",
    "fig04_05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10_12",
    "fig13",
    "fig14",
    "fig15",
    "fig16_18",
    "fig19_21",
    "fig22_24",
    "fig_churn",
    "ttest",
];

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = filters.iter().find(|f| !BINS.contains(&f.as_str())) {
        eprintln!(
            "error: unknown experiment `{unknown}`; known: {}",
            BINS.join(" ")
        );
        std::process::exit(2);
    }
    let selected: Vec<&str> = if filters.is_empty() {
        BINS.to_vec()
    } else {
        // Keep canonical order regardless of argument order.
        BINS.iter()
            .copied()
            .filter(|b| filters.iter().any(|f| f == b))
            .collect()
    };

    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut results: Vec<(&str, bool)> = Vec::new();
    for &bin in &selected {
        eprintln!("=== {bin} ===");
        let ok = match Command::new(dir.join(bin)).status() {
            Ok(status) => status.success(),
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                false
            }
        };
        results.push((bin, ok));
    }

    let failed = results.iter().filter(|(_, ok)| !ok).count();
    eprintln!("=== summary ===");
    for (bin, ok) in &results {
        eprintln!("{} {bin}", if *ok { "PASS" } else { "FAIL" });
    }
    eprintln!(
        "{}/{} experiments passed; see results/*.tsv",
        results.len() - failed,
        results.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
