//! Runs every experiment binary in sequence (the full reproduction).
//! Results land in `results/*.tsv`. Budget-minded defaults; see the
//! environment knobs in the crate docs to go bigger.

use std::process::Command;

fn main() {
    let bins = [
        "table3", "fig03", "fig04_05", "fig06", "fig07", "fig08", "fig09", "fig10_12", "fig13",
        "fig14", "fig15", "fig16_18", "fig19_21", "fig22_24", "ttest",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        eprintln!("=== {bin} ===");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    eprintln!("all experiments complete; see results/*.tsv");
}
