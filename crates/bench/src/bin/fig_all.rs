//! Runs registered experiments in sequence (the full reproduction).
//! Results land in `results/*.tsv`. Budget-minded defaults; see the
//! environment knobs in the crate docs to go bigger.
//!
//! Usage:
//!
//! ```text
//! fig_all                     # run everything
//! fig_all fig08 table3        # run only the named experiments
//! fig_all --list              # print the registry (id, axes, columns)
//! fig_all --jobs 8 fig16_18   # pin the worker pool (default: available
//!                             # parallelism; RAPID_JOBS is the env
//!                             # equivalent, and --jobs wins over it)
//! ```
//!
//! Experiments resolve through `rapid_bench::registry` and run in-process;
//! every requested one runs even if an earlier one fails (panics are
//! caught), and the exit status reflects the pass/fail summary printed at
//! the end.

use rapid_bench::registry::{self, ExperimentPlan};

fn usage_exit(code: i32) -> ! {
    eprintln!("usage: fig_all [--list] [--jobs N] [experiment ids...]");
    eprintln!("known experiments: {}", registry::ids().join(" "));
    std::process::exit(code);
}

fn main() {
    let mut filters: Vec<String> = Vec::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--jobs" => {
                let n: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --jobs needs a positive integer");
                        usage_exit(2)
                    });
                // The worker pool reads RAPID_JOBS; the flag is its CLI face.
                std::env::set_var("RAPID_JOBS", n.to_string());
            }
            "--help" | "-h" => usage_exit(0),
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag `{other}`");
                usage_exit(2)
            }
            other => filters.push(other.to_string()),
        }
    }

    if list {
        for p in registry::PLANS {
            println!("{:<10} {}", p.id, p.title);
            println!("{:<10}   axes: {}", "", p.axes);
            println!("{:<10}   columns: {}", "", p.columns.join("\t"));
        }
        return;
    }

    if let Some(unknown) = filters.iter().find(|f| registry::find(f).is_none()) {
        eprintln!(
            "error: unknown experiment `{unknown}`; known: {}",
            registry::ids().join(" ")
        );
        std::process::exit(2);
    }
    // Keep canonical order regardless of argument order.
    let selected: Vec<&ExperimentPlan> = registry::PLANS
        .iter()
        .filter(|p| filters.is_empty() || filters.iter().any(|f| f == p.id))
        .collect();

    let mut results: Vec<(&str, bool)> = Vec::new();
    for plan in &selected {
        eprintln!("=== {} ===", plan.id);
        let ok = std::panic::catch_unwind(plan.run).is_ok();
        results.push((plan.id, ok));
    }

    let failed = results.iter().filter(|(_, ok)| !ok).count();
    eprintln!("=== summary ===");
    for (id, ok) in &results {
        eprintln!("{} {id}", if *ok { "PASS" } else { "FAIL" });
    }
    eprintln!(
        "{}/{} experiments passed; see results/*.tsv",
        results.len() - failed,
        results.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
