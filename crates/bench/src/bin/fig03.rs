//! Fig. 3: simulator validation — per-day average delay of the
//! deployment-emulation run ("Real") against clean simulator runs
//! (mean of `RAPID_RUNS` workload draws with a 95% CI).

use dtn_sim::NoiseModel;
use rapid_bench::runner::run_spec;
use rapid_bench::trace_exp::{TraceLab, WARMUP_DAYS};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{env_u64, parallel_map, root_seed, runs_per_point, Proto};

fn main() {
    let mut tsv = Tsv::new("fig03");
    let days = env_u64("RAPID_FIG3_DAYS", 20) as u32;
    let runs = runs_per_point();
    tsv.comment("Fig. 3: real (deployment emulation) vs simulation avg delay per day");
    tsv.comment(&format!(
        "days = {days}, sim runs per day = {runs}, seed = {}",
        root_seed()
    ));
    tsv.row(&[
        "day",
        "real_avg_delay_min",
        "sim_avg_delay_min",
        "sim_ci95_min",
    ]);

    let lab = TraceLab::deployment(root_seed());
    // Jobs: per day, one noisy "deployment" run + `runs` clean draws.
    let per_day: Vec<(f64, f64, f64)> = parallel_map(days as usize, |d| {
        let day = WARMUP_DAYS + d as u32;
        let noisy = {
            let spec = lab.day_spec(day, 4.0, 0, Some(NoiseModel::deployment_default()));
            run_spec(&spec, Proto::RapidAvg)
        };
        let real = noisy.avg_delay_secs().unwrap_or(0.0) / 60.0;
        let sims: Vec<f64> = (0..runs)
            .map(|k| {
                let spec = lab.day_spec(day, 4.0, k + 1, None);
                run_spec(&spec, Proto::RapidAvg)
                    .avg_delay_secs()
                    .unwrap_or(0.0)
                    / 60.0
            })
            .collect();
        let (mean, ci) = dtn_stats::mean_ci95(&sims).unwrap_or((sims[0], 0.0));
        (real, mean, ci)
    });
    let mut rel_err_acc = 0.0;
    for (d, (real, sim, ci)) in per_day.iter().enumerate() {
        tsv.row(&[format!("{d}"), f(*real), f(*sim), f(*ci)]);
        if *real > 0.0 {
            rel_err_acc += (real - sim).abs() / real;
        }
    }
    tsv.comment(&format!(
        "mean relative |real - sim| error = {:.3} (paper: within 1% with 95% confidence)",
        rel_err_acc / per_day.len() as f64
    ));
}
