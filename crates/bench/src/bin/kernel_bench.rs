//! Eq. 4–9 kernel microbenchmark: scalar vs. the detected SIMD kernel,
//! per queue shape. Writes `results/kernel_bench.json` and prints it.
//!
//! Knobs: `RAPID_KERNEL_BENCH_ITERS` (row sweeps per repeat, default
//! 2000), `RAPID_KERNEL_BENCH_REPEATS` (best-of, default 5).

use rapid_bench::kbench::measure_rows;
use rapid_core::Kernel;

fn main() {
    let iters = rapid_bench::env_u64("RAPID_KERNEL_BENCH_ITERS", 2000).max(1);
    let repeats = rapid_bench::env_u64("RAPID_KERNEL_BENCH_REPEATS", 5).max(1);
    let detected = Kernel::detect();

    let mut out = String::from("{\n  \"benches\": {\n");
    let shapes = [48usize, 512, 4096];
    for (si, &len) in shapes.iter().enumerate() {
        let (scalar_ms, scalar_sum) = measure_rows(Kernel::Scalar, len, iters, repeats);
        let (best_ms, best_sum) = if detected == Kernel::Scalar {
            (scalar_ms, scalar_sum)
        } else {
            measure_rows(detected, len, iters, repeats)
        };
        assert_eq!(
            scalar_sum.to_bits(),
            best_sum.to_bits(),
            "kernels disagree on the {len}-row checksum"
        );
        out.push_str(&format!(
            "    \"kernel/rate_rows_{len}\": {{\n      \
             \"kernel\": \"{detected:?}\",\n      \
             \"min_ms\": {best_ms:.6},\n      \
             \"scalar_min_ms\": {scalar_ms:.6},\n      \
             \"speedup_vs_scalar\": {:.3},\n      \
             \"iters\": {iters},\n      \"repeats\": {repeats}\n    }}{}\n",
            scalar_ms / best_ms,
            if si + 1 < shapes.len() { "," } else { "" },
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/kernel_bench.json", &out).expect("write results/kernel_bench.json");
    print!("{out}");
}
