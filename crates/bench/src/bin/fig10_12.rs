//! Figs. 10–12 (Trace): the in-band control channel versus an instant
//! global control channel (hybrid DTN, §6.2.3). Fig. 10 reads
//! `avg_delay_min` (avg-delay metric), Fig. 11 `delivery_rate`, Fig. 12
//! `within_deadline` (deadline metric — rows with the deadline variants).

use rapid_bench::families::{trace_loads, trace_sweep};
use rapid_bench::Proto;

fn main() {
    trace_sweep(
        "fig10_12",
        "Figs. 10-12 (Trace): in-band vs instant global control channel",
        &trace_loads(),
        &[
            Proto::RapidAvg,
            Proto::RapidAvgGlobal,
            Proto::RapidDeadline,
            Proto::RapidDeadlineGlobal,
        ],
    );
}
