//! §6.2.1's statistical check: a paired t-test comparing the average delay
//! of every source–destination pair under RAPID against the same pair
//! under MaxProp ("we found p-values always less than 0.0005").

use rapid_bench::runner::run_spec;
use rapid_bench::trace_exp::{TraceLab, WARMUP_DAYS};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{days_per_point, parallel_map, root_seed, Proto};
use std::collections::BTreeMap;

fn main() {
    let mut tsv = Tsv::new("ttest");
    tsv.comment("Paired t-test on per-(src,dst) mean delays: RAPID vs MaxProp (§6.2.1)");
    tsv.comment(&format!(
        "days = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "load_per_dest_per_hour",
        "pairs",
        "t",
        "p_two_sided",
        "mean_diff_min",
    ]);

    let lab = TraceLab::load_sweep(root_seed());
    for load in [5.0, 20.0] {
        // Per-pair mean delays pooled across days, one map per protocol.
        let pooled: Vec<BTreeMap<(u32, u32), Vec<f64>>> = parallel_map(2usize, |which| {
            let proto = if which == 0 {
                Proto::RapidAvg
            } else {
                Proto::MaxProp
            };
            let mut by_pair: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();
            for d in 0..days_per_point() {
                let spec = lab.day_spec(WARMUP_DAYS + d, load, 0, None);
                let report = run_spec(&spec, proto);
                for o in &report.outcomes {
                    if let Some(at) = o.delivered_at {
                        by_pair
                            .entry((o.src.0, o.dst.0))
                            .or_default()
                            .push(at.since(o.created_at).as_secs_f64());
                    }
                }
            }
            by_pair
        });
        let (rapid, maxprop) = (&pooled[0], &pooled[1]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (pair, rd) in rapid {
            if let Some(md) = maxprop.get(pair) {
                a.push(rd.iter().sum::<f64>() / rd.len() as f64);
                b.push(md.iter().sum::<f64>() / md.len() as f64);
            }
        }
        match dtn_stats::paired_t_test(&a, &b) {
            Some(r) => tsv.row(&[
                f(load),
                format!("{}", a.len()),
                f(r.t),
                format!("{:.2e}", r.p_two_sided),
                f(r.mean_diff / 60.0),
            ]),
            None => tsv.comment("insufficient pairs for a t-test"),
        }
    }
    tsv.comment("negative mean_diff = RAPID's per-pair delays are lower");
}
