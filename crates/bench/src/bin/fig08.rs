//! Fig. 8 (Trace): average delay as the in-band metadata channel is capped
//! to a fraction of each opportunity, for three loads. The paper found
//! unrestricted metadata best (their channel cost ~0.2% of bandwidth); the
//! reproduction's leaner opportunities make the trade-off visible.

use rapid_bench::trace_exp::{aggregate, TraceLab};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{days_per_point, root_seed, Proto};

fn main() {
    let mut tsv = Tsv::new("fig08");
    tsv.comment("Fig. 8 (Trace): avg delay vs metadata cap (fraction of bandwidth)");
    tsv.comment(&format!(
        "days per point = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "metadata_cap_fraction",
        "load_per_dest_per_hour",
        "avg_delay_min",
        "delivery_rate",
        "metadata_over_bw",
    ]);
    let lab = TraceLab::load_sweep(root_seed());
    for cap in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35] {
        for load in [6.0, 12.0, 20.0] {
            let reports = lab.run_days(days_per_point(), load, Proto::RapidAvgCapped(cap), None);
            let a = aggregate(&reports);
            tsv.row(&[
                f(cap),
                f(load),
                f(a.avg_delay_min),
                f(a.delivery_rate),
                f(a.metadata_over_bandwidth),
            ]);
        }
    }
}
