//! Table 3: daily statistics of the deployed system (§5.2) — the
//! deployment-emulation run: default load (4 packets/hour from each bus to
//! each on-road bus), deployment noise, RAPID avg-delay, 58 days.

use dtn_sim::NoiseModel;
use rapid_bench::runner::run_spec;
use rapid_bench::trace_exp::{TraceLab, WARMUP_DAYS};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{env_u64, parallel_map, root_seed, Proto};

fn main() {
    let mut tsv = Tsv::new("table3");
    tsv.comment("Table 3: deployment daily averages (synthetic DieselNet, noise model on)");
    let days = env_u64("RAPID_DEPLOY_DAYS", 58) as u32;
    tsv.comment(&format!("days = {days}, seed = {}", root_seed()));

    let lab = TraceLab::deployment(root_seed());
    let noise = Some(NoiseModel::deployment_default());
    let rows = parallel_map(days as usize, |d| {
        let spec = lab.day_spec(WARMUP_DAYS + d as u32, 4.0, 0, noise);
        let buses = lab
            .fleet()
            .generate_day(WARMUP_DAYS + d as u32)
            .on_road
            .len();
        (buses, run_spec(&spec, Proto::RapidAvg))
    });

    let n = rows.len() as f64;
    let avg_buses = rows.iter().map(|(b, _)| *b as f64).sum::<f64>() / n;
    let avg_bytes = rows.iter().map(|(_, r)| r.data_bytes as f64).sum::<f64>() / n;
    let avg_meetings = rows.iter().map(|(_, r)| r.contacts as f64).sum::<f64>() / n;
    let delivery = rows.iter().map(|(_, r)| r.delivery_rate()).sum::<f64>() / n;
    let delay_min = rows
        .iter()
        .map(|(_, r)| r.avg_delay_secs().unwrap_or(0.0) / 60.0)
        .sum::<f64>()
        / n;
    let meta_bw = rows
        .iter()
        .map(|(_, r)| r.metadata_over_bandwidth())
        .sum::<f64>()
        / n;
    let meta_data = rows
        .iter()
        .map(|(_, r)| r.metadata_over_data())
        .sum::<f64>()
        / n;

    tsv.row(&["statistic", "value", "paper_value"]);
    tsv.row(&["avg_buses_scheduled_per_day", &f(avg_buses), "19"]);
    tsv.row(&[
        "avg_total_MB_transferred_per_day",
        &f(avg_bytes / 1e6),
        "261.4",
    ]);
    tsv.row(&["avg_meetings_per_day", &f(avg_meetings), "147.5"]);
    tsv.row(&["pct_delivered_per_day", &f(delivery * 100.0), "88"]);
    tsv.row(&["avg_packet_delivery_delay_min", &f(delay_min), "91.7"]);
    tsv.row(&["metadata_over_bandwidth", &f(meta_bw), "0.002"]);
    tsv.row(&["metadata_over_data", &f(meta_data), "0.017"]);
}
