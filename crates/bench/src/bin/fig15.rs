//! Fig. 15 (Trace): fairness of RAPID's allocation to packets created in
//! parallel — the CDF of Jain's index over burst groups of 20 and 30
//! parallel packets, under contention (≈60 packets/hour/node background).

use dtn_sim::workload::{merge, parallel_burst};
use dtn_sim::TimeDelta;
use dtn_stats::jain_index;
use rapid_bench::runner::run_spec;
use rapid_bench::trace_exp::{TraceLab, WARMUP_DAYS};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{days_per_point, parallel_map, root_seed, Proto};

fn main() {
    let mut tsv = Tsv::new("fig15");
    tsv.comment("Fig. 15 (Trace): CDF of Jain's fairness index over parallel-packet groups");
    tsv.comment(&format!(
        "days = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&["parallel_packets", "fairness_index", "cdf"]);

    let lab = TraceLab::load_sweep(root_seed());
    let seeds = dtn_stats::SeedStream::new(root_seed()).derive("fig15");
    for group_size in [20usize, 30] {
        let indices: Vec<Vec<f64>> = parallel_map(days_per_point() as usize, |d| {
            let day = WARMUP_DAYS + d as u32;
            // Background load ≈ 60 pkt/hour/node plus periodic bursts of
            // `group_size` parallel packets.
            let mut spec = lab.day_spec(day, 60.0 / 18.0, 0, None);
            let mut rng = seeds.rng_indexed("bursts", u64::from(day));
            let on_road: Vec<dtn_sim::NodeId> = {
                // Reconstruct the day's on-road set from the fleet.
                lab.fleet().generate_day(day).on_road
            };
            let mut bursts = Vec::new();
            for k in 0..40u64 {
                let t = spec.measure_from + TimeDelta::from_secs(600 + k * 1500); // every 25 min
                bursts.push(parallel_burst(&on_road, group_size, t, 1024, &mut rng));
            }
            bursts.push(spec.workload.clone());
            spec.workload = merge(&bursts);
            let report = run_spec(&spec, Proto::RapidAvg);
            report
                .delays_by_creation_group()
                .into_iter()
                .filter(|(_, delays)| delays.len() == group_size)
                .map(|(_, delays)| jain_index(&delays))
                .collect()
        });
        let mut all: Vec<f64> = indices.into_iter().flatten().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = all.len().max(1) as f64;
        for (i, idx) in all.iter().enumerate() {
            tsv.row(&[format!("{group_size}"), f(*idx), f((i + 1) as f64 / n)]);
        }
    }
}
