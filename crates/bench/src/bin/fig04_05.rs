//! Figs. 4 & 5 (Trace): average delay and delivery rate vs load, RAPID
//! optimizing average delay (Eq. 1) against MaxProp, Spray and Wait and
//! Random. Read `avg_delay_min` for Fig. 4 and `delivery_rate` for Fig. 5.

use rapid_bench::families::{trace_loads, trace_sweep};
use rapid_bench::Proto;

fn main() {
    trace_sweep(
        "fig04_05",
        "Figs. 4-5 (Trace): avg delay / delivery rate vs load; RAPID metric = avg delay",
        &trace_loads(),
        &Proto::comparison_set(),
    );
}
