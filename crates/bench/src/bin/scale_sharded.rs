//! Thin dispatch into the experiment registry: `scale_sharded`.
//! See `rapid_bench::registry` for the plan (axes, TSV schema) and
//! `rapid_bench::scale` for the implementation and the `RAPID_SCALE_*` /
//! `RAPID_SHARDS` knobs.

fn main() {
    rapid_bench::registry::run_or_exit("scale_sharded");
}
