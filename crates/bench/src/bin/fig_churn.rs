//! Windowed-contact × node-churn sweep (beyond the paper; see
//! EXPERIMENTS.md §"Churn family"). For RAPID, Epidemic and Random, sweeps
//! the contact-window duration (total opportunity held constant) against
//! per-node downtime fractions, with a 60 s packet TTL. Shows where RAPID's
//! lump-opportunity utility ordering degrades as windows stretch and churn
//! interrupts mid-window accrual.

use dtn_sim::TimeDelta;
use rapid_bench::churn::{aggregate, ChurnLab};
use rapid_bench::tsv::{f, Tsv};
use rapid_bench::{root_seed, runs_per_point, Proto};

fn main() {
    let mut tsv = Tsv::new("fig_churn");
    tsv.comment("Churn family: avg delay / delivery vs window duration and node downtime");
    tsv.comment(&format!(
        "runs per point = {}, seed = {}; load = 20 per dest per 50 s; TTL = 60 s",
        runs_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "window_s",
        "down_fraction",
        "series",
        "avg_delay_s",
        "delivery_rate",
        "within_deadline",
        "expired_rate",
        "suppressed_contacts",
    ]);
    let lab = ChurnLab::new(root_seed());
    let load = 20.0;
    for window_s in [0u64, 30, 120, 300] {
        for down_fraction in [0.0, 0.15, 0.35] {
            for proto in [Proto::RapidAvg, Proto::Epidemic, Proto::Random] {
                let reports = lab.run_many(
                    runs_per_point(),
                    load,
                    TimeDelta::from_secs(window_s),
                    down_fraction,
                    proto,
                );
                let a = aggregate(&reports);
                tsv.row(&[
                    format!("{window_s}"),
                    f(down_fraction),
                    proto.label(),
                    f(a.avg_delay_s),
                    f(a.delivery_rate),
                    f(a.within_deadline),
                    f(a.expired_rate),
                    f(a.suppressed_contacts),
                ]);
            }
        }
    }
}
