//! Deterministic micro-benchmark scenarios shared by the criterion benches
//! and the CI bench-smoke binary, so both measure exactly the same work.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{Contact, NodeId, Schedule, SimConfig, Time, TimeDelta};

/// The RAPID selection-path scenario: packets from nodes 0 and 1 to nodes
/// 2..6, a few small teaching contacts so meeting estimates are finite,
/// then one big 0↔1 contact that forces a full selection pass over the
/// occupied buffers.
pub fn selection_scenario(n_packets: u64) -> (SimConfig, Schedule, Workload) {
    let mut specs = Vec::new();
    for i in 0..n_packets {
        specs.push(PacketSpec {
            time: Time::from_secs(i % 500),
            src: NodeId((i % 2) as u32),
            dst: NodeId(2 + (i % 4) as u32),
            size_bytes: 1024,
        });
    }
    let mut contacts = Vec::new();
    // Teach meeting averages so estimates are finite.
    for k in 0..4u64 {
        for d in 2..6u32 {
            contacts.push(Contact::new(
                Time::from_secs(10 + 100 * k + u64::from(d)),
                NodeId(1),
                NodeId(d),
                1024,
            ));
        }
    }
    contacts.push(Contact::new(
        Time::from_secs(600),
        NodeId(0),
        NodeId(1),
        64 * 1024,
    ));
    let config = SimConfig {
        nodes: 6,
        horizon: Time::from_secs(700),
        deadline: Some(TimeDelta::from_secs(300)),
        ..SimConfig::default()
    };
    (config, Schedule::new(contacts), Workload::new(specs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_well_formed() {
        let (config, schedule, workload) = selection_scenario(100);
        assert_eq!(config.nodes, 6);
        assert_eq!(workload.specs().len(), 100);
        assert_eq!(schedule.windows().len(), 17);
    }
}
