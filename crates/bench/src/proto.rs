//! The protocols under test, as the experiment binaries name them.

use dtn_protocols::{Epidemic, MaxProp, Prophet, Random, SprayAndWait};
use dtn_sim::{Routing, TimeDelta};
use rapid_core::{ChannelMode, Rapid, RapidConfig};

/// A protocol configuration an experiment can instantiate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Proto {
    /// RAPID minimizing average delay, in-band channel (the default).
    RapidAvg,
    /// RAPID minimizing maximum delay.
    RapidMax,
    /// RAPID maximizing within-deadline deliveries.
    RapidDeadline,
    /// RAPID avg-delay with the instant global channel (§6.2.3).
    RapidAvgGlobal,
    /// RAPID max-delay with the instant global channel.
    RapidMaxGlobal,
    /// RAPID deadline with the instant global channel.
    RapidDeadlineGlobal,
    /// RAPID avg-delay, metadata restricted to own-buffer packets (§6.2.6).
    RapidAvgLocal,
    /// RAPID avg-delay with the in-band channel capped to this fraction of
    /// each opportunity (Fig. 8).
    RapidAvgCapped(f64),
    /// MaxProp.
    MaxProp,
    /// Binary Spray and Wait, L = 12.
    SprayWait,
    /// PRoPHET.
    Prophet,
    /// Random replication.
    Random,
    /// Random replication with flooded acks.
    RandomAcks,
    /// Epidemic flooding.
    Epidemic,
}

impl Proto {
    /// Display label used in TSV output (matches the paper's series names).
    pub fn label(&self) -> String {
        match self {
            Proto::RapidAvg | Proto::RapidMax | Proto::RapidDeadline => "Rapid".into(),
            Proto::RapidAvgGlobal | Proto::RapidMaxGlobal | Proto::RapidDeadlineGlobal => {
                "Rapid-Global".into()
            }
            Proto::RapidAvgLocal => "Rapid-Local".into(),
            Proto::RapidAvgCapped(f) => format!("Rapid-Cap{f:.2}"),
            Proto::MaxProp => "MaxProp".into(),
            Proto::SprayWait => "SprayAndWait".into(),
            Proto::Prophet => "Prophet".into(),
            Proto::Random => "Random".into(),
            Proto::RandomAcks => "Random+acks".into(),
            Proto::Epidemic => "Epidemic".into(),
        }
    }

    /// Whether this protocol needs `allow_global_knowledge`.
    pub fn needs_global(&self) -> bool {
        matches!(
            self,
            Proto::RapidAvgGlobal | Proto::RapidMaxGlobal | Proto::RapidDeadlineGlobal
        )
    }

    /// Instantiates the protocol. `deadline` parameterizes the RAPID
    /// deadline metric (Table 4's delivery deadline); `horizon` sets the
    /// RAPID delay-estimate ceiling (replicas that cannot deliver within
    /// ~1.5 horizons are as good as none — packets die at day end, §6.1).
    pub fn build(&self, deadline: TimeDelta, horizon: TimeDelta) -> Box<dyn Routing + Send> {
        let cap = 1.5 * horizon.as_secs_f64().max(1.0);
        let rapid = |cfg: RapidConfig| -> Box<dyn Routing + Send> {
            Box::new(Rapid::new(cfg.with_delay_cap(cap)))
        };
        match *self {
            Proto::RapidAvg => rapid(RapidConfig::avg_delay()),
            Proto::RapidMax => rapid(RapidConfig::max_delay()),
            Proto::RapidDeadline => rapid(RapidConfig::deadline(deadline)),
            Proto::RapidAvgGlobal => {
                rapid(RapidConfig::avg_delay().with_channel(ChannelMode::InstantGlobal))
            }
            Proto::RapidMaxGlobal => {
                rapid(RapidConfig::max_delay().with_channel(ChannelMode::InstantGlobal))
            }
            Proto::RapidDeadlineGlobal => {
                rapid(RapidConfig::deadline(deadline).with_channel(ChannelMode::InstantGlobal))
            }
            Proto::RapidAvgLocal => {
                rapid(RapidConfig::avg_delay().with_channel(ChannelMode::LocalOnly))
            }
            Proto::RapidAvgCapped(f) => {
                rapid(RapidConfig::avg_delay().with_channel(ChannelMode::InBand {
                    cap_fraction: Some(f),
                }))
            }
            Proto::MaxProp => Box::new(MaxProp::new()),
            Proto::SprayWait => Box::new(SprayAndWait::new()),
            Proto::Prophet => Box::new(Prophet::new()),
            Proto::Random => Box::new(Random::new()),
            Proto::RandomAcks => Box::new(Random::with_acks()),
            Proto::Epidemic => Box::new(Epidemic::new()),
        }
    }

    /// The four-protocol comparison set used by most figures.
    pub fn comparison_set() -> [Proto; 4] {
        [
            Proto::RapidAvg,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_global_flags() {
        assert_eq!(Proto::RapidAvg.label(), "Rapid");
        assert_eq!(Proto::RapidAvgGlobal.label(), "Rapid-Global");
        assert!(Proto::RapidAvgGlobal.needs_global());
        assert!(!Proto::MaxProp.needs_global());
        assert_eq!(Proto::RapidAvgCapped(0.1).label(), "Rapid-Cap0.10");
    }

    #[test]
    fn every_variant_builds() {
        let deadline = TimeDelta::from_secs(20);
        for p in [
            Proto::RapidAvg,
            Proto::RapidMax,
            Proto::RapidDeadline,
            Proto::RapidAvgGlobal,
            Proto::RapidMaxGlobal,
            Proto::RapidDeadlineGlobal,
            Proto::RapidAvgLocal,
            Proto::RapidAvgCapped(0.05),
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Prophet,
            Proto::Random,
            Proto::RandomAcks,
            Proto::Epidemic,
        ] {
            let r = p.build(deadline, TimeDelta::from_hours(19));
            assert!(!r.name().is_empty());
        }
    }
}
