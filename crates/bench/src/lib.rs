//! Experiment harness: regenerates every table and figure in the paper's
//! evaluation (§5–§6).
//!
//! Each binary under `src/bin/` reproduces one figure family and prints the
//! same rows/series the paper reports, as TSV on stdout (also written to
//! `results/`). Run `cargo run -p rapid-bench --release --bin fig_all` for
//! everything; see DESIGN.md §5 for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured results.
//!
//! Environment knobs (all optional):
//!
//! * `RAPID_DAYS` — trace days averaged per data point (default 8;
//!   the deployment experiments always use 58).
//! * `RAPID_RUNS` — synthetic-mobility runs per data point (default 5).
//! * `RAPID_SEED` — root experiment seed (default 7).
//! * `RAPID_JOBS` — worker threads (default: available parallelism).

pub mod churn;
pub mod families;
pub mod proto;
pub mod runner;
pub mod scenarios;
pub mod synth;
pub mod trace_exp;
pub mod tsv;

pub use churn::ChurnLab;
pub use proto::Proto;
pub use runner::{parallel_map, run_spec, RunSpec};
pub use synth::{Mobility, SynthLab};
pub use trace_exp::TraceLab;

/// Reads an environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Trace days per data point (deployment experiments override this).
pub fn days_per_point() -> u32 {
    env_u64("RAPID_DAYS", 8) as u32
}

/// Synthetic runs per data point.
pub fn runs_per_point() -> u32 {
    env_u64("RAPID_RUNS", 5) as u32
}

/// Root experiment seed.
pub fn root_seed() -> u64 {
    env_u64("RAPID_SEED", 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_defaults() {
        assert_eq!(super::env_u64("RAPID_THIS_IS_UNSET_XYZ", 42), 42);
    }
}
