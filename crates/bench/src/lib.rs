//! Experiment harness: regenerates every table and figure in the paper's
//! evaluation (§5–§6), plus the beyond-paper churn and scale families.
//!
//! Every experiment is an entry in the declarative [`registry`]
//! (id → sweep axes → TSV schema → run function, bodies in
//! [`experiments`]); the binaries under `src/bin/` are one-line
//! dispatches and `fig_all` walks the registry in-process
//! (`--list` prints it, `--jobs N` pins the worker pool). Output is TSV
//! on stdout, mirrored to `results/<id>.tsv`; see EXPERIMENTS.md for
//! calibration notes and paper-vs-measured results.
//!
//! Scenario data streams through [`runner::ContactsSpec`] /
//! [`runner::PacketsSpec`] — `Arc`-shared when materialized, generated
//! per run otherwise — and sweep aggregation folds reports into
//! mergeable accumulators in run order ([`runner::parallel_reduce`]),
//! so neither scenarios nor report sets are ever cloned or collected.
//!
//! Environment knobs (all optional):
//!
//! * `RAPID_DAYS` — trace days averaged per data point (default 8;
//!   the deployment experiments always use 58).
//! * `RAPID_RUNS` — synthetic-mobility runs per data point (default 5).
//! * `RAPID_SEED` — root experiment seed (default 7).
//! * `RAPID_JOBS` — worker threads (default: available parallelism;
//!   `fig_all --jobs N` is the CLI face of the same knob and wins over
//!   the environment).
//! * `RAPID_SCALE_*` — scale-family shape and its peak-RSS bound (see
//!   [`scale`]).

pub mod churn;
pub mod experiments;
pub mod families;
pub mod kbench;
pub mod proto;
pub mod registry;
pub mod runner;
pub mod scale;
pub mod scenarios;
pub mod synth;
pub mod trace_exp;
pub mod tsv;

pub use churn::ChurnLab;
pub use proto::Proto;
pub use registry::ExperimentPlan;
pub use runner::{parallel_map, parallel_reduce, run_spec, ContactsSpec, PacketsSpec, RunSpec};
pub use scale::ScaleLab;
pub use synth::{Mobility, SynthLab};
pub use trace_exp::TraceLab;

/// Reads an environment knob with a default, through the workspace's
/// strict parser (`dtn_sim::env`): unset yields the default, a malformed
/// value aborts with a message naming the knob — a typo'd knob must not
/// silently run the default experiment shape.
pub fn env_u64(name: &str, default: u64) -> u64 {
    dtn_sim::env::u64_from_env(name, default)
}

/// Trace days per data point (deployment experiments override this).
pub fn days_per_point() -> u32 {
    env_u64("RAPID_DAYS", 8) as u32
}

/// Synthetic runs per data point.
pub fn runs_per_point() -> u32 {
    env_u64("RAPID_RUNS", 5) as u32
}

/// Root experiment seed.
pub fn root_seed() -> u64 {
    env_u64("RAPID_SEED", 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_defaults() {
        assert_eq!(super::env_u64("RAPID_THIS_IS_UNSET_XYZ", 42), 42);
    }
}
