//! The experiment implementations behind the registry.
//!
//! Each function reproduces one figure/table family and writes its TSV to
//! stdout and `results/<id>.tsv` — these are the bodies the `fig*`
//! binaries used to carry; they now live in one place and are dispatched
//! through [`crate::registry`]. Output is byte-identical to the historic
//! binaries for a fixed seed.

use crate::families::{
    synth_buffer_sweep, synth_load_sweep, synth_loads, trace_loads, trace_sweep,
};
use crate::proto::Proto;
use crate::runner::run_spec;
use crate::trace_exp::{TraceLab, WARMUP_DAYS};
use crate::tsv::{f, Tsv};
use crate::{days_per_point, env_u64, parallel_map, root_seed, runs_per_point, Mobility};
use dtn_sim::workload::{merge, parallel_burst};
use dtn_sim::{NoiseModel, TimeDelta};
use std::collections::BTreeMap;

/// Table 3: daily statistics of the deployed system (§5.2) — the
/// deployment-emulation run: default load (4 packets/hour from each bus to
/// each on-road bus), deployment noise, RAPID avg-delay, 58 days.
pub fn table3() {
    let mut tsv = Tsv::new("table3");
    tsv.comment("Table 3: deployment daily averages (synthetic DieselNet, noise model on)");
    let days = env_u64("RAPID_DEPLOY_DAYS", 58) as u32;
    tsv.comment(&format!("days = {days}, seed = {}", root_seed()));

    let lab = TraceLab::deployment(root_seed());
    let noise = Some(NoiseModel::deployment_default());
    let rows = parallel_map(days as usize, |d| {
        let spec = lab.day_spec(WARMUP_DAYS + d as u32, 4.0, 0, noise);
        let buses = lab
            .fleet()
            .generate_day(WARMUP_DAYS + d as u32)
            .on_road
            .len();
        (buses, run_spec(&spec, Proto::RapidAvg))
    });

    let n = rows.len() as f64;
    let avg_buses = rows.iter().map(|(b, _)| *b as f64).sum::<f64>() / n;
    let avg_bytes = rows.iter().map(|(_, r)| r.data_bytes as f64).sum::<f64>() / n;
    let avg_meetings = rows.iter().map(|(_, r)| r.contacts as f64).sum::<f64>() / n;
    let delivery = rows.iter().map(|(_, r)| r.delivery_rate()).sum::<f64>() / n;
    let delay_min = rows
        .iter()
        .map(|(_, r)| r.avg_delay_secs().unwrap_or(0.0) / 60.0)
        .sum::<f64>()
        / n;
    let meta_bw = rows
        .iter()
        .map(|(_, r)| r.metadata_over_bandwidth())
        .sum::<f64>()
        / n;
    let meta_data = rows
        .iter()
        .map(|(_, r)| r.metadata_over_data())
        .sum::<f64>()
        / n;

    tsv.row(&["statistic", "value", "paper_value"]);
    tsv.row(&["avg_buses_scheduled_per_day", &f(avg_buses), "19"]);
    tsv.row(&[
        "avg_total_MB_transferred_per_day",
        &f(avg_bytes / 1e6),
        "261.4",
    ]);
    tsv.row(&["avg_meetings_per_day", &f(avg_meetings), "147.5"]);
    tsv.row(&["pct_delivered_per_day", &f(delivery * 100.0), "88"]);
    tsv.row(&["avg_packet_delivery_delay_min", &f(delay_min), "91.7"]);
    tsv.row(&["metadata_over_bandwidth", &f(meta_bw), "0.002"]);
    tsv.row(&["metadata_over_data", &f(meta_data), "0.017"]);
}

/// Fig. 3: simulator validation — per-day average delay of the
/// deployment-emulation run ("Real") against clean simulator runs
/// (mean of `RAPID_RUNS` workload draws with a 95% CI).
pub fn fig03() {
    let mut tsv = Tsv::new("fig03");
    let days = env_u64("RAPID_FIG3_DAYS", 20) as u32;
    let runs = runs_per_point();
    tsv.comment("Fig. 3: real (deployment emulation) vs simulation avg delay per day");
    tsv.comment(&format!(
        "days = {days}, sim runs per day = {runs}, seed = {}",
        root_seed()
    ));
    tsv.row(&[
        "day",
        "real_avg_delay_min",
        "sim_avg_delay_min",
        "sim_ci95_min",
    ]);

    let lab = TraceLab::deployment(root_seed());
    // Jobs: per day, one noisy "deployment" run + `runs` clean draws.
    let per_day: Vec<(f64, f64, f64)> = parallel_map(days as usize, |d| {
        let day = WARMUP_DAYS + d as u32;
        let noisy = {
            let spec = lab.day_spec(day, 4.0, 0, Some(NoiseModel::deployment_default()));
            run_spec(&spec, Proto::RapidAvg)
        };
        let real = noisy.avg_delay_secs().unwrap_or(0.0) / 60.0;
        let sims: Vec<f64> = (0..runs)
            .map(|k| {
                let spec = lab.day_spec(day, 4.0, k + 1, None);
                run_spec(&spec, Proto::RapidAvg)
                    .avg_delay_secs()
                    .unwrap_or(0.0)
                    / 60.0
            })
            .collect();
        let (mean, ci) = dtn_stats::mean_ci95(&sims).unwrap_or((sims[0], 0.0));
        (real, mean, ci)
    });
    let mut rel_err_acc = 0.0;
    for (d, (real, sim, ci)) in per_day.iter().enumerate() {
        tsv.row(&[format!("{d}"), f(*real), f(*sim), f(*ci)]);
        if *real > 0.0 {
            rel_err_acc += (real - sim).abs() / real;
        }
    }
    tsv.comment(&format!(
        "mean relative |real - sim| error = {:.3} (paper: within 1% with 95% confidence)",
        rel_err_acc / per_day.len() as f64
    ));
}

/// Figs. 4 & 5 (Trace): average delay and delivery rate vs load, RAPID
/// optimizing average delay (Eq. 1) against MaxProp, Spray and Wait and
/// Random.
pub fn fig04_05() {
    trace_sweep(
        "fig04_05",
        "Figs. 4-5 (Trace): avg delay / delivery rate vs load; RAPID metric = avg delay",
        &trace_loads(),
        &Proto::comparison_set(),
    );
}

/// Fig. 6 (Trace): maximum delay vs load, RAPID optimizing max delay.
pub fn fig06() {
    trace_sweep(
        "fig06",
        "Fig. 6 (Trace): max delay vs load; RAPID metric = max delay",
        &trace_loads(),
        &[
            Proto::RapidMax,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ],
    );
}

/// Fig. 7 (Trace): fraction delivered within the 2.7 h deadline vs load,
/// RAPID optimizing missed deadlines (Eq. 2).
pub fn fig07() {
    trace_sweep(
        "fig07",
        "Fig. 7 (Trace): delivery within 2.7h deadline vs load; RAPID metric = deadline",
        &trace_loads(),
        &[
            Proto::RapidDeadline,
            Proto::MaxProp,
            Proto::SprayWait,
            Proto::Random,
        ],
    );
}

/// Fig. 8 (Trace): average delay as the in-band metadata channel is capped
/// to a fraction of each opportunity, for three loads.
pub fn fig08() {
    let mut tsv = Tsv::new("fig08");
    tsv.comment("Fig. 8 (Trace): avg delay vs metadata cap (fraction of bandwidth)");
    tsv.comment(&format!(
        "days per point = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "metadata_cap_fraction",
        "load_per_dest_per_hour",
        "avg_delay_min",
        "delivery_rate",
        "metadata_over_bw",
    ]);
    let lab = TraceLab::load_sweep(root_seed());
    for cap in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35] {
        for load in [6.0, 12.0, 20.0] {
            let a = lab.run_days_agg(days_per_point(), load, Proto::RapidAvgCapped(cap), None);
            tsv.row(&[
                f(cap),
                f(load),
                f(a.avg_delay_min),
                f(a.delivery_rate),
                f(a.metadata_over_bandwidth),
            ]);
        }
    }
}

/// Fig. 9 (Trace): channel utilization, delivery rate and metadata/data as
/// load grows — the bottleneck-links story.
pub fn fig09() {
    let mut tsv = Tsv::new("fig09");
    tsv.comment("Fig. 9 (Trace): utilization / delivery / metadata-over-data vs load (RAPID)");
    tsv.comment(&format!(
        "days per point = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "load_per_dest_per_hour",
        "channel_utilization",
        "delivery_rate",
        "metadata_over_data",
        "metadata_over_bw",
    ]);
    let lab = TraceLab::load_sweep(root_seed());
    for load in [5.0, 10.0, 20.0, 40.0, 60.0, 75.0] {
        let a = lab.run_days_agg(days_per_point(), load, Proto::RapidAvg, None);
        tsv.row(&[
            f(load),
            f(a.utilization),
            f(a.delivery_rate),
            f(a.metadata_over_data),
            f(a.metadata_over_bandwidth),
        ]);
    }
}

/// Figs. 10–12 (Trace): the in-band control channel versus an instant
/// global control channel (hybrid DTN, §6.2.3).
pub fn fig10_12() {
    trace_sweep(
        "fig10_12",
        "Figs. 10-12 (Trace): in-band vs instant global control channel",
        &trace_loads(),
        &[
            Proto::RapidAvg,
            Proto::RapidAvgGlobal,
            Proto::RapidDeadline,
            Proto::RapidDeadlineGlobal,
        ],
    );
}

/// Fig. 13 (Trace): comparison with Optimal at small loads. Average delay
/// *including undelivered packets* (charged their time in the system — the
/// ILP objective of Appendix D).
pub fn fig13() {
    let mut tsv = Tsv::new("fig13");
    tsv.comment(
        "Fig. 13 (Trace): avg delay incl. undelivered vs load — Optimal bounds, RAPID, MaxProp",
    );
    tsv.comment(&format!(
        "days per point = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&["load_per_dest_per_hour", "series", "avg_delay_min"]);
    let lab = TraceLab::load_sweep(root_seed());
    let days = days_per_point();
    for load in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        // Optimal bounds per day (on the measured window only).
        let bounds = parallel_map(days as usize, |d| {
            let spec = lab.day_spec(WARMUP_DAYS + d as u32, load, 0, None);
            // Strip the warm-up for the solver: it sees only the measured
            // window, which is exactly the instance the protocols face.
            let contacts: Vec<dtn_sim::ContactWindow> = spec
                .contacts
                .materialize()
                .windows()
                .iter()
                .filter(|c| c.start >= spec.measure_from)
                .copied()
                .collect();
            let schedule = dtn_sim::Schedule::new(contacts);
            dtn_optimal::solve_bounded(&schedule, &spec.packets.materialize(), spec.horizon)
        });
        let n = bounds.len() as f64;
        let lb: f64 = bounds
            .iter()
            .map(|b| b.lower_bound_avg_delay_secs)
            .sum::<f64>()
            / n
            / 60.0;
        let fs: f64 = bounds
            .iter()
            .map(|b| b.feasible_avg_delay_secs)
            .sum::<f64>()
            / n
            / 60.0;
        tsv.row::<&str>(&[]);
        tsv.row(&[f(load), "Optimal-LB".into(), f(lb)]);
        tsv.row(&[f(load), "Optimal-Feasible".into(), f(fs)]);

        for proto in [Proto::RapidAvgGlobal, Proto::RapidAvg, Proto::MaxProp] {
            let reports = parallel_map(days as usize, |d| {
                let spec = lab.day_spec(WARMUP_DAYS + d as u32, load, 0, None);
                run_spec(&spec, proto)
            });
            let avg: f64 = reports
                .iter()
                .map(|r| r.avg_delay_with_undelivered_secs().unwrap_or(0.0))
                .sum::<f64>()
                / reports.len() as f64
                / 60.0;
            tsv.row(&[f(load), proto.label(), f(avg)]);
        }
    }
}

/// Fig. 14 (Trace): RAPID component decomposition — Random, Random with
/// flooded acks, rapid-local, full RAPID.
pub fn fig14() {
    trace_sweep(
        "fig14",
        "Fig. 14 (Trace): components — Random, Random+acks, Rapid-Local, Rapid",
        &trace_loads(),
        &[
            Proto::Random,
            Proto::RandomAcks,
            Proto::RapidAvgLocal,
            Proto::RapidAvg,
        ],
    );
}

/// Fig. 15 (Trace): fairness of RAPID's allocation to packets created in
/// parallel — the CDF of Jain's index over burst groups of 20 and 30
/// parallel packets, under contention.
pub fn fig15() {
    let mut tsv = Tsv::new("fig15");
    tsv.comment("Fig. 15 (Trace): CDF of Jain's fairness index over parallel-packet groups");
    tsv.comment(&format!(
        "days = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&["parallel_packets", "fairness_index", "cdf"]);

    let lab = TraceLab::load_sweep(root_seed());
    let seeds = dtn_stats::SeedStream::new(root_seed()).derive("fig15");
    for group_size in [20usize, 30] {
        let indices: Vec<Vec<f64>> = parallel_map(days_per_point() as usize, |d| {
            let day = WARMUP_DAYS + d as u32;
            // Background load ≈ 60 pkt/hour/node plus periodic bursts of
            // `group_size` parallel packets.
            let mut spec = lab.day_spec(day, 60.0 / 18.0, 0, None);
            let mut rng = seeds.rng_indexed("bursts", u64::from(day));
            let on_road: Vec<dtn_sim::NodeId> = {
                // Reconstruct the day's on-road set from the fleet.
                lab.fleet().generate_day(day).on_road
            };
            let mut bursts = Vec::new();
            for k in 0..40u64 {
                let t = spec.measure_from + TimeDelta::from_secs(600 + k * 1500); // every 25 min
                bursts.push(parallel_burst(&on_road, group_size, t, 1024, &mut rng));
            }
            bursts.push(spec.packets.materialize());
            spec.packets = crate::runner::PacketsSpec::shared(merge(&bursts));
            let report = run_spec(&spec, Proto::RapidAvg);
            report
                .delays_by_creation_group()
                .into_iter()
                .filter(|(_, delays)| delays.len() == group_size)
                .map(|(_, delays)| dtn_stats::jain_index(&delays))
                .collect()
        });
        let mut all: Vec<f64> = indices.into_iter().flatten().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = all.len().max(1) as f64;
        for (i, idx) in all.iter().enumerate() {
            tsv.row(&[format!("{group_size}"), f(*idx), f((i + 1) as f64 / n)]);
        }
    }
}

/// Figs. 16–18 (Powerlaw): average delay, max delay and within-deadline
/// fraction vs load under popularity-skewed mobility.
pub fn fig16_18() {
    synth_load_sweep(
        "fig16_18",
        "Figs. 16-18 (Powerlaw): avg delay / max delay / within-deadline vs load",
        Mobility::PowerLaw,
        &synth_loads(),
    );
}

/// Figs. 19–21 (Powerlaw): the three metrics vs available buffer space at
/// a fixed load of 20 packets per destination per 50 s.
pub fn fig19_21() {
    synth_buffer_sweep(
        "fig19_21",
        "Figs. 19-21 (Powerlaw): metrics vs buffer size (load 20 per dest per 50s)",
        Mobility::PowerLaw,
        20.0,
        &[10, 20, 40, 80, 140, 200, 280],
    );
}

/// Figs. 22–24 (Exponential): the three metrics vs load under uniform
/// exponential mobility.
pub fn fig22_24() {
    synth_load_sweep(
        "fig22_24",
        "Figs. 22-24 (Exponential): avg delay / max delay / within-deadline vs load",
        Mobility::Exponential,
        &synth_loads(),
    );
}

/// Windowed-contact × node-churn sweep (beyond the paper; see
/// EXPERIMENTS.md §"Churn family").
pub fn fig_churn() {
    let mut tsv = Tsv::new("fig_churn");
    tsv.comment("Churn family: avg delay / delivery vs window duration and node downtime");
    tsv.comment(&format!(
        "runs per point = {}, seed = {}; load = 20 per dest per 50 s; TTL = 60 s",
        runs_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "window_s",
        "down_fraction",
        "series",
        "avg_delay_s",
        "delivery_rate",
        "within_deadline",
        "expired_rate",
        "suppressed_contacts",
    ]);
    let lab = crate::churn::ChurnLab::new(root_seed());
    let load = 20.0;
    for window_s in [0u64, 30, 120, 300] {
        for down_fraction in [0.0, 0.15, 0.35] {
            for proto in [Proto::RapidAvg, Proto::Epidemic, Proto::Random] {
                let a = lab.run_many_agg(
                    runs_per_point(),
                    load,
                    TimeDelta::from_secs(window_s),
                    down_fraction,
                    proto,
                );
                tsv.row(&[
                    format!("{window_s}"),
                    f(down_fraction),
                    proto.label(),
                    f(a.avg_delay_s),
                    f(a.delivery_rate),
                    f(a.within_deadline),
                    f(a.expired_rate),
                    f(a.suppressed_contacts),
                ]);
            }
        }
    }
}

/// §6.2.1's statistical check: a paired t-test comparing the average delay
/// of every source–destination pair under RAPID against MaxProp.
pub fn ttest() {
    let mut tsv = Tsv::new("ttest");
    tsv.comment("Paired t-test on per-(src,dst) mean delays: RAPID vs MaxProp (§6.2.1)");
    tsv.comment(&format!(
        "days = {}, seed = {}",
        days_per_point(),
        root_seed()
    ));
    tsv.row(&[
        "load_per_dest_per_hour",
        "pairs",
        "t",
        "p_two_sided",
        "mean_diff_min",
    ]);

    let lab = TraceLab::load_sweep(root_seed());
    for load in [5.0, 20.0] {
        // Per-pair mean delays pooled across days, one map per protocol.
        let pooled: Vec<BTreeMap<(u32, u32), Vec<f64>>> = parallel_map(2usize, |which| {
            let proto = if which == 0 {
                Proto::RapidAvg
            } else {
                Proto::MaxProp
            };
            let mut by_pair: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();
            for d in 0..days_per_point() {
                let spec = lab.day_spec(WARMUP_DAYS + d, load, 0, None);
                let report = run_spec(&spec, proto);
                for o in &report.outcomes {
                    if let Some(at) = o.delivered_at {
                        by_pair
                            .entry((o.src.0, o.dst.0))
                            .or_default()
                            .push(at.since(o.created_at).as_secs_f64());
                    }
                }
            }
            by_pair
        });
        let (rapid, maxprop) = (&pooled[0], &pooled[1]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (pair, rd) in rapid {
            if let Some(md) = maxprop.get(pair) {
                a.push(rd.iter().sum::<f64>() / rd.len() as f64);
                b.push(md.iter().sum::<f64>() / md.len() as f64);
            }
        }
        match dtn_stats::paired_t_test(&a, &b) {
            Some(r) => tsv.row(&[
                f(load),
                format!("{}", a.len()),
                f(r.t),
                format!("{:.2e}", r.p_two_sided),
                f(r.mean_diff / 60.0),
            ]),
            None => tsv.comment("insufficient pairs for a t-test"),
        }
    }
    tsv.comment("negative mean_diff = RAPID's per-pair delays are lower");
}
