//! Microbenchmark of the batched Eq. 4–9 estimate kernels.
//!
//! Times [`RateBatch::compute`] + [`RateBatch::combined_rate`] over a
//! fixed pseudo-random queue, per kernel — the isolated cost of one
//! per-destination row sweep, the inner loop of both `make_room` rate
//! refreshes and `replicate_side` candidate scoring. The `kernel_bench`
//! binary reports scalar vs. detected-SIMD side by side; `bench_smoke`
//! gates the detected kernel's wall time against the committed
//! `BENCH_pr7.json` baseline.

use rapid_core::{Kernel, RateBatch};
use std::time::Instant;

/// Deterministic pseudo-random backlog sizes (SplitMix64 stream): spread
/// over realistic queue-depth magnitudes without an RNG dependency.
pub fn queue_bytes(len: usize, seed: u64) -> Vec<u64> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Backlogs up to ~16 MB: a busy DTN queue, not a pathology.
            z % (16 << 20)
        })
        .collect()
}

/// Best-of-`repeats` wall milliseconds for `iters` full row sweeps
/// (compute + deterministic rate reduction) of a `len`-entry queue on
/// `kernel`. Returns `(min_ms, checksum)` — the checksum defeats
/// dead-code elimination and doubles as a cross-kernel agreement check
/// (bitwise-identical kernels produce bitwise-identical sums).
pub fn measure_rows(kernel: Kernel, len: usize, iters: u64, repeats: u64) -> (f64, f64) {
    let (min_ms, _, checksum) = measure_rows_stats(kernel, len, iters, repeats);
    (min_ms, checksum)
}

/// [`measure_rows`] with the per-repeat mean alongside the min — the
/// smoke gate reports both. Returns `(min_ms, mean_ms, checksum)`.
pub fn measure_rows_stats(kernel: Kernel, len: usize, iters: u64, repeats: u64) -> (f64, f64, f64) {
    let bytes = queue_bytes(len, 7);
    let mut batch = RateBatch::new(kernel);
    for &b in &bytes {
        batch.push(b);
    }
    // Meeting estimate / opportunity / cap in the fig-scenario range.
    let (e, opp, cap) = (1800.0, 64.0 * 1024.0, 1e9);

    let mut sink = 0.0f64;
    let mut best_ms = f64::INFINITY;
    let mut sum_ms = 0.0;
    // One warmup repeat outside the measurement.
    for repeat in 0..=repeats.max(1) {
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            batch.compute(e, opp, cap);
            sink += batch.combined_rate();
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if repeat > 0 {
            best_ms = best_ms.min(ms);
            sum_ms += ms;
        }
    }
    (
        best_ms,
        sum_ms / repeats.max(1) as f64,
        std::hint::black_box(sink),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_on_the_bench_checksum() {
        let (_, scalar_sum) = measure_rows(Kernel::Scalar, 256, 3, 1);
        let detected = Kernel::detect();
        let (_, detected_sum) = measure_rows(detected, 256, 3, 1);
        assert_eq!(
            scalar_sum.to_bits(),
            detected_sum.to_bits(),
            "bench checksum must be kernel-independent (detected {detected:?})"
        );
    }
}
