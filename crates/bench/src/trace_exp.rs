//! Trace-driven experiment assembly (the §6.2 family).
//!
//! Two calibrations of the synthetic DieselNet substrate:
//!
//! * **Deployment** (`TraceLab::deployment`) — the §5 configuration:
//!   default fleet (≈1.8 MB mean opportunities), the paper's default load
//!   of 4 packets/hour from each bus to each other on-road bus, 58 days,
//!   used by Table 3 and Fig. 3.
//! * **Load sweep** (`TraceLab::load_sweep`) — the §6.2 configuration used
//!   for Figs. 4–15: identical fleet dynamics but leaner opportunities
//!   (mean 128 KB), so the bandwidth-constrained regime the paper studies
//!   (Random under 50% delivery at the top load) is reached within the
//!   swept loads. Loads are interpreted as packets/hour *per destination*
//!   (each on-road bus receives `L` packets per hour from uniformly chosen
//!   on-road sources). Both calibration choices are recorded in
//!   EXPERIMENTS.md.
//!
//! The warm-up prefix plus measured day are *streamed* into each run
//! ([`DieselNet::stream_days`] behind an `Arc`'d fleet): the multi-day
//! contact plan never exists in memory, and concurrent day-runs share the
//! fleet with zero per-run clones. The emitted window sequence is exactly
//! the materialized concatenation the seed harness built, so figure TSVs
//! are byte-identical.

use crate::proto::Proto;
use crate::runner::{run_spec, ContactsSpec, PacketsSpec, RunSpec};
use dtn_mobility::{DayTrace, DieselNet, DieselNetConfig};
use dtn_sim::workload::pairwise_poisson;
use dtn_sim::{CompiledPlan, NodeId, NoiseModel, SimReport, Time, TimeDelta};
use dtn_stats::{Mergeable, SeedStream};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Packet size used throughout the trace experiments (Table 4: 1 KB).
pub const PACKET_BYTES: u64 = 1024;

/// Warm-up days prepended to each measured day. The deployment learned
/// meeting averages continuously over 58 days (§4.1.2: "All values used by
/// rapid, including average meeting times, are learned during the
/// experiment"); each measured day therefore replays the preceding days'
/// *contacts* (no packets) first, so protocols start with realistic learned
/// state while each day remains a separate packet experiment (§6.1).
pub const WARMUP_DAYS: u32 = 5;

/// A configured trace laboratory.
pub struct TraceLab {
    fleet: Arc<DieselNet>,
    seeds: SeedStream,
    /// Delivery deadline (Table 4: 2.7 hours).
    pub deadline: TimeDelta,
    /// Day length.
    pub day_length: TimeDelta,
    /// Measured days compiled once and shared: `(plan, on-road buses)`
    /// per day. A load × protocol × workload-run sweep used to regenerate
    /// the same day's schedule at every point; now each day is generated
    /// once, compressed, and expanded per run through a cursor.
    days: Mutex<HashMap<u32, CompiledDay>>,
}

/// One measured day compiled once: `(plan, on-road buses)`.
type CompiledDay = (Arc<CompiledPlan>, Arc<[NodeId]>);

impl TraceLab {
    /// The §5 deployment calibration.
    pub fn deployment(seed: u64) -> Self {
        Self::with_config(DieselNetConfig::default(), seed)
    }

    /// The §6.2 load-sweep calibration: slightly leaner opportunities than
    /// the deployment (1 MB mean), so the swept loads cross from
    /// underutilized into the bandwidth-constrained regime the paper
    /// studies (Random under 50% delivery at the top load).
    pub fn load_sweep(seed: u64) -> Self {
        let cfg = DieselNetConfig {
            opportunity_mean_bytes: 1.0e6,
            ..DieselNetConfig::default()
        };
        Self::with_config(cfg, seed)
    }

    /// A lab over a custom fleet configuration.
    pub fn with_config(cfg: DieselNetConfig, seed: u64) -> Self {
        let day_length = cfg.day_length;
        Self {
            fleet: Arc::new(DieselNet::new(cfg, seed)),
            seeds: SeedStream::new(seed).derive("trace-lab"),
            deadline: TimeDelta::from_secs_f64(2.7 * 3600.0),
            day_length,
            days: Mutex::new(HashMap::new()),
        }
    }

    /// The fleet.
    pub fn fleet(&self) -> &DieselNet {
        &self.fleet
    }

    /// The compiled plan and on-road set for one measured day, generated
    /// once and shared across every sweep point that replays the day. The
    /// plan's expansion is byte-identical to the day's schedule.
    fn compiled_day(&self, day: u32) -> (Arc<CompiledPlan>, Arc<[NodeId]>) {
        if let Some(cached) = self.days.lock().unwrap().get(&day) {
            return cached.clone();
        }
        let trace: DayTrace = self.fleet.generate_day(day);
        let plan = Arc::new(CompiledPlan::compress_schedule(&trace.schedule));
        let on_road: Arc<[NodeId]> = trace.on_road.into();
        // Deterministic generation: a racing builder produced identical
        // data, so first insert wins and both callers share it.
        self.days
            .lock()
            .unwrap()
            .entry(day)
            .or_insert((plan, on_road))
            .clone()
    }

    /// Builds the run for one day at a per-destination hourly load.
    ///
    /// `workload_run` varies the workload draw without changing the
    /// contact trace — the Fig. 3 validation averages 30 such draws.
    pub fn day_spec(
        &self,
        day: u32,
        load_per_dest_per_hour: f64,
        workload_run: u32,
        noise: Option<NoiseModel>,
    ) -> RunSpec {
        assert!(load_per_dest_per_hour > 0.0);
        let (plan, on_road) = self.compiled_day(day);
        let n = on_road.len();
        assert!(n >= 2, "a day needs at least two buses");

        // Warm-up days stream ahead of the measured day: their contacts
        // teach the protocols meeting averages; no packets are generated in
        // the warm-up window. The factory re-opens the warm-up range per
        // run — one day's schedule in memory at a time, shared fleet, no
        // clones — and chains the measured day expanded from its shared
        // compiled plan rather than regenerating (or rematerializing) it.
        let warmup = day.min(WARMUP_DAYS);
        let measure_offset = TimeDelta(self.day_length.0 * u64::from(warmup));
        let stream_fleet = Arc::clone(&self.fleet);
        let warmup_days = (day - warmup)..day;
        let measured_plan = Arc::clone(&plan);
        let contacts = ContactsSpec::streaming(move || {
            let measured_shifted = measured_plan
                .stream()
                .map(move |w| w.shifted(measure_offset));
            Box::new(
                DieselNet::stream_days(Arc::clone(&stream_fleet), warmup_days.clone())
                    .chain(measured_shifted),
            )
        });

        // Load L = packets per hour from each bus to each destination
        // (§5.1: "4 packets per hour generated by each bus for every other
        // bus on the road" — 1,520/hour at 20 buses), i.e. a per-pair mean
        // gap of 3600/L seconds.
        let gap_secs = 3600.0 / load_per_dest_per_hour;
        let horizon = Time(self.day_length.0 * (u64::from(warmup) + 1));
        let mut rng = self
            .seeds
            .rng_indexed("workload", u64::from(day) << 8 | u64::from(workload_run));
        let base = pairwise_poisson(
            &on_road,
            TimeDelta::from_secs_f64(gap_secs),
            PACKET_BYTES,
            Time(self.day_length.0),
            &mut rng,
        );
        // Shift the workload into the measured window.
        let workload = dtn_sim::workload::Workload::new(
            base.specs()
                .iter()
                .map(|s| dtn_sim::workload::PacketSpec {
                    time: s.time + measure_offset,
                    ..*s
                })
                .collect(),
        );
        RunSpec {
            contacts,
            packets: PacketsSpec::shared(workload),
            nodes: self.fleet.config().total_buses,
            buffer: 40 * 1024 * 1024 * 1024, // 40 GB per bus (§5)
            deadline: self.deadline,
            horizon,
            seed: self.seeds.seed() ^ (u64::from(day) << 32) ^ u64::from(workload_run),
            noise,
            measure_from: Time(measure_offset.0),
            churn: Vec::new(),
            ttl: None,
        }
    }

    /// Runs `days` measured days (each with its warm-up prefix) of one
    /// protocol at one load; returns the per-day reports (parallel).
    /// Measured days start at [`WARMUP_DAYS`] so every one has a full
    /// warm-up history.
    pub fn run_days(
        &self,
        days: u32,
        load_per_dest_per_hour: f64,
        proto: Proto,
        noise: Option<NoiseModel>,
    ) -> Vec<SimReport> {
        crate::parallel_map(days as usize, |d| {
            let spec = self.day_spec(WARMUP_DAYS + d as u32, load_per_dest_per_hour, 0, noise);
            run_spec(&spec, proto)
        })
    }

    /// Streaming variant of [`TraceLab::run_days`]: day reports are folded
    /// into a [`TraceAcc`] in day order as they complete, instead of being
    /// collected — same parallelism, bounded memory, bit-identical
    /// aggregate.
    pub fn run_days_agg(
        &self,
        days: u32,
        load_per_dest_per_hour: f64,
        proto: Proto,
        noise: Option<NoiseModel>,
    ) -> TraceAggregate {
        let mut acc = TraceAcc::new(days as usize);
        crate::parallel_reduce(
            days as usize,
            |d| {
                let spec = self.day_spec(WARMUP_DAYS + d as u32, load_per_dest_per_hour, 0, noise);
                run_spec(&spec, proto)
            },
            |_, report| acc.push(&report),
        );
        acc.finish()
    }
}

/// Aggregates per-day reports into the metrics the figures plot.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceAggregate {
    /// Mean over days of per-day average delay, minutes.
    pub avg_delay_min: f64,
    /// Mean over days of per-day max delay, minutes.
    pub max_delay_min: f64,
    /// Mean delivery rate.
    pub delivery_rate: f64,
    /// Mean within-deadline rate.
    pub within_deadline: f64,
    /// Mean average delay including undelivered, minutes.
    pub avg_delay_with_undelivered_min: f64,
    /// Mean channel utilization.
    pub utilization: f64,
    /// Mean metadata / bandwidth.
    pub metadata_over_bandwidth: f64,
    /// Mean metadata / data.
    pub metadata_over_data: f64,
}

/// Streaming accumulator behind [`TraceAggregate`]: absorbs one day report
/// at a time (fixed expected count, so the float operations match the
/// collected reduction bit-for-bit) and merges across shards for sweeps
/// that shard work.
#[derive(Debug, Clone, Copy)]
pub struct TraceAcc {
    n: f64,
    agg: TraceAggregate,
}

impl TraceAcc {
    /// An accumulator expecting `runs` reports.
    pub fn new(runs: usize) -> Self {
        Self {
            n: runs.max(1) as f64,
            agg: TraceAggregate::default(),
        }
    }

    /// Absorbs one day report.
    pub fn push(&mut self, r: &SimReport) {
        let n = self.n;
        let agg = &mut self.agg;
        agg.avg_delay_min += r.avg_delay_secs().unwrap_or(0.0) / 60.0 / n;
        agg.max_delay_min += r.max_delay_secs().unwrap_or(0.0) / 60.0 / n;
        agg.delivery_rate += r.delivery_rate() / n;
        agg.within_deadline += r.within_deadline_rate(None) / n;
        agg.avg_delay_with_undelivered_min +=
            r.avg_delay_with_undelivered_secs().unwrap_or(0.0) / 60.0 / n;
        agg.utilization += r.channel_utilization() / n;
        agg.metadata_over_bandwidth += r.metadata_over_bandwidth() / n;
        agg.metadata_over_data += r.metadata_over_data() / n;
    }

    /// The aggregate over everything pushed.
    pub fn finish(self) -> TraceAggregate {
        self.agg
    }
}

impl Mergeable for TraceAcc {
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.n, other.n, "shards must share the expected count");
        let (a, b) = (&mut self.agg, other.agg);
        a.avg_delay_min += b.avg_delay_min;
        a.max_delay_min += b.max_delay_min;
        a.delivery_rate += b.delivery_rate;
        a.within_deadline += b.within_deadline;
        a.avg_delay_with_undelivered_min += b.avg_delay_with_undelivered_min;
        a.utilization += b.utilization;
        a.metadata_over_bandwidth += b.metadata_over_bandwidth;
        a.metadata_over_data += b.metadata_over_data;
    }
}

/// Reduces day reports to a [`TraceAggregate`].
pub fn aggregate(reports: &[SimReport]) -> TraceAggregate {
    let mut acc = TraceAcc::new(reports.len());
    for r in reports {
        acc.push(r);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_spec_is_deterministic_and_scaled() {
        let lab = TraceLab::load_sweep(3);
        let a = lab.day_spec(0, 10.0, 0, None);
        let b = lab.day_spec(0, 10.0, 0, None);
        assert_eq!(a.packets.materialize(), b.packets.materialize());
        assert_eq!(a.contacts.materialize(), b.contacts.materialize());
        // Different workload draws differ; schedule unchanged.
        let c = lab.day_spec(0, 10.0, 1, None);
        assert_ne!(a.packets.materialize(), c.packets.materialize());
        assert_eq!(a.contacts.materialize(), c.contacts.materialize());
        // Load scales packet count roughly linearly.
        let lo = lab.day_spec(0, 2.0, 0, None).packets.materialize().len() as f64;
        let hi = lab.day_spec(0, 20.0, 0, None).packets.materialize().len() as f64;
        assert!(hi / lo > 6.0 && hi / lo < 14.0, "ratio {}", hi / lo);
    }

    #[test]
    fn day_spec_streams_warmup_prefix_plus_measured_day() {
        let lab = TraceLab::load_sweep(3);
        let day = WARMUP_DAYS + 1;
        let spec = lab.day_spec(day, 4.0, 0, None);
        let schedule = spec.contacts.materialize();
        // The materialized counterpart the seed harness built by hand.
        let mut expected = Vec::new();
        for (k, past) in ((day - WARMUP_DAYS)..=day).enumerate() {
            let offset = TimeDelta(lab.day_length.0 * k as u64);
            for w in lab.fleet().generate_day(past).schedule.windows() {
                expected.push(w.shifted(offset));
            }
        }
        assert_eq!(schedule.windows(), expected);
        assert!(schedule.end_time() <= spec.horizon);
        assert_eq!(Time(spec.measure_from.0).0, lab.day_length.0 * 5);
    }

    #[test]
    fn sweep_points_share_one_compiled_day() {
        let lab = TraceLab::load_sweep(3);
        let (pa, _) = lab.compiled_day(2);
        let _ = lab.day_spec(2, 4.0, 0, None);
        let _ = lab.day_spec(2, 20.0, 1, None);
        let (pb, on_road) = lab.compiled_day(2);
        assert!(Arc::ptr_eq(&pa, &pb), "one plan per day");
        assert_eq!(lab.days.lock().unwrap().len(), 1);
        assert!(on_road.len() >= 2);
    }

    #[test]
    fn aggregate_averages_across_days() {
        let lab = TraceLab::load_sweep(3);
        let reports = lab.run_days(2, 4.0, Proto::Random, None);
        assert_eq!(reports.len(), 2);
        let agg = aggregate(&reports);
        assert!(agg.delivery_rate > 0.0 && agg.delivery_rate <= 1.0);
        assert!(agg.avg_delay_min > 0.0);
    }

    #[test]
    fn streaming_aggregate_matches_collected() {
        let lab = TraceLab::load_sweep(3);
        let collected = aggregate(&lab.run_days(2, 4.0, Proto::Random, None));
        let streamed = lab.run_days_agg(2, 4.0, Proto::Random, None);
        assert_eq!(collected.avg_delay_min, streamed.avg_delay_min);
        assert_eq!(collected.delivery_rate, streamed.delivery_rate);
        assert_eq!(collected.utilization, streamed.utilization);
        assert_eq!(
            collected.metadata_over_bandwidth,
            streamed.metadata_over_bandwidth
        );
    }
}
