//! Scaling of the optimal solvers: the exact branch and bound (Theorem 2
//! says it must be exponential in the worst case) and the scalable bound
//! pair used for Fig. 13.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_mobility::UniformExponential;
use dtn_optimal::{solve_bounded, solve_exact, ExactLimits};
use dtn_sim::workload::pairwise_poisson;
use dtn_sim::{NodeId, Time, TimeDelta};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimal");
    g.sample_size(10);
    let nodes = 6usize;
    let horizon = Time::from_mins(30);
    let mobility = UniformExponential {
        nodes,
        mean_inter_meeting: TimeDelta::from_mins(6),
        opportunity_bytes: 2048,
    };
    let mut rng = dtn_stats::stream(17, "bench-optimal");
    let schedule = mobility.generate(horizon, &mut rng);
    let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();

    // The exact solver is exponential in the worst case (Theorem 2!), so
    // keep its instances small; the bounded solver gets the same ones for
    // an apples-to-apples cost comparison, plus a larger one on its own.
    for pkts_gap_mins in [90u64, 60, 40] {
        let workload = pairwise_poisson(
            &ids,
            TimeDelta::from_mins(pkts_gap_mins),
            1024,
            Time::from_mins(12),
            &mut rng.clone(),
        );
        let n = workload.len();
        g.bench_function(format!("exact_{n}_packets"), |b| {
            b.iter(|| {
                solve_exact(
                    &schedule,
                    &workload,
                    horizon,
                    ExactLimits {
                        max_journeys_per_packet: 300,
                        max_hops: 4,
                        max_packets: 16,
                    },
                )
            })
        });
        g.bench_function(format!("bounded_{n}_packets"), |b| {
            b.iter(|| solve_bounded(&schedule, &workload, horizon))
        });
    }
    let big = pairwise_poisson(
        &ids,
        TimeDelta::from_mins(2),
        1024,
        Time::from_mins(15),
        &mut rng.clone(),
    );
    g.bench_function(format!("bounded_{}_packets", big.len()), |b| {
        b.iter(|| solve_bounded(&schedule, &big, horizon))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
