//! Engine throughput: contacts per second across protocols on a fixed
//! synthetic scenario — the simulator substrate itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_mobility::UniformExponential;
use dtn_sim::workload::pairwise_poisson;
use dtn_sim::{NodeId, Routing, SimConfig, Simulation, Time, TimeDelta};
use rapid_bench::Proto;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let nodes = 12usize;
    let horizon = Time::from_mins(10);
    let mobility = UniformExponential {
        nodes,
        mean_inter_meeting: TimeDelta::from_secs(120),
        opportunity_bytes: 20 * 1024,
    };
    let mut rng = dtn_stats::stream(5, "bench-engine");
    let schedule = mobility.generate(horizon, &mut rng);
    let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
    let workload = pairwise_poisson(&ids, TimeDelta::from_secs(100), 1024, horizon, &mut rng);
    let config = SimConfig {
        nodes,
        horizon,
        deadline: Some(TimeDelta::from_secs(60)),
        ..SimConfig::default()
    };
    for proto in [
        Proto::RapidAvg,
        Proto::MaxProp,
        Proto::SprayWait,
        Proto::Prophet,
        Proto::Random,
        Proto::Epidemic,
    ] {
        g.bench_function(proto.label(), |b| {
            b.iter(|| {
                let mut routing: Box<dyn Routing + Send> =
                    proto.build(TimeDelta::from_secs(60), TimeDelta::from_mins(10));
                Simulation::new(config.clone(), schedule.clone(), workload.clone())
                    .run(routing.as_mut())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
