//! Microbenchmark: h-hop expected-meeting-time estimation (§4.1.2) — the
//! Bellman–Ford relaxation every contact runs — including the ablation over
//! the hop limit h (the paper fixes h = 3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtn_sim::NodeId;
use rand::Rng;
use rapid_core::expected_meeting_times_from;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("meeting_matrix");
    let mut rng = dtn_stats::stream(1, "bench-matrix");
    for n in [20usize, 40] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.4 {
                            rng.gen_range(600.0..90_000.0)
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect()
            })
            .collect();
        for h in [1usize, 2, 3, 4] {
            g.bench_function(format!("n{n}_h{h}"), |b| {
                b.iter(|| expected_meeting_times_from(black_box(&rows), NodeId(0), h))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
