//! The RAPID selection path under growing buffer occupancy: one contact
//! between two nodes whose buffers hold `n` packets. Covers the top-k
//! candidate selection that keeps contacts O(n + k log k).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{Contact, NodeId, Schedule, SimConfig, Simulation, Time, TimeDelta};
use rapid_core::{Rapid, RapidConfig};

fn scenario(n_packets: u64) -> (SimConfig, Schedule, Workload) {
    // Packets from node 0 and 1 to nodes 2..6; one big contact 0↔1 at the
    // end forces a full selection pass over the occupied buffers.
    let mut specs = Vec::new();
    for i in 0..n_packets {
        specs.push(PacketSpec {
            time: Time::from_secs(i % 500),
            src: NodeId((i % 2) as u32),
            dst: NodeId(2 + (i % 4) as u32),
            size_bytes: 1024,
        });
    }
    let mut contacts = Vec::new();
    // Teach meeting averages so estimates are finite.
    for k in 0..4u64 {
        for d in 2..6u32 {
            contacts.push(Contact::new(
                Time::from_secs(10 + 100 * k + u64::from(d)),
                NodeId(1),
                NodeId(d),
                1024,
            ));
        }
    }
    contacts.push(Contact::new(
        Time::from_secs(600),
        NodeId(0),
        NodeId(1),
        64 * 1024,
    ));
    let config = SimConfig {
        nodes: 6,
        horizon: Time::from_secs(700),
        deadline: Some(TimeDelta::from_secs(300)),
        ..SimConfig::default()
    };
    (config, Schedule::new(contacts), Workload::new(specs))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    g.sample_size(10);
    for n in [1_000u64, 10_000, 50_000] {
        let (config, schedule, workload) = scenario(n);
        g.bench_function(format!("contact_with_{n}_buffered"), |b| {
            b.iter(|| {
                let mut rapid = Rapid::new(RapidConfig::avg_delay().with_delay_cap(2000.0));
                Simulation::new(config.clone(), schedule.clone(), workload.clone()).run(&mut rapid)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
