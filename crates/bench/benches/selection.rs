//! The RAPID selection path under growing buffer occupancy: one contact
//! between two nodes whose buffers hold `n` packets. Covers the top-k
//! candidate selection that keeps contacts O(n + k log k) and the
//! dense-id/incremental-cache machinery behind it; the 200k point is the
//! scaling probe for the per-destination queue model (PR 3).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_sim::Simulation;
use rapid_bench::scenarios::selection_scenario;
use rapid_core::{Rapid, RapidConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    g.sample_size(10);
    for n in [1_000u64, 10_000, 50_000, 200_000] {
        let (config, schedule, workload) = selection_scenario(n);
        g.bench_function(format!("contact_with_{n}_buffered"), |b| {
            b.iter(|| {
                let mut rapid = Rapid::new(RapidConfig::avg_delay().with_delay_cap(2000.0));
                Simulation::new(config.clone(), schedule.clone(), workload.clone()).run(&mut rapid)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
