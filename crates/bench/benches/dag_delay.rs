//! Ablation: Appendix C's dependency-graph estimator (`dag_delay`) versus
//! Estimate Delay's independence approximation — accuracy is checked in
//! tests; this measures the cost gap that justifies §4.1's simplification.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtn_sim::{NodeId, PacketId};
use dtn_stats::DiscreteDist;
use rapid_core::{dag_delay, estimate_delay_reference, QueueState};

fn queues(nodes: usize, depth: usize) -> QueueState {
    // Every node holds the same `depth` packets in order: worst-case
    // sharing of the dependency graph.
    QueueState {
        queues: (0..nodes)
            .map(|n| {
                (
                    NodeId(n as u32),
                    (0..depth).map(|p| PacketId(p as u32)).collect(),
                )
            })
            .collect(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_delay");
    g.sample_size(10);
    for (nodes, depth) in [(4usize, 4usize), (8, 8)] {
        let q = queues(nodes, depth);
        let meet_dist: Vec<(NodeId, DiscreteDist)> = (0..nodes)
            .map(|n| (NodeId(n as u32), DiscreteDist::exponential(0.01, 1200, 0.5)))
            .collect();
        let meet_mean: Vec<(NodeId, f64)> = (0..nodes).map(|n| (NodeId(n as u32), 100.0)).collect();
        g.bench_function(format!("dag_delay_{nodes}x{depth}"), |b| {
            b.iter(|| dag_delay(black_box(&q), black_box(&meet_dist)))
        });
        g.bench_function(format!("estimate_delay_{nodes}x{depth}"), |b| {
            b.iter(|| estimate_delay_reference(black_box(&q), black_box(&meet_mean)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
