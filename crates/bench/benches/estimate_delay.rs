//! Microbenchmark: the Estimate Delay inner loop (Eqs. 7–9) and queue
//! snapshot construction — the per-contact hot path of RAPID.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtn_sim::{NodeId, PacketId, Time};
use rapid_core::{expected_remaining_delay, prob_delivered_within, QueueSnapshot};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimate_delay");

    for k in [2usize, 8, 32] {
        let delays: Vec<f64> = (1..=k).map(|i| 100.0 * i as f64).collect();
        g.bench_function(format!("eq8_combine_k{k}"), |b| {
            b.iter(|| expected_remaining_delay(black_box(delays.iter().copied())))
        });
        g.bench_function(format!("eq7_prob_k{k}"), |b| {
            b.iter(|| prob_delivered_within(black_box(delays.iter().copied()), 500.0))
        });
    }

    for n in [1_000usize, 10_000] {
        let packets: Vec<(PacketId, NodeId, u64, Time)> = (0..n)
            .map(|i| {
                (
                    PacketId(i as u32),
                    NodeId((i % 20) as u32),
                    1024,
                    Time::from_secs((i * 7 % 10_000) as u64),
                )
            })
            .collect();
        g.bench_function(format!("queue_snapshot_build_{n}"), |b| {
            b.iter(|| QueueSnapshot::build(black_box(packets.iter().copied())))
        });
        let snap = QueueSnapshot::build(packets.iter().copied());
        g.bench_function(format!("queue_snapshot_query_{n}"), |b| {
            b.iter(|| black_box(&snap).bytes_ahead_if_inserted(NodeId(3), Time::from_secs(5_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
