//! Trace-generation throughput for the three mobility substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_mobility::{DieselNet, DieselNetConfig, PowerLaw, UniformExponential};
use dtn_sim::{Time, TimeDelta};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mobility");
    g.sample_size(20);
    let horizon = Time::from_mins(15);

    let exp = UniformExponential {
        nodes: 20,
        mean_inter_meeting: TimeDelta::from_secs(150),
        opportunity_bytes: 100 * 1024,
    };
    g.bench_function("exponential_20n_15min", |b| {
        let mut rng = dtn_stats::stream(1, "bench-mob-exp");
        b.iter(|| exp.generate(horizon, &mut rng))
    });

    let pl = PowerLaw {
        nodes: 20,
        base_mean: TimeDelta::from_secs(150),
        opportunity_bytes: 100 * 1024,
    };
    g.bench_function("powerlaw_20n_15min", |b| {
        let mut rng = dtn_stats::stream(2, "bench-mob-pl");
        b.iter(|| pl.generate(horizon, &mut rng))
    });

    let fleet = DieselNet::new(DieselNetConfig::default(), 3);
    g.bench_function("dieselnet_day", |b| {
        let mut day = 0u32;
        b.iter(|| {
            day = day.wrapping_add(1);
            fleet.generate_day(day)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
