//! Reduced-scale smoke benches of each experiment family: one trace day
//! and one synthetic run per protocol family, so regressions in end-to-end
//! experiment cost are visible in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use rapid_bench::runner::run_spec;
use rapid_bench::synth::{Mobility, SynthLab};
use rapid_bench::trace_exp::{TraceLab, WARMUP_DAYS};
use rapid_bench::Proto;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_families");
    g.sample_size(10);

    let lab = TraceLab::load_sweep(7);
    for proto in [Proto::RapidAvg, Proto::MaxProp] {
        let spec = lab.day_spec(WARMUP_DAYS, 5.0, 0, None);
        g.bench_function(format!("trace_day_load5_{}", proto.label()), |b| {
            b.iter(|| run_spec(&spec, proto))
        });
    }

    let synth = SynthLab::new(7);
    for proto in [Proto::RapidAvg, Proto::MaxProp] {
        let spec = synth.spec(Mobility::PowerLaw, 0, 20.0, None);
        g.bench_function(format!("powerlaw_load20_{}", proto.label()), |b| {
            b.iter(|| run_spec(&spec, proto))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
