//! Steady-state allocation audit for the contact hot path. A counting
//! global allocator wraps the system allocator; after a warm-up pass has
//! sized each structure's buffers, further same-shaped work must perform
//! **zero** heap allocations. Audited phases: snapshot refill (the
//! per-contact scratch reuse in `protocol.rs`), the [`RateBatch`] kernel
//! rows (Eq. 4–9 over whole queues), the batch scheduler's
//! `take_ready_into` drain (capacity ping-pong + in-place compaction),
//! and the contact pool's work-stealing dispatch.
//!
//! One test only: the counter is process-global, and a sibling test's
//! allocations would pollute the measurement.

use dtn_sim::par::{Batcher, ContactPool, Lookahead, PendingDrive};
use dtn_sim::{ContactWindow, NodeBuffer, NodeId, Packet, PacketId, Time};
use rapid_core::{QueueSnapshot, RateBatch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct Counting;

// SAFETY: delegates to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn filled_buffer(id_base: u32, packets: usize, dsts: u32) -> NodeBuffer {
    let mut buf = NodeBuffer::new(u64::MAX);
    for k in 0..packets {
        let stored = buf.insert(
            &Packet {
                id: PacketId(id_base + k as u32),
                src: NodeId(0),
                dst: NodeId(1 + (k as u32 % dsts)),
                size_bytes: 1024,
                created_at: Time::from_secs(k as u64),
            },
            Time::from_secs(k as u64),
        );
        assert!(stored);
    }
    buf
}

#[test]
fn steady_state_snapshot_refill_allocates_nothing() {
    let first = filled_buffer(0, 48, 6);
    // Same shape (queue count and per-queue sizes), different packets —
    // the steady-state case: one contact after another refilling the same
    // scratch snapshot.
    let second = filled_buffer(1000, 48, 6);

    let mut snap = QueueSnapshot::default();
    // Warm-up: sizes every internal buffer.
    snap.refill_from_buffer(&first);

    let before = ALLOCS.load(Ordering::Relaxed);
    snap.refill_from_buffer(&second);
    snap.refill_from_buffer(&first);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state snapshot refill must not touch the heap"
    );

    // The refilled snapshot still answers queries correctly.
    assert_eq!(
        snap.bytes_ahead(NodeId(1), PacketId(6), Time::from_secs(6)),
        1024,
        "second same-destination packet sits one packet deep"
    );

    rate_batch_phase();
    batcher_phase();
    pool_phase();
}

/// Same-length Eq. 4–9 kernel rows must reuse the batch's lane storage.
fn rate_batch_phase() {
    let mut batch = RateBatch::default();
    // Warm-up: sizes the input and output lanes.
    for k in 0..33u64 {
        batch.push(k * 1024);
    }
    batch.compute(120.0, 4096.0, 1e9);

    let before = ALLOCS.load(Ordering::Relaxed);
    batch.clear();
    for k in 0..33u64 {
        batch.push(k * 2048 + 7);
    }
    let rows = batch.compute(90.0, 2048.0, 1e9);
    assert_eq!(rows.len(), 33);
    let rate = batch.combined_rate();
    assert!(rate.is_finite() && rate > 0.0);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state RateBatch compute must not touch the heap"
    );
}

fn drive(seq: u64, a: u32, b: u32) -> PendingDrive {
    PendingDrive {
        window: ContactWindow::instant(Time::from_secs(seq), NodeId(a), NodeId(b), 2048),
        now: Time::from_secs(seq),
        budget: 2048,
        seq,
        measured: true,
    }
}

/// The batch scheduler's push/drain cycle must ping-pong the ready
/// storage with the caller's vector and compact deferrals in place.
fn batcher_phase() {
    let mut batcher = Batcher::new(8, Lookahead::Fixed(6));
    let mut out = Vec::new();
    let fill = |batcher: &mut Batcher| {
        // Two conflicting pairs exercise the deferral path too.
        for (i, (a, b)) in [(0, 1), (2, 3), (0, 2), (4, 5), (6, 7), (1, 3)]
            .into_iter()
            .enumerate()
        {
            batcher.push(drive(i as u64, a, b));
        }
    };
    // Warm-up: sizes ready, deferred and the caller's out vector.
    fill(&mut batcher);
    while !batcher.is_empty() {
        batcher.take_ready_into(&mut out);
    }
    batcher.take_ready_into(&mut out);

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut drained = 0;
    fill(&mut batcher);
    while !batcher.is_empty() {
        batcher.take_ready_into(&mut out);
        drained += out.len();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(drained, 6, "every pushed drive drains exactly once");
    assert_eq!(
        after - before,
        0,
        "steady-state batcher drain must not touch the heap"
    );
}

/// Work-stealing dispatch reuses the pool's packed deques: after the
/// first batch, further batches allocate nothing.
fn pool_phase() {
    std::thread::scope(|scope| {
        let pool = ContactPool::start(scope, 2);
        let hits = AtomicUsize::new(0);
        let task = |_worker: usize, _idx: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        // Warm-up: first dispatch may fault in thread state.
        pool.run(64, &task);

        let before = ALLOCS.load(Ordering::Relaxed);
        pool.run(64, &task);
        pool.run(64, &task);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(hits.load(Ordering::Relaxed), 192);
        assert_eq!(
            after - before,
            0,
            "steady-state pool dispatch must not touch the heap"
        );
    });
}
