//! Steady-state allocation audit for the contact hot path's snapshot
//! refill. A counting global allocator wraps the system allocator; after a
//! warm-up refill has sized the snapshot's buffers, further refills from
//! same-shaped buffers must perform **zero** heap allocations — the
//! property the per-contact scratch reuse in `protocol.rs` relies on.
//!
//! One test only: the counter is process-global, and a sibling test's
//! allocations would pollute the measurement.

use dtn_sim::{NodeBuffer, NodeId, Packet, PacketId, Time};
use rapid_core::QueueSnapshot;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct Counting;

// SAFETY: delegates to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn filled_buffer(id_base: u32, packets: usize, dsts: u32) -> NodeBuffer {
    let mut buf = NodeBuffer::new(u64::MAX);
    for k in 0..packets {
        let stored = buf.insert(
            &Packet {
                id: PacketId(id_base + k as u32),
                src: NodeId(0),
                dst: NodeId(1 + (k as u32 % dsts)),
                size_bytes: 1024,
                created_at: Time::from_secs(k as u64),
            },
            Time::from_secs(k as u64),
        );
        assert!(stored);
    }
    buf
}

#[test]
fn steady_state_snapshot_refill_allocates_nothing() {
    let first = filled_buffer(0, 48, 6);
    // Same shape (queue count and per-queue sizes), different packets —
    // the steady-state case: one contact after another refilling the same
    // scratch snapshot.
    let second = filled_buffer(1000, 48, 6);

    let mut snap = QueueSnapshot::default();
    // Warm-up: sizes every internal buffer.
    snap.refill_from_buffer(&first);

    let before = ALLOCS.load(Ordering::Relaxed);
    snap.refill_from_buffer(&second);
    snap.refill_from_buffer(&first);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state snapshot refill must not touch the heap"
    );

    // The refilled snapshot still answers queries correctly.
    assert_eq!(
        snap.bytes_ahead(NodeId(1), PacketId(6), Time::from_secs(6)),
        1024,
        "second same-destination packet sits one packet deep"
    );
}
