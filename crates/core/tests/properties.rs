//! Property tests for RAPID's inference machinery: the monotonicity and
//! consistency facts the selection algorithm silently relies on, and the
//! incremental delay cache's agreement with from-scratch recomputation.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{
    Contact, NodeEvent, NodeId, PacketId, Schedule, SimConfig, Simulation, Time, TimeDelta,
};
use proptest::prelude::*;
use rapid_core::{
    combined_rate, expected_meeting_times_from, expected_remaining_delay, meetings_needed,
    prob_delivered_within, replica_delay, Kernel, QueueSnapshot, Rapid, RapidConfig, RateBatch,
};

proptest! {
    #[test]
    fn combined_delay_never_exceeds_best_replica(
        delays in prop::collection::vec(0.1f64..1e6, 1..20),
    ) {
        let combined = expected_remaining_delay(delays.iter().copied());
        let best = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(combined <= best + 1e-9);
    }

    #[test]
    fn adding_a_replica_never_hurts(
        delays in prop::collection::vec(0.1f64..1e6, 1..20),
        extra in 0.1f64..1e6,
    ) {
        let before = expected_remaining_delay(delays.iter().copied());
        let after = expected_remaining_delay(delays.iter().copied().chain([extra]));
        prop_assert!(after <= before + 1e-9);
        let p_before = prob_delivered_within(delays.iter().copied(), 100.0);
        let p_after = prob_delivered_within(delays.iter().copied().chain([extra]), 100.0);
        prop_assert!(p_after + 1e-12 >= p_before);
    }

    #[test]
    fn prob_is_a_cdf_in_t(
        delays in prop::collection::vec(1.0f64..1e4, 1..8),
        t1 in 0.0f64..1e4,
        dt in 0.0f64..1e4,
    ) {
        let p1 = prob_delivered_within(delays.iter().copied(), t1);
        let p2 = prob_delivered_within(delays.iter().copied(), t1 + dt);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 + 1e-12 >= p1);
    }

    #[test]
    fn meetings_needed_monotone_in_backlog(b1 in 0u64..10_000_000, extra in 0u64..1_000_000, opp in 1.0f64..1e7) {
        let m1 = meetings_needed(b1, opp);
        let m2 = meetings_needed(b1 + extra, opp);
        prop_assert!(m1 >= 1.0);
        prop_assert!(m2 >= m1);
    }

    #[test]
    fn deeper_queue_position_never_reduces_delay(
        est in 1.0f64..1e5,
        b in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        opp in 1.0f64..1e6,
    ) {
        let shallow = replica_delay(est, meetings_needed(b, opp));
        let deep = replica_delay(est, meetings_needed(b + extra, opp));
        prop_assert!(deep + 1e-9 >= shallow);
    }

    #[test]
    fn hop_limit_monotonicity(
        seed in 0u64..1000,
        n in 3usize..12,
    ) {
        // More hops can only improve (reduce) estimated meeting times.
        use rand::Rng;
        let mut rng = dtn_stats::stream(seed, "prop-matrix");
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.5 {
                            rng.gen_range(1.0..1e4)
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect()
            })
            .collect();
        let h2 = expected_meeting_times_from(&rows, NodeId(0), 2);
        let h3 = expected_meeting_times_from(&rows, NodeId(0), 3);
        let h4 = expected_meeting_times_from(&rows, NodeId(0), 4);
        for z in 0..n {
            prop_assert!(h3[z] <= h2[z] + 1e-9);
            prop_assert!(h4[z] <= h3[z] + 1e-9);
            // And no estimate beats the direct row entry's best 1-hop value.
            prop_assert!(h2[z] <= rows[0][z] + 1e-9);
        }
    }

    // --- Incremental delay cache vs from-scratch recomputation ------------
    //
    // `protocol.rs` carries two debug-build oracles: every rate-cache hit
    // is re-verified bitwise against a fresh Eq. 4–9 computation, and every
    // `make_room` decision (including the lazily re-sorted eviction order)
    // is compared against a full filter→score→sort reference. Driving RAPID
    // through proptest-chosen scenarios — tight buffers forcing storage
    // evictions, transfers and deliveries at contacts, TTL expiry, node
    // churn — therefore *is* the cache-consistency property: any missed
    // invalidation panics the run. Determinism across two runs is asserted
    // on top.
    #[test]
    fn delay_cache_matches_from_scratch_recomputation(
        contacts in prop::collection::vec((0u16..400, 0u8..5, 0u8..5, 256u16..4096), 1..30),
        specs in prop::collection::vec((0u16..400, 0u8..5, 0u8..5), 1..40),
        capacity in 1024u64..6_000,
        with_ttl in any::<bool>(),
        churn in prop::collection::vec((0u16..400, 0u8..5, any::<bool>()), 0..6),
        deadline_metric in any::<bool>(),
    ) {
        let n = 5u8;
        let contacts: Vec<Contact> = contacts
            .into_iter()
            .map(|(t, a, b, bytes)| {
                let a = a % n;
                let b = if b % n == a { (a + 1) % n } else { b % n };
                Contact::new(
                    Time::from_secs(u64::from(t)),
                    NodeId(u32::from(a)),
                    NodeId(u32::from(b)),
                    u64::from(bytes),
                )
            })
            .collect();
        let specs: Vec<PacketSpec> = specs
            .into_iter()
            .map(|(t, src, dst)| {
                let src = src % n;
                let dst = if dst % n == src { (src + 1) % n } else { dst % n };
                PacketSpec {
                    time: Time::from_secs(u64::from(t)),
                    src: NodeId(u32::from(src)),
                    dst: NodeId(u32::from(dst)),
                    size_bytes: 1024,
                }
            })
            .collect();
        let churn: Vec<NodeEvent> = churn
            .into_iter()
            .map(|(t, node, up)| NodeEvent {
                time: Time::from_secs(u64::from(t)),
                node: NodeId(u32::from(node % n)),
                up,
            })
            .collect();
        let config = SimConfig {
            nodes: n as usize,
            buffer_capacity: capacity,
            horizon: Time::from_secs(500),
            ttl: with_ttl.then_some(TimeDelta::from_secs(90)),
            ..SimConfig::default()
        };
        let build = || {
            Simulation::new(
                config.clone(),
                Schedule::new(contacts.clone()),
                Workload::new(specs.clone()),
            )
            .with_churn(churn.clone())
        };
        let rapid_config = if deadline_metric {
            RapidConfig::deadline(TimeDelta::from_secs(60))
        } else {
            RapidConfig::avg_delay()
        };
        let r1 = build().run(&mut Rapid::new(rapid_config));
        let r2 = build().run(&mut Rapid::new(rapid_config));
        prop_assert_eq!(r1, r2, "cached and re-run reports must agree");
    }

    #[test]
    fn queue_snapshot_prefix_sums_are_exact(
        entries in prop::collection::vec(
            (0u32..200, 0u32..5, 1u64..5_000, 0u64..10_000),
            1..60,
        ),
    ) {
        // Deduplicate ids (a buffer holds one replica per packet).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<_> = entries
            .into_iter()
            .filter(|(id, _, _, _)| seen.insert(*id))
            .collect();
        let snap = QueueSnapshot::build(entries.iter().map(|&(id, dst, size, t)| {
            (PacketId(id), NodeId(dst), size, Time::from_secs(t))
        }));
        for &(id, dst, size, t) in &entries {
            let _ = size;
            let ahead = snap.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(t));
            // Model: sum of sizes of strictly earlier (time, id) pairs with
            // the same destination.
            let expect: u64 = entries
                .iter()
                .filter(|&&(oid, odst, _, ot)| {
                    odst == dst && (ot, oid) < (t, id)
                })
                .map(|&(_, _, osize, _)| osize)
                .sum();
            prop_assert_eq!(ahead, expect);
        }
    }

    /// The batched Eq. 4–9 kernels must be **bitwise** equal to the scalar
    /// chain for arbitrary queues — every tail width (`len % RATE_LANES`),
    /// every available kernel (AVX2 included when the host supports it),
    /// degenerate meeting estimates and opportunity sizes included.
    #[test]
    fn rate_batch_kernels_match_scalar_chain_bitwise(
        bytes in prop::collection::vec(
            prop_oneof![0u64..1 << 30, Just(0), Just(u64::MAX), Just(1u64 << 53)],
            0..40,
        ),
        meeting in prop_oneof![
            1e-12f64..1e9,
            Just(0.0),
            Just(f64::INFINITY),
            Just(f64::NAN),
        ],
        opp in prop_oneof![1.0f64..1e9, Just(0.0), Just(f64::INFINITY)],
    ) {
        let cap = 1e9;
        let kernels: &[Kernel] = if Kernel::detect() == Kernel::Scalar {
            &[Kernel::Scalar]
        } else {
            &[Kernel::Scalar, Kernel::Avx2]
        };
        for &kernel in kernels {
            let mut batch = RateBatch::new(kernel);
            for &b in &bytes {
                batch.push(b);
            }
            let rows = batch.compute(meeting, opp, cap);
            prop_assert_eq!(rows.len(), bytes.len());
            for (&b, &row) in bytes.iter().zip(rows) {
                let scalar = replica_delay(meeting, meetings_needed(b, opp)).min(cap);
                prop_assert_eq!(
                    row.to_bits(),
                    scalar.to_bits(),
                    "kernel {:?} row for bytes={} diverges: {} vs {}",
                    kernel, b, row, scalar
                );
            }
            let batched_rate = batch.combined_rate();
            let scalar_rate = combined_rate(
                bytes
                    .iter()
                    .map(|&b| replica_delay(meeting, meetings_needed(b, opp)).min(cap)),
            );
            prop_assert_eq!(batched_rate.to_bits(), scalar_rate.to_bits());
        }
    }
}
