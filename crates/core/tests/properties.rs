//! Property tests for RAPID's inference machinery: the monotonicity and
//! consistency facts the selection algorithm silently relies on.

use dtn_sim::{NodeId, PacketId, Time};
use proptest::prelude::*;
use rapid_core::{
    expected_meeting_times_from, expected_remaining_delay, meetings_needed, prob_delivered_within,
    replica_delay, QueueSnapshot,
};

proptest! {
    #[test]
    fn combined_delay_never_exceeds_best_replica(
        delays in prop::collection::vec(0.1f64..1e6, 1..20),
    ) {
        let combined = expected_remaining_delay(delays.iter().copied());
        let best = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(combined <= best + 1e-9);
    }

    #[test]
    fn adding_a_replica_never_hurts(
        delays in prop::collection::vec(0.1f64..1e6, 1..20),
        extra in 0.1f64..1e6,
    ) {
        let before = expected_remaining_delay(delays.iter().copied());
        let after = expected_remaining_delay(delays.iter().copied().chain([extra]));
        prop_assert!(after <= before + 1e-9);
        let p_before = prob_delivered_within(delays.iter().copied(), 100.0);
        let p_after = prob_delivered_within(delays.iter().copied().chain([extra]), 100.0);
        prop_assert!(p_after + 1e-12 >= p_before);
    }

    #[test]
    fn prob_is_a_cdf_in_t(
        delays in prop::collection::vec(1.0f64..1e4, 1..8),
        t1 in 0.0f64..1e4,
        dt in 0.0f64..1e4,
    ) {
        let p1 = prob_delivered_within(delays.iter().copied(), t1);
        let p2 = prob_delivered_within(delays.iter().copied(), t1 + dt);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 + 1e-12 >= p1);
    }

    #[test]
    fn meetings_needed_monotone_in_backlog(b1 in 0u64..10_000_000, extra in 0u64..1_000_000, opp in 1.0f64..1e7) {
        let m1 = meetings_needed(b1, opp);
        let m2 = meetings_needed(b1 + extra, opp);
        prop_assert!(m1 >= 1.0);
        prop_assert!(m2 >= m1);
    }

    #[test]
    fn deeper_queue_position_never_reduces_delay(
        est in 1.0f64..1e5,
        b in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        opp in 1.0f64..1e6,
    ) {
        let shallow = replica_delay(est, meetings_needed(b, opp));
        let deep = replica_delay(est, meetings_needed(b + extra, opp));
        prop_assert!(deep + 1e-9 >= shallow);
    }

    #[test]
    fn hop_limit_monotonicity(
        seed in 0u64..1000,
        n in 3usize..12,
    ) {
        // More hops can only improve (reduce) estimated meeting times.
        use rand::Rng;
        let mut rng = dtn_stats::stream(seed, "prop-matrix");
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.5 {
                            rng.gen_range(1.0..1e4)
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect()
            })
            .collect();
        let h2 = expected_meeting_times_from(&rows, NodeId(0), 2);
        let h3 = expected_meeting_times_from(&rows, NodeId(0), 3);
        let h4 = expected_meeting_times_from(&rows, NodeId(0), 4);
        for z in 0..n {
            prop_assert!(h3[z] <= h2[z] + 1e-9);
            prop_assert!(h4[z] <= h3[z] + 1e-9);
            // And no estimate beats the direct row entry's best 1-hop value.
            prop_assert!(h2[z] <= rows[0][z] + 1e-9);
        }
    }

    #[test]
    fn queue_snapshot_prefix_sums_are_exact(
        entries in prop::collection::vec(
            (0u32..200, 0u32..5, 1u64..5_000, 0u64..10_000),
            1..60,
        ),
    ) {
        // Deduplicate ids (a buffer holds one replica per packet).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<_> = entries
            .into_iter()
            .filter(|(id, _, _, _)| seen.insert(*id))
            .collect();
        let snap = QueueSnapshot::build(entries.iter().map(|&(id, dst, size, t)| {
            (PacketId(id), NodeId(dst), size, Time::from_secs(t))
        }));
        for &(id, dst, size, t) in &entries {
            let _ = size;
            let ahead = snap.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(t));
            // Model: sum of sizes of strictly earlier (time, id) pairs with
            // the same destination.
            let expect: u64 = entries
                .iter()
                .filter(|&&(oid, odst, _, ot)| {
                    odst == dst && (ot, oid) < (t, id)
                })
                .map(|&(_, _, osize, _)| osize)
                .sum();
            prop_assert_eq!(ahead, expect);
        }
    }
}
