//! Estimate Delay — Algorithm 2 of the paper (§4.1, Eqs. 4–9).
//!
//! A node estimating the remaining delivery delay `a(i)` of packet `i`
//! (destination `Z`) reasons per replica:
//!
//! 1. Each holder `n_j` sorts its packets for `Z` in delivery order; let
//!    `b_j(i)` be the bytes queued ahead of `i` (Fig. 1).
//! 2. With `B_j` the expected transfer opportunity between `n_j` and `Z`,
//!    delivering `i` directly takes `n_j(i)` meetings — a gamma-distributed
//!    wait which the paper approximates by an exponential with the same
//!    mean `E(M_{n_j Z}) · n_j(i)` (§4.1.1, because the minimum of gammas
//!    has no closed form).
//! 3. Assuming independence across replicas (Assumption 2), the remaining
//!    delay is the minimum of the per-replica exponentials:
//!    `P(a(i) < t) = 1 − exp(−Σ_j t/a_j)` (Eq. 7) and
//!    `A(i) = (Σ_j 1/a_j)^{-1}` (Eqs. 8–9).
//!
//! One deliberate deviation, noted in DESIGN.md: the paper writes
//! `⌈b_j(i)/B_j⌉` meetings, which is 0 for the head-of-queue packet; we use
//! `⌊b_j(i)/B_j⌋ + 1` so the head packet needs exactly one meeting.
//!
//! # Batched kernels and the deterministic reduction
//!
//! The Eq. 4–5 chain (`meetings_needed` → `replica_delay` → delay cap) is
//! element-wise over a delivery queue once the per-queue constants (the
//! destination's expected meeting time, the believed opportunity size, the
//! cap) are fixed — which is how the protocol consumes it: one row per
//! destination queue. [`RateBatch`] evaluates that chain over a whole row
//! at once from a SoA `bytes_ahead` layout, in fixed-width `f64` chunks
//! the autovectorizer can lower directly, with an optional explicit AVX2
//! path behind runtime feature detection ([`Kernel`]). Every row element
//! is produced by the same IEEE-754 operation sequence as the scalar
//! functions, so the rows are **bitwise identical** to per-packet calls on
//! every kernel (property-tested in `tests/properties.rs`).
//!
//! The one order-sensitive quantity is the combined-rate *sum* (Eq. 8).
//! [`combined_rate`] defines its reduction as a fixed [`RATE_LANES`]-stripe
//! accumulation — element `i` adds into stripe `i % RATE_LANES` — closed by
//! a fixed pairwise tree over the stripes ([`reduce_stripes`]). That order
//! is exactly what a chunked vector loop computes, so the hardware lane
//! width (scalar, SSE2, AVX2) can never change the bitwise result; trailing
//! empty stripes hold `+0.0`, which is an exact no-op addend over the
//! non-negative partial sums.

use dtn_sim::buffer::queue_slice;
use dtn_sim::{NodeBuffer, NodeId, NodeInterner, PacketId, QueueEntry, Time};

/// Smallest representable per-replica delay (seconds); guards divisions.
const MIN_DELAY_SECS: f64 = 1e-6;

/// Logical stripe count of the deterministic combined-rate reduction (and
/// the chunk width the batched kernels are laid out for): one AVX2 `f64`
/// register. Fixed — never derived from the runtime vector width — so the
/// reduction order is a property of the algorithm, not the machine.
pub const RATE_LANES: usize = 4;

/// Number of meetings with the destination needed before `i`'s turn:
/// `⌊bytes_ahead / B⌋ + 1`.
pub fn meetings_needed(bytes_ahead: u64, avg_opportunity_bytes: f64) -> f64 {
    let b = avg_opportunity_bytes.max(1.0);
    let q = bytes_ahead as f64 / b;
    // `q` is non-negative and below 2^64 (numerator ≤ u64::MAX, b ≥ 1), so
    // truncation through u64 equals `q.floor()` — without the libm floor
    // call this hot path otherwise pays on baseline x86-64.
    (q as u64) as f64 + 1.0
}

/// Per-replica direct-delivery delay `a_j(i) = E(M_{jZ}) · n_j(i)` seconds.
/// Infinite expected meeting time (unreachable within `h` hops, §4.1.2)
/// yields an infinite delay — the replica contributes nothing.
pub fn replica_delay(expected_meeting_secs: f64, meetings: f64) -> f64 {
    if !expected_meeting_secs.is_finite() {
        return f64::INFINITY;
    }
    (expected_meeting_secs * meetings).max(MIN_DELAY_SECS)
}

/// Combined replica rate `Σ_j 1/a_j` over the per-replica delays — the
/// one expensive quantity behind Eqs. 7–9. Every utility RAPID uses is a
/// cheap closed form over this rate ([`delay_from_rate`],
/// [`prob_within_from_rate`]), which is what makes the rate the natural
/// unit to cache incrementally (see `cache.rs`). Infinite delays
/// (unreachable replicas) contribute nothing.
///
/// The summation order is the deterministic [`RATE_LANES`]-stripe
/// reduction (module docs): element `j` accumulates into stripe
/// `j % RATE_LANES`, and the stripes close under the fixed tree of
/// [`reduce_stripes`]. The order is a function of element *count* only —
/// never of the execution strategy — so scalar and vectorized evaluations
/// of the same delay list are bitwise identical.
pub fn combined_rate(replica_delays: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = [0.0f64; RATE_LANES];
    let mut lane = 0;
    for a in replica_delays {
        acc[lane] += rate_contribution(a);
        lane = (lane + 1) % RATE_LANES;
    }
    reduce_stripes(acc)
}

/// Closes the stripe accumulators of the deterministic reduction under a
/// fixed pairwise tree: `(s0 + s1) + (s2 + s3)`. One order, everywhere —
/// the scalar [`combined_rate`], the batched [`RateBatch::combined_rate`],
/// and the AVX2 lane extraction all end here.
#[inline]
pub fn reduce_stripes(acc: [f64; RATE_LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// One replica's additive contribution to the combined rate: `1/a` for a
/// finite delay, 0 for an unreachable replica. Selection paths use this to
/// extend an already-reduced rate by one replica (`rate + contribution`);
/// that extension is a scoring formula in its own right, not a claim of
/// bitwise equality with re-folding the full list through the striped
/// [`combined_rate`].
pub fn rate_contribution(a: f64) -> f64 {
    if a.is_finite() {
        1.0 / a.max(MIN_DELAY_SECS)
    } else {
        0.0
    }
}

/// `A(i)` from a combined rate (Eq. 8/9): the mean of the minimum of
/// independent exponentials. Zero rate (no viable replica) is infinite.
pub fn delay_from_rate(rate: f64) -> f64 {
    if rate > 0.0 {
        1.0 / rate
    } else {
        f64::INFINITY
    }
}

/// `P(a(i) < t)` from a combined rate (Eq. 7).
pub fn prob_within_from_rate(rate: f64, t_secs: f64) -> f64 {
    if t_secs <= 0.0 || rate == 0.0 {
        return 0.0;
    }
    1.0 - (-rate * t_secs).exp()
}

/// Combined expected remaining delay `A(i)` over replica delays (Eq. 8/9):
/// the mean of the minimum of independent exponentials with those means.
pub fn expected_remaining_delay(replica_delays: impl IntoIterator<Item = f64>) -> f64 {
    delay_from_rate(combined_rate(replica_delays))
}

/// `P(a(i) < t)` for the combined replicas (Eq. 7).
pub fn prob_delivered_within(replica_delays: impl IntoIterator<Item = f64>, t_secs: f64) -> f64 {
    prob_within_from_rate(combined_rate(replica_delays), t_secs)
}

/// Execution strategy for the batched Eq. 4–9 kernels.
///
/// Every strategy computes the same IEEE-754 operation sequence, so the
/// choice can never change a result bit — only how many elements move per
/// instruction. `Scalar` is the portable chunked loop (autovectorizable);
/// `Avx2` is the explicit `std::arch` path, only selectable where the CPU
/// reports the feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable chunked loop over [`RATE_LANES`]-wide stripes.
    Scalar,
    /// Explicit 256-bit `std::arch` path (x86-64 with AVX2 only).
    Avx2,
}

impl Kernel {
    /// The best kernel the running CPU supports (AVX2 where detected).
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        Kernel::Scalar
    }

    /// Parses a `RAPID_KERNEL` value: `auto` (detect), `scalar`, or
    /// `avx2`. Rejects anything else — and rejects `avx2` on hardware
    /// without it — instead of silently falling back.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None => Ok(Self::detect()),
            Some("auto") => Ok(Self::detect()),
            Some("scalar") => Ok(Kernel::Scalar),
            Some("avx2") => {
                if Self::detect() == Kernel::Avx2 {
                    Ok(Kernel::Avx2)
                } else {
                    Err("RAPID_KERNEL=avx2 requested but the CPU does not report AVX2".into())
                }
            }
            Some(other) => Err(format!(
                "invalid RAPID_KERNEL value {other:?}: expected auto, scalar, or avx2"
            )),
        }
    }

    /// [`Kernel::parse`] over the `RAPID_KERNEL` environment knob, read
    /// through the workspace's strict knob path (`dtn_sim::env`); invalid
    /// values abort with a clear message rather than silently running a
    /// different kernel.
    pub fn from_env() -> Self {
        dtn_sim::env::from_env_or("RAPID_KERNEL", Self::detect(), |v| Self::parse(Some(v)))
    }
}

/// Batched evaluation of the Eq. 4–5 chain over one delivery queue: a SoA
/// `bytes_ahead` row in, a capped own-replica delay row out, with the
/// per-queue constants (expected meeting time, opportunity size, delay
/// cap) broadcast across the row.
///
/// The buffers are reusable scratch — `clear`/`push`/[`RateBatch::compute`]
/// allocate nothing in steady state (the zero-allocation audit covers
/// this). Rows are bitwise identical to calling
/// `replica_delay(e, meetings_needed(b, opp)).min(cap)` per element, on
/// every [`Kernel`].
#[derive(Debug, Clone)]
pub struct RateBatch {
    kernel: Kernel,
    /// SoA input row: per-packet bytes-ahead, pre-converted to `f64`
    /// (the exact conversion `meetings_needed` performs).
    bytes: Vec<f64>,
    /// Output row: per-packet capped own-replica delay `a_j(i)`.
    delays: Vec<f64>,
}

impl Default for RateBatch {
    fn default() -> Self {
        Self::new(Kernel::detect())
    }
}

impl RateBatch {
    /// An empty batch evaluating rows with `kernel`.
    pub fn new(kernel: Kernel) -> Self {
        Self {
            kernel,
            bytes: Vec::new(),
            delays: Vec::new(),
        }
    }

    /// The kernel this batch evaluates with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Replaces the kernel (scratch buffers keep their capacity).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Drops the input row (keeps capacity).
    pub fn clear(&mut self) {
        self.bytes.clear();
    }

    /// Appends one packet's bytes-ahead to the input row.
    pub fn push(&mut self, bytes_ahead: u64) {
        self.bytes.push(bytes_ahead as f64);
    }

    /// Loads a whole delivery queue's prefix sums as the input row.
    pub fn load_queue(&mut self, queue: &[QueueEntry]) {
        self.bytes.clear();
        self.bytes
            .extend(queue.iter().map(|e| e.bytes_ahead as f64));
    }

    /// Row length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the input row is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Evaluates the fused Eq. 4–5 + cap chain over the loaded row:
    /// `min(max(E · (⌊b/B⌋ + 1), MIN_DELAY), cap)` per element, with a
    /// non-finite `E` behaving exactly like the scalar chain (an infinite
    /// per-replica delay, then capped). Returns the output row.
    pub fn compute(
        &mut self,
        expected_meeting_secs: f64,
        avg_opportunity_bytes: f64,
        cap_secs: f64,
    ) -> &[f64] {
        let b = avg_opportunity_bytes.max(1.0);
        // The scalar chain routes any non-finite expected meeting time
        // through `replica_delay`'s infinity arm; folding that into the
        // broadcast constant keeps the row kernel branch-free (NaN would
        // otherwise poison the multiply differently than the scalar path).
        let e = if expected_meeting_secs.is_finite() {
            expected_meeting_secs
        } else {
            f64::INFINITY
        };
        self.delays.clear();
        self.delays.resize(self.bytes.len(), 0.0);
        match self.kernel {
            Kernel::Scalar => row_scalar(&self.bytes, &mut self.delays, e, b, cap_secs),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only constructed through
            // `detect`/`parse`, which gate on runtime AVX2 detection.
            Kernel::Avx2 => unsafe { row_avx2(&self.bytes, &mut self.delays, e, b, cap_secs) },
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Avx2 => unreachable!("Avx2 is never selected off x86-64"),
        }
        &self.delays
    }

    /// The output row of the last [`RateBatch::compute`].
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// The striped combined rate (Eq. 8) of the computed row — bitwise
    /// identical to [`combined_rate`] over the same delays on every
    /// kernel (`1/∞ = +0.0` is exactly the scalar arm's zero
    /// contribution).
    pub fn combined_rate(&self) -> f64 {
        match self.kernel {
            Kernel::Scalar => combined_rate(self.delays.iter().copied()),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as in `compute` — the variant implies detection.
            Kernel::Avx2 => unsafe { rate_avx2(&self.delays) },
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Avx2 => unreachable!("Avx2 is never selected off x86-64"),
        }
    }
}

/// One element of the fused row chain — shared by the scalar kernel and
/// every vector kernel's tail loop. `e` is pre-sanitized (finite or
/// `+∞`), `b` is already clamped to ≥ 1.
#[inline]
fn row_elem(bytes: f64, e: f64, b: f64, cap: f64) -> f64 {
    // `q.trunc()` equals `meetings_needed`'s `(q as u64) as f64` for the
    // whole input range: below 2^53 both are the exact integer part, and
    // from 2^53 every representable f64 is already integral, so the
    // u64 round-trip is the identity.
    let m = (bytes / b).trunc() + 1.0;
    (e * m).max(MIN_DELAY_SECS).min(cap)
}

/// Portable chunked row kernel, laid out in [`RATE_LANES`]-wide stripes
/// for the autovectorizer.
fn row_scalar(bytes: &[f64], out: &mut [f64], e: f64, b: f64, cap: f64) {
    let chunks = bytes.len() / RATE_LANES * RATE_LANES;
    for (x, d) in bytes[..chunks]
        .chunks_exact(RATE_LANES)
        .zip(out[..chunks].chunks_exact_mut(RATE_LANES))
    {
        for lane in 0..RATE_LANES {
            d[lane] = row_elem(x[lane], e, b, cap);
        }
    }
    for (x, d) in bytes[chunks..].iter().zip(&mut out[chunks..]) {
        *d = row_elem(*x, e, b, cap);
    }
}

/// Explicit AVX2 row kernel: the same operation sequence as [`row_elem`],
/// four lanes per instruction. `vdivpd`/`vroundpd`(truncate)/`vmulpd`/
/// `vmaxpd`/`vminpd` are bit-exact IEEE-754 ops, so lanes match the scalar
/// chain; no FMA contraction is used anywhere (the scalar path does not
/// fuse either). NaNs cannot reach the min/max (e is sanitized, inputs are
/// finite), so the asymmetric NaN rules of `vmaxpd`/`vminpd` never apply.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_avx2(bytes: &[f64], out: &mut [f64], e: f64, b: f64, cap: f64) {
    use std::arch::x86_64::*;
    let vb = _mm256_set1_pd(b);
    let ve = _mm256_set1_pd(e);
    let vone = _mm256_set1_pd(1.0);
    let vmin = _mm256_set1_pd(MIN_DELAY_SECS);
    let vcap = _mm256_set1_pd(cap);
    let n = bytes.len();
    let mut i = 0;
    while i + RATE_LANES <= n {
        let x = _mm256_loadu_pd(bytes.as_ptr().add(i));
        let q = _mm256_div_pd(x, vb);
        let t = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(q);
        let m = _mm256_add_pd(t, vone);
        let d = _mm256_min_pd(_mm256_max_pd(_mm256_mul_pd(ve, m), vmin), vcap);
        _mm256_storeu_pd(out.as_mut_ptr().add(i), d);
        i += RATE_LANES;
    }
    while i < n {
        out[i] = row_elem(bytes[i], e, b, cap);
        i += 1;
    }
}

/// Explicit AVX2 striped combined-rate reduction over a delay row. The
/// stripe accumulators live in one 256-bit register (element `i` lands in
/// lane `i % 4` by construction of the chunked loads — the exact stripe
/// assignment of [`combined_rate`]), the tail accumulates into the same
/// logical stripes scalar-wise, and the register closes under
/// [`reduce_stripes`]'s fixed tree. `1/max(∞, MIN) = +0.0` reproduces the
/// scalar zero contribution of unreachable replicas exactly.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rate_avx2(delays: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let vone = _mm256_set1_pd(1.0);
    let vmin = _mm256_set1_pd(MIN_DELAY_SECS);
    let mut vacc = _mm256_setzero_pd();
    let n = delays.len();
    let mut i = 0;
    while i + RATE_LANES <= n {
        let a = _mm256_loadu_pd(delays.as_ptr().add(i));
        let c = _mm256_div_pd(vone, _mm256_max_pd(a, vmin));
        vacc = _mm256_add_pd(vacc, c);
        i += RATE_LANES;
    }
    let mut acc = [0.0f64; RATE_LANES];
    _mm256_storeu_pd(acc.as_mut_ptr(), vacc);
    let mut lane = 0;
    while i < n {
        acc[lane] += rate_contribution(delays[i]);
        lane = (lane + 1) % RATE_LANES;
        i += 1;
    }
    reduce_stripes(acc)
}

/// A snapshot of one node's buffer organised as per-destination delivery
/// queues (Fig. 1): packets sorted oldest-first (decreasing `T(i)`, the
/// order Step 2 of Protocol RAPID would deliver them), with prefix byte
/// sums so `b(i)` is O(log n) per query.
///
/// Destinations are interned onto dense slots (no hashing on the query
/// path), and queues share the buffer's [`QueueEntry`] layout, so
/// refilling from a buffer is a straight `memcpy` per queue. The snapshot
/// decouples scoring from the live buffer: RAPID scores a whole contact
/// against the queue state at contact start, even as transfers mutate the
/// buffers mid-contact.
#[derive(Debug, Clone, Default)]
pub struct QueueSnapshot {
    /// Destinations seen, interned in first-seen order.
    dsts: NodeInterner,
    /// Per interned destination: entries sorted by `(created_at, id)` with
    /// exact `bytes_ahead` prefix sums.
    queues: Vec<Vec<QueueEntry>>,
}

impl QueueSnapshot {
    /// Builds a snapshot from `(id, dst, size, created_at)` tuples.
    pub fn build(packets: impl IntoIterator<Item = (PacketId, NodeId, u64, Time)>) -> Self {
        let mut snap = Self::default();
        for (id, dst, size, created) in packets {
            let di = snap.dsts.intern(dst).index();
            if di >= snap.queues.len() {
                snap.queues.resize(di + 1, Vec::new());
            }
            snap.queues[di].push(QueueEntry {
                created_at: created,
                id,
                size_bytes: size,
                bytes_ahead: 0,
            });
        }
        for q in &mut snap.queues {
            // Oldest first = smallest created_at first; PacketId tiebreak
            // keeps the order deterministic.
            q.sort_unstable_by_key(|e| (e.created_at, e.id));
            let mut acc = 0u64;
            for e in q {
                e.bytes_ahead = acc;
                acc += e.size_bytes;
            }
        }
        snap
    }

    /// Copies a buffer's maintained delivery queues into a snapshot in
    /// O(n) — no re-sorting, no hashing; the buffer keeps its queues (and
    /// prefix sums) in exactly the form [`QueueSnapshot::build`] would
    /// produce.
    pub fn from_buffer(buffer: &NodeBuffer) -> Self {
        let mut snap = Self::default();
        snap.refill_from_buffer(buffer);
        snap
    }

    /// [`QueueSnapshot::from_buffer`] into an existing snapshot, reusing
    /// its allocations — the per-contact snapshot pair is refilled this
    /// way so steady-state contacts allocate nothing for queue state.
    pub fn refill_from_buffer(&mut self, buffer: &NodeBuffer) {
        self.dsts.clear();
        for q in &mut self.queues {
            q.clear();
        }
        for (dst, entries) in buffer.queues() {
            let di = self.dsts.intern(dst).index();
            if di >= self.queues.len() {
                self.queues.push(Vec::new());
            }
            self.queues[di].extend_from_slice(entries);
        }
    }

    /// The queue for `dst`, if the snapshot has one.
    pub fn queue(&self, dst: NodeId) -> Option<&[QueueEntry]> {
        let di = self.dsts.get(dst)?.index();
        Some(&self.queues[di])
    }

    /// Bytes queued ahead of an *existing* packet in the `dst` queue.
    ///
    /// # Panics
    /// If the packet is not in the snapshot.
    pub fn bytes_ahead(&self, dst: NodeId, id: PacketId, created_at: Time) -> u64 {
        let q = self
            .queue(dst)
            .unwrap_or_else(|| panic!("no queue for {dst}"));
        queue_slice::bytes_ahead(q, dst, id, created_at)
    }

    /// Bytes that would be queued ahead of a *hypothetical* packet with the
    /// given age, were it inserted (used to evaluate replicating onto this
    /// node: older packets with the same destination go first).
    pub fn bytes_ahead_if_inserted(&self, dst: NodeId, created_at: Time) -> u64 {
        queue_slice::bytes_ahead_if_inserted(self.queue(dst).unwrap_or(&[]), created_at)
    }

    /// Total queued bytes for `dst`.
    pub fn total_bytes(&self, dst: NodeId) -> u64 {
        queue_slice::total_bytes(self.queue(dst).unwrap_or(&[]))
    }

    /// Iterates the non-empty destination queues in the same
    /// `(dst, entries)` shape as [`NodeBuffer::queues`]. Walking a queue
    /// makes [`QueueSnapshot::bytes_ahead`] an O(1) slot read.
    pub fn queues(&self) -> impl Iterator<Item = (NodeId, &[QueueEntry])> + '_ {
        self.queues.iter().enumerate().filter_map(move |(i, q)| {
            if q.is_empty() {
                None
            } else {
                Some((self.dsts.id(dtn_sim::NodeIdx(i as u32)), q.as_slice()))
            }
        })
    }

    /// A monotone cursor over the `dst` queue for repeated
    /// [`QueueSnapshot::bytes_ahead_if_inserted`] queries with
    /// non-decreasing `created_at` — each query is then O(1) amortized
    /// instead of a binary search.
    pub fn insert_cursor(&self, dst: NodeId) -> InsertCursor<'_> {
        InsertCursor::over(self.queue(dst).unwrap_or(&[]))
    }
}

/// See [`QueueSnapshot::insert_cursor`]; works over any delivery-order
/// queue slice (snapshot or live buffer).
#[derive(Debug)]
pub struct InsertCursor<'a> {
    q: &'a [QueueEntry],
    pos: usize,
}

impl<'a> InsertCursor<'a> {
    /// A cursor over a `(created_at, id)`-ordered queue slice.
    pub fn over(q: &'a [QueueEntry]) -> Self {
        Self { q, pos: 0 }
    }

    /// Bytes ahead of a hypothetical insert at `created_at`. Equals
    /// [`QueueSnapshot::bytes_ahead_if_inserted`] provided `created_at`
    /// never decreases across calls on one cursor: the monotone advance
    /// lands on the same partition point the binary search would find.
    pub fn bytes_ahead_if_inserted(&mut self, created_at: Time) -> u64 {
        while self.pos < self.q.len() && self.q[self.pos].created_at < created_at {
            self.pos += 1;
        }
        queue_slice::ahead_of_slot(self.q, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn meetings_needed_head_of_queue_is_one() {
        close(meetings_needed(0, 1000.0), 1.0, 1e-12);
        close(meetings_needed(999, 1000.0), 1.0, 1e-12);
        close(meetings_needed(1000, 1000.0), 2.0, 1e-12);
        close(meetings_needed(2500, 1000.0), 3.0, 1e-12);
    }

    #[test]
    fn eq8_uniform_example() {
        // §4.1.1: without bandwidth restrictions, k replicas each needing
        // one meeting with rate λ give A(i) = 1/(kλ).
        let lambda = 0.02; // mean meeting time 50 s
        let k = 4;
        let delays = vec![1.0 / lambda; k];
        close(
            expected_remaining_delay(delays.clone()),
            1.0 / (k as f64 * lambda),
            1e-9,
        );
        // Eq. 7 at t = mean: P = 1 − e^{−kλt}.
        let t = 10.0;
        close(
            prob_delivered_within(delays, t),
            1.0 - (-(k as f64) * lambda * t).exp(),
            1e-12,
        );
    }

    #[test]
    fn eq9_non_uniform_rates() {
        // A(i) = (λ1/n1 + λ2/n2)^-1 with a_j = n_j/λ_j.
        let a1 = replica_delay(100.0, 2.0); // 200 s
        let a2 = replica_delay(50.0, 1.0); // 50 s
        close(expected_remaining_delay([a1, a2]), 40.0, 1e-9); // (1/200+1/50)^-1
    }

    #[test]
    fn unreachable_replicas_contribute_nothing() {
        let inf = replica_delay(f64::INFINITY, 1.0);
        assert!(inf.is_infinite());
        close(expected_remaining_delay([inf, 100.0]), 100.0, 1e-9);
        assert!(expected_remaining_delay([inf]).is_infinite());
        assert_eq!(prob_delivered_within([inf], 10.0), 0.0);
    }

    #[test]
    fn more_replicas_never_hurt() {
        let base = expected_remaining_delay([100.0, 200.0]);
        let more = expected_remaining_delay([100.0, 200.0, 500.0]);
        assert!(more < base);
        let p_base = prob_delivered_within([100.0, 200.0], 30.0);
        let p_more = prob_delivered_within([100.0, 200.0, 500.0], 30.0);
        assert!(p_more > p_base);
    }

    #[test]
    fn prob_edge_cases() {
        assert_eq!(prob_delivered_within([100.0], 0.0), 0.0);
        assert_eq!(prob_delivered_within([100.0], -5.0), 0.0);
        assert_eq!(prob_delivered_within(std::iter::empty(), 10.0), 0.0);
    }

    #[test]
    fn kernel_parse_is_strict() {
        assert_eq!(Kernel::parse(None).unwrap(), Kernel::detect());
        assert_eq!(Kernel::parse(Some("auto")).unwrap(), Kernel::detect());
        assert_eq!(Kernel::parse(Some("scalar")).unwrap(), Kernel::Scalar);
        assert!(Kernel::parse(Some("sse2")).is_err());
        assert!(Kernel::parse(Some("")).is_err());
        match Kernel::parse(Some("avx2")) {
            Ok(k) => assert_eq!(k, Kernel::Avx2),
            Err(e) => assert!(e.contains("AVX2"), "unexpected error: {e}"),
        }
    }

    /// Every kernel available on this machine, scalar always first.
    fn available_kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar];
        if Kernel::detect() == Kernel::Avx2 {
            ks.push(Kernel::Avx2);
        }
        ks
    }

    #[test]
    fn rate_batch_rows_match_scalar_chain_bitwise() {
        let cap = 1.0e9;
        let queues: &[&[u64]] = &[
            &[],
            &[0],
            &[0, 999, 1000, 2500, 7777],
            &[0, 1, 2, 3, 4, 5, 6, 7, 8], // exercises tail lanes
            &[u64::MAX, 1 << 53, (1 << 53) + 1, 12_345_678_901_234],
        ];
        let meetings = [50.0, 0.0, f64::INFINITY, f64::NAN, 1.0e-12, 3.7e8];
        let opps = [1000.0, 0.0, 1.0, 102_400.0, f64::INFINITY];
        for &kernel in &available_kernels() {
            let mut batch = RateBatch::new(kernel);
            for &queue in queues {
                for &e in &meetings {
                    for &b in &opps {
                        batch.clear();
                        for &bytes in queue {
                            batch.push(bytes);
                        }
                        let rows = batch.compute(e, b, cap).to_vec();
                        let expect: Vec<f64> = queue
                            .iter()
                            .map(|&bytes| replica_delay(e, meetings_needed(bytes, b)).min(cap))
                            .collect();
                        assert_eq!(rows.len(), expect.len());
                        for (got, want) in rows.iter().zip(&expect) {
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "{kernel:?} e={e} b={b}: {got} != {want}"
                            );
                        }
                        assert_eq!(
                            batch.combined_rate().to_bits(),
                            combined_rate(expect.iter().copied()).to_bits(),
                            "{kernel:?} combined_rate diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn striped_reduction_is_lane_order_not_list_order() {
        // The stripe assignment is positional, so the reduction is a fixed
        // function of the sequence — permuting the list may change bits,
        // but evaluating the same sequence twice never does.
        let delays = [3.0, 7.0, 11.0, 13.0, 17.0, 19.0, 23.0];
        let a = combined_rate(delays.iter().copied());
        let b = combined_rate(delays.iter().copied());
        assert_eq!(a.to_bits(), b.to_bits());
        close(a, delays.iter().map(|d| 1.0 / d).sum(), 1e-12);
    }

    fn q(entries: &[(u32, u32, u64, u64)]) -> QueueSnapshot {
        // (id, dst, size, created_secs)
        QueueSnapshot::build(
            entries
                .iter()
                .map(|&(id, dst, size, t)| (PacketId(id), NodeId(dst), size, Time::from_secs(t))),
        )
    }

    #[test]
    fn queue_positions_oldest_first() {
        let s = q(&[
            (0, 9, 1000, 50), // newest
            (1, 9, 1000, 10), // oldest → head
            (2, 9, 1000, 30),
            (3, 8, 500, 5), // other destination
        ]);
        let dst = NodeId(9);
        assert_eq!(s.bytes_ahead(dst, PacketId(1), Time::from_secs(10)), 0);
        assert_eq!(s.bytes_ahead(dst, PacketId(2), Time::from_secs(30)), 1000);
        assert_eq!(s.bytes_ahead(dst, PacketId(0), Time::from_secs(50)), 2000);
        assert_eq!(s.bytes_ahead(NodeId(8), PacketId(3), Time::from_secs(5)), 0);
        assert_eq!(s.total_bytes(dst), 3000);
        assert_eq!(s.total_bytes(NodeId(7)), 0);
    }

    #[test]
    fn hypothetical_insertion_position() {
        let s = q(&[(0, 9, 1000, 10), (1, 9, 1000, 30)]);
        let dst = NodeId(9);
        // Older than everything → head.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(5)), 0);
        // Between the two.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(20)), 1000);
        // Newest → tail.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(99)), 2000);
        // Unknown destination → empty queue.
        assert_eq!(s.bytes_ahead_if_inserted(NodeId(1), Time::from_secs(1)), 0);
    }

    #[test]
    fn equal_timestamps_break_ties_by_id() {
        let s = q(&[(5, 9, 100, 10), (2, 9, 100, 10)]);
        let dst = NodeId(9);
        assert_eq!(s.bytes_ahead(dst, PacketId(2), Time::from_secs(10)), 0);
        assert_eq!(s.bytes_ahead(dst, PacketId(5), Time::from_secs(10)), 100);
    }

    #[test]
    fn from_buffer_matches_build() {
        use dtn_sim::Packet;
        let entries: &[(u32, u32, u64, u64)] = &[
            (0, 9, 1000, 50),
            (1, 9, 500, 10),
            (2, 8, 200, 30),
            (3, 9, 100, 10), // same created_at as p1, id tie-break
        ];
        let mut buf = NodeBuffer::new(u64::MAX);
        for &(id, dst, size, t) in entries {
            buf.insert(
                &Packet {
                    id: PacketId(id),
                    src: NodeId(0),
                    dst: NodeId(dst),
                    size_bytes: size,
                    created_at: Time::from_secs(t),
                },
                Time::ZERO,
            );
        }
        let via_buffer = QueueSnapshot::from_buffer(&buf);
        let via_build = q(entries);
        for &(id, dst, _, t) in entries {
            assert_eq!(
                via_buffer.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(t)),
                via_build.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(t)),
            );
        }
        for dst in [8u32, 9, 7] {
            assert_eq!(
                via_buffer.total_bytes(NodeId(dst)),
                via_build.total_bytes(NodeId(dst))
            );
            for t in [0u64, 20, 40, 99] {
                assert_eq!(
                    via_buffer.bytes_ahead_if_inserted(NodeId(dst), Time::from_secs(t)),
                    via_build.bytes_ahead_if_inserted(NodeId(dst), Time::from_secs(t)),
                );
            }
        }
    }
}
