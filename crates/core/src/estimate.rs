//! Estimate Delay — Algorithm 2 of the paper (§4.1, Eqs. 4–9).
//!
//! A node estimating the remaining delivery delay `a(i)` of packet `i`
//! (destination `Z`) reasons per replica:
//!
//! 1. Each holder `n_j` sorts its packets for `Z` in delivery order; let
//!    `b_j(i)` be the bytes queued ahead of `i` (Fig. 1).
//! 2. With `B_j` the expected transfer opportunity between `n_j` and `Z`,
//!    delivering `i` directly takes `n_j(i)` meetings — a gamma-distributed
//!    wait which the paper approximates by an exponential with the same
//!    mean `E(M_{n_j Z}) · n_j(i)` (§4.1.1, because the minimum of gammas
//!    has no closed form).
//! 3. Assuming independence across replicas (Assumption 2), the remaining
//!    delay is the minimum of the per-replica exponentials:
//!    `P(a(i) < t) = 1 − exp(−Σ_j t/a_j)` (Eq. 7) and
//!    `A(i) = (Σ_j 1/a_j)^{-1}` (Eqs. 8–9).
//!
//! One deliberate deviation, noted in DESIGN.md: the paper writes
//! `⌈b_j(i)/B_j⌉` meetings, which is 0 for the head-of-queue packet; we use
//! `⌊b_j(i)/B_j⌋ + 1` so the head packet needs exactly one meeting.

use dtn_sim::buffer::queue_slice;
use dtn_sim::{NodeBuffer, NodeId, NodeInterner, PacketId, QueueEntry, Time};

/// Smallest representable per-replica delay (seconds); guards divisions.
const MIN_DELAY_SECS: f64 = 1e-6;

/// Number of meetings with the destination needed before `i`'s turn:
/// `⌊bytes_ahead / B⌋ + 1`.
pub fn meetings_needed(bytes_ahead: u64, avg_opportunity_bytes: f64) -> f64 {
    let b = avg_opportunity_bytes.max(1.0);
    let q = bytes_ahead as f64 / b;
    // `q` is non-negative and below 2^64 (numerator ≤ u64::MAX, b ≥ 1), so
    // truncation through u64 equals `q.floor()` — without the libm floor
    // call this hot path otherwise pays on baseline x86-64.
    (q as u64) as f64 + 1.0
}

/// Per-replica direct-delivery delay `a_j(i) = E(M_{jZ}) · n_j(i)` seconds.
/// Infinite expected meeting time (unreachable within `h` hops, §4.1.2)
/// yields an infinite delay — the replica contributes nothing.
pub fn replica_delay(expected_meeting_secs: f64, meetings: f64) -> f64 {
    if !expected_meeting_secs.is_finite() {
        return f64::INFINITY;
    }
    (expected_meeting_secs * meetings).max(MIN_DELAY_SECS)
}

/// Combined replica rate `Σ_j 1/a_j` over the per-replica delays — the
/// one expensive quantity behind Eqs. 7–9. Every utility RAPID uses is a
/// cheap closed form over this rate ([`delay_from_rate`],
/// [`prob_within_from_rate`]), which is what makes the rate the natural
/// unit to cache incrementally (see `cache.rs`). Infinite delays
/// (unreachable replicas) contribute nothing.
pub fn combined_rate(replica_delays: impl IntoIterator<Item = f64>) -> f64 {
    replica_delays.into_iter().map(rate_contribution).sum()
}

/// One replica's additive contribution to the combined rate: `1/a` for a
/// finite delay, 0 for an unreachable replica. Summing contributions
/// left-to-right is bit-identical to [`combined_rate`] (all partial sums
/// are non-negative, so the zero terms are exact no-ops) — selection paths
/// use this to extend a rate by one replica without re-summing.
pub fn rate_contribution(a: f64) -> f64 {
    if a.is_finite() {
        1.0 / a.max(MIN_DELAY_SECS)
    } else {
        0.0
    }
}

/// `A(i)` from a combined rate (Eq. 8/9): the mean of the minimum of
/// independent exponentials. Zero rate (no viable replica) is infinite.
pub fn delay_from_rate(rate: f64) -> f64 {
    if rate > 0.0 {
        1.0 / rate
    } else {
        f64::INFINITY
    }
}

/// `P(a(i) < t)` from a combined rate (Eq. 7).
pub fn prob_within_from_rate(rate: f64, t_secs: f64) -> f64 {
    if t_secs <= 0.0 || rate == 0.0 {
        return 0.0;
    }
    1.0 - (-rate * t_secs).exp()
}

/// Combined expected remaining delay `A(i)` over replica delays (Eq. 8/9):
/// the mean of the minimum of independent exponentials with those means.
pub fn expected_remaining_delay(replica_delays: impl IntoIterator<Item = f64>) -> f64 {
    delay_from_rate(combined_rate(replica_delays))
}

/// `P(a(i) < t)` for the combined replicas (Eq. 7).
pub fn prob_delivered_within(replica_delays: impl IntoIterator<Item = f64>, t_secs: f64) -> f64 {
    prob_within_from_rate(combined_rate(replica_delays), t_secs)
}

/// A snapshot of one node's buffer organised as per-destination delivery
/// queues (Fig. 1): packets sorted oldest-first (decreasing `T(i)`, the
/// order Step 2 of Protocol RAPID would deliver them), with prefix byte
/// sums so `b(i)` is O(log n) per query.
///
/// Destinations are interned onto dense slots (no hashing on the query
/// path), and queues share the buffer's [`QueueEntry`] layout, so
/// refilling from a buffer is a straight `memcpy` per queue. The snapshot
/// decouples scoring from the live buffer: RAPID scores a whole contact
/// against the queue state at contact start, even as transfers mutate the
/// buffers mid-contact.
#[derive(Debug, Clone, Default)]
pub struct QueueSnapshot {
    /// Destinations seen, interned in first-seen order.
    dsts: NodeInterner,
    /// Per interned destination: entries sorted by `(created_at, id)` with
    /// exact `bytes_ahead` prefix sums.
    queues: Vec<Vec<QueueEntry>>,
}

impl QueueSnapshot {
    /// Builds a snapshot from `(id, dst, size, created_at)` tuples.
    pub fn build(packets: impl IntoIterator<Item = (PacketId, NodeId, u64, Time)>) -> Self {
        let mut snap = Self::default();
        for (id, dst, size, created) in packets {
            let di = snap.dsts.intern(dst).index();
            if di >= snap.queues.len() {
                snap.queues.resize(di + 1, Vec::new());
            }
            snap.queues[di].push(QueueEntry {
                created_at: created,
                id,
                size_bytes: size,
                bytes_ahead: 0,
            });
        }
        for q in &mut snap.queues {
            // Oldest first = smallest created_at first; PacketId tiebreak
            // keeps the order deterministic.
            q.sort_unstable_by_key(|e| (e.created_at, e.id));
            let mut acc = 0u64;
            for e in q {
                e.bytes_ahead = acc;
                acc += e.size_bytes;
            }
        }
        snap
    }

    /// Copies a buffer's maintained delivery queues into a snapshot in
    /// O(n) — no re-sorting, no hashing; the buffer keeps its queues (and
    /// prefix sums) in exactly the form [`QueueSnapshot::build`] would
    /// produce.
    pub fn from_buffer(buffer: &NodeBuffer) -> Self {
        let mut snap = Self::default();
        snap.refill_from_buffer(buffer);
        snap
    }

    /// [`QueueSnapshot::from_buffer`] into an existing snapshot, reusing
    /// its allocations — the per-contact snapshot pair is refilled this
    /// way so steady-state contacts allocate nothing for queue state.
    pub fn refill_from_buffer(&mut self, buffer: &NodeBuffer) {
        self.dsts.clear();
        for q in &mut self.queues {
            q.clear();
        }
        for (dst, entries) in buffer.queues() {
            let di = self.dsts.intern(dst).index();
            if di >= self.queues.len() {
                self.queues.push(Vec::new());
            }
            self.queues[di].extend_from_slice(entries);
        }
    }

    /// The queue for `dst`, if the snapshot has one.
    pub fn queue(&self, dst: NodeId) -> Option<&[QueueEntry]> {
        let di = self.dsts.get(dst)?.index();
        Some(&self.queues[di])
    }

    /// Bytes queued ahead of an *existing* packet in the `dst` queue.
    ///
    /// # Panics
    /// If the packet is not in the snapshot.
    pub fn bytes_ahead(&self, dst: NodeId, id: PacketId, created_at: Time) -> u64 {
        let q = self
            .queue(dst)
            .unwrap_or_else(|| panic!("no queue for {dst}"));
        queue_slice::bytes_ahead(q, dst, id, created_at)
    }

    /// Bytes that would be queued ahead of a *hypothetical* packet with the
    /// given age, were it inserted (used to evaluate replicating onto this
    /// node: older packets with the same destination go first).
    pub fn bytes_ahead_if_inserted(&self, dst: NodeId, created_at: Time) -> u64 {
        queue_slice::bytes_ahead_if_inserted(self.queue(dst).unwrap_or(&[]), created_at)
    }

    /// Total queued bytes for `dst`.
    pub fn total_bytes(&self, dst: NodeId) -> u64 {
        queue_slice::total_bytes(self.queue(dst).unwrap_or(&[]))
    }

    /// Iterates the non-empty destination queues in the same
    /// `(dst, entries)` shape as [`NodeBuffer::queues`]. Walking a queue
    /// makes [`QueueSnapshot::bytes_ahead`] an O(1) slot read.
    pub fn queues(&self) -> impl Iterator<Item = (NodeId, &[QueueEntry])> + '_ {
        self.queues.iter().enumerate().filter_map(move |(i, q)| {
            if q.is_empty() {
                None
            } else {
                Some((self.dsts.id(dtn_sim::NodeIdx(i as u32)), q.as_slice()))
            }
        })
    }

    /// A monotone cursor over the `dst` queue for repeated
    /// [`QueueSnapshot::bytes_ahead_if_inserted`] queries with
    /// non-decreasing `created_at` — each query is then O(1) amortized
    /// instead of a binary search.
    pub fn insert_cursor(&self, dst: NodeId) -> InsertCursor<'_> {
        InsertCursor::over(self.queue(dst).unwrap_or(&[]))
    }
}

/// See [`QueueSnapshot::insert_cursor`]; works over any delivery-order
/// queue slice (snapshot or live buffer).
#[derive(Debug)]
pub struct InsertCursor<'a> {
    q: &'a [QueueEntry],
    pos: usize,
}

impl<'a> InsertCursor<'a> {
    /// A cursor over a `(created_at, id)`-ordered queue slice.
    pub fn over(q: &'a [QueueEntry]) -> Self {
        Self { q, pos: 0 }
    }

    /// Bytes ahead of a hypothetical insert at `created_at`. Equals
    /// [`QueueSnapshot::bytes_ahead_if_inserted`] provided `created_at`
    /// never decreases across calls on one cursor: the monotone advance
    /// lands on the same partition point the binary search would find.
    pub fn bytes_ahead_if_inserted(&mut self, created_at: Time) -> u64 {
        while self.pos < self.q.len() && self.q[self.pos].created_at < created_at {
            self.pos += 1;
        }
        queue_slice::ahead_of_slot(self.q, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn meetings_needed_head_of_queue_is_one() {
        close(meetings_needed(0, 1000.0), 1.0, 1e-12);
        close(meetings_needed(999, 1000.0), 1.0, 1e-12);
        close(meetings_needed(1000, 1000.0), 2.0, 1e-12);
        close(meetings_needed(2500, 1000.0), 3.0, 1e-12);
    }

    #[test]
    fn eq8_uniform_example() {
        // §4.1.1: without bandwidth restrictions, k replicas each needing
        // one meeting with rate λ give A(i) = 1/(kλ).
        let lambda = 0.02; // mean meeting time 50 s
        let k = 4;
        let delays = vec![1.0 / lambda; k];
        close(
            expected_remaining_delay(delays.clone()),
            1.0 / (k as f64 * lambda),
            1e-9,
        );
        // Eq. 7 at t = mean: P = 1 − e^{−kλt}.
        let t = 10.0;
        close(
            prob_delivered_within(delays, t),
            1.0 - (-(k as f64) * lambda * t).exp(),
            1e-12,
        );
    }

    #[test]
    fn eq9_non_uniform_rates() {
        // A(i) = (λ1/n1 + λ2/n2)^-1 with a_j = n_j/λ_j.
        let a1 = replica_delay(100.0, 2.0); // 200 s
        let a2 = replica_delay(50.0, 1.0); // 50 s
        close(expected_remaining_delay([a1, a2]), 40.0, 1e-9); // (1/200+1/50)^-1
    }

    #[test]
    fn unreachable_replicas_contribute_nothing() {
        let inf = replica_delay(f64::INFINITY, 1.0);
        assert!(inf.is_infinite());
        close(expected_remaining_delay([inf, 100.0]), 100.0, 1e-9);
        assert!(expected_remaining_delay([inf]).is_infinite());
        assert_eq!(prob_delivered_within([inf], 10.0), 0.0);
    }

    #[test]
    fn more_replicas_never_hurt() {
        let base = expected_remaining_delay([100.0, 200.0]);
        let more = expected_remaining_delay([100.0, 200.0, 500.0]);
        assert!(more < base);
        let p_base = prob_delivered_within([100.0, 200.0], 30.0);
        let p_more = prob_delivered_within([100.0, 200.0, 500.0], 30.0);
        assert!(p_more > p_base);
    }

    #[test]
    fn prob_edge_cases() {
        assert_eq!(prob_delivered_within([100.0], 0.0), 0.0);
        assert_eq!(prob_delivered_within([100.0], -5.0), 0.0);
        assert_eq!(prob_delivered_within(std::iter::empty(), 10.0), 0.0);
    }

    fn q(entries: &[(u32, u32, u64, u64)]) -> QueueSnapshot {
        // (id, dst, size, created_secs)
        QueueSnapshot::build(
            entries
                .iter()
                .map(|&(id, dst, size, t)| (PacketId(id), NodeId(dst), size, Time::from_secs(t))),
        )
    }

    #[test]
    fn queue_positions_oldest_first() {
        let s = q(&[
            (0, 9, 1000, 50), // newest
            (1, 9, 1000, 10), // oldest → head
            (2, 9, 1000, 30),
            (3, 8, 500, 5), // other destination
        ]);
        let dst = NodeId(9);
        assert_eq!(s.bytes_ahead(dst, PacketId(1), Time::from_secs(10)), 0);
        assert_eq!(s.bytes_ahead(dst, PacketId(2), Time::from_secs(30)), 1000);
        assert_eq!(s.bytes_ahead(dst, PacketId(0), Time::from_secs(50)), 2000);
        assert_eq!(s.bytes_ahead(NodeId(8), PacketId(3), Time::from_secs(5)), 0);
        assert_eq!(s.total_bytes(dst), 3000);
        assert_eq!(s.total_bytes(NodeId(7)), 0);
    }

    #[test]
    fn hypothetical_insertion_position() {
        let s = q(&[(0, 9, 1000, 10), (1, 9, 1000, 30)]);
        let dst = NodeId(9);
        // Older than everything → head.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(5)), 0);
        // Between the two.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(20)), 1000);
        // Newest → tail.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(99)), 2000);
        // Unknown destination → empty queue.
        assert_eq!(s.bytes_ahead_if_inserted(NodeId(1), Time::from_secs(1)), 0);
    }

    #[test]
    fn equal_timestamps_break_ties_by_id() {
        let s = q(&[(5, 9, 100, 10), (2, 9, 100, 10)]);
        let dst = NodeId(9);
        assert_eq!(s.bytes_ahead(dst, PacketId(2), Time::from_secs(10)), 0);
        assert_eq!(s.bytes_ahead(dst, PacketId(5), Time::from_secs(10)), 100);
    }

    #[test]
    fn from_buffer_matches_build() {
        use dtn_sim::Packet;
        let entries: &[(u32, u32, u64, u64)] = &[
            (0, 9, 1000, 50),
            (1, 9, 500, 10),
            (2, 8, 200, 30),
            (3, 9, 100, 10), // same created_at as p1, id tie-break
        ];
        let mut buf = NodeBuffer::new(u64::MAX);
        for &(id, dst, size, t) in entries {
            buf.insert(
                &Packet {
                    id: PacketId(id),
                    src: NodeId(0),
                    dst: NodeId(dst),
                    size_bytes: size,
                    created_at: Time::from_secs(t),
                },
                Time::ZERO,
            );
        }
        let via_buffer = QueueSnapshot::from_buffer(&buf);
        let via_build = q(entries);
        for &(id, dst, _, t) in entries {
            assert_eq!(
                via_buffer.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(t)),
                via_build.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(t)),
            );
        }
        for dst in [8u32, 9, 7] {
            assert_eq!(
                via_buffer.total_bytes(NodeId(dst)),
                via_build.total_bytes(NodeId(dst))
            );
            for t in [0u64, 20, 40, 99] {
                assert_eq!(
                    via_buffer.bytes_ahead_if_inserted(NodeId(dst), Time::from_secs(t)),
                    via_build.bytes_ahead_if_inserted(NodeId(dst), Time::from_secs(t)),
                );
            }
        }
    }
}
