//! Estimate Delay — Algorithm 2 of the paper (§4.1, Eqs. 4–9).
//!
//! A node estimating the remaining delivery delay `a(i)` of packet `i`
//! (destination `Z`) reasons per replica:
//!
//! 1. Each holder `n_j` sorts its packets for `Z` in delivery order; let
//!    `b_j(i)` be the bytes queued ahead of `i` (Fig. 1).
//! 2. With `B_j` the expected transfer opportunity between `n_j` and `Z`,
//!    delivering `i` directly takes `n_j(i)` meetings — a gamma-distributed
//!    wait which the paper approximates by an exponential with the same
//!    mean `E(M_{n_j Z}) · n_j(i)` (§4.1.1, because the minimum of gammas
//!    has no closed form).
//! 3. Assuming independence across replicas (Assumption 2), the remaining
//!    delay is the minimum of the per-replica exponentials:
//!    `P(a(i) < t) = 1 − exp(−Σ_j t/a_j)` (Eq. 7) and
//!    `A(i) = (Σ_j 1/a_j)^{-1}` (Eqs. 8–9).
//!
//! One deliberate deviation, noted in DESIGN.md: the paper writes
//! `⌈b_j(i)/B_j⌉` meetings, which is 0 for the head-of-queue packet; we use
//! `⌊b_j(i)/B_j⌋ + 1` so the head packet needs exactly one meeting.

use dtn_sim::{NodeId, PacketId, Time};
use std::collections::HashMap;

/// Smallest representable per-replica delay (seconds); guards divisions.
const MIN_DELAY_SECS: f64 = 1e-6;

/// Number of meetings with the destination needed before `i`'s turn:
/// `⌊bytes_ahead / B⌋ + 1`.
pub fn meetings_needed(bytes_ahead: u64, avg_opportunity_bytes: f64) -> f64 {
    let b = avg_opportunity_bytes.max(1.0);
    (bytes_ahead as f64 / b).floor() + 1.0
}

/// Per-replica direct-delivery delay `a_j(i) = E(M_{jZ}) · n_j(i)` seconds.
/// Infinite expected meeting time (unreachable within `h` hops, §4.1.2)
/// yields an infinite delay — the replica contributes nothing.
pub fn replica_delay(expected_meeting_secs: f64, meetings: f64) -> f64 {
    if !expected_meeting_secs.is_finite() {
        return f64::INFINITY;
    }
    (expected_meeting_secs * meetings).max(MIN_DELAY_SECS)
}

/// Combined expected remaining delay `A(i)` over replica delays (Eq. 8/9):
/// the mean of the minimum of independent exponentials with those means.
pub fn expected_remaining_delay(replica_delays: impl IntoIterator<Item = f64>) -> f64 {
    let rate = total_rate(replica_delays);
    if rate > 0.0 {
        1.0 / rate
    } else {
        f64::INFINITY
    }
}

/// `P(a(i) < t)` for the combined replicas (Eq. 7).
pub fn prob_delivered_within(replica_delays: impl IntoIterator<Item = f64>, t_secs: f64) -> f64 {
    if t_secs <= 0.0 {
        return 0.0;
    }
    let rate = total_rate(replica_delays);
    if rate == 0.0 {
        return 0.0;
    }
    1.0 - (-rate * t_secs).exp()
}

fn total_rate(replica_delays: impl IntoIterator<Item = f64>) -> f64 {
    replica_delays
        .into_iter()
        .filter(|a| a.is_finite())
        .map(|a| 1.0 / a.max(MIN_DELAY_SECS))
        .sum()
}

/// A snapshot of one node's buffer organised as per-destination delivery
/// queues (Fig. 1): packets sorted oldest-first (decreasing `T(i)`, the
/// order Step 2 of Protocol RAPID would deliver them), with prefix byte
/// sums so `b(i)` is O(log n) per query.
#[derive(Debug, Clone, Default)]
pub struct QueueSnapshot {
    /// Per destination: (created_at, size, id) sorted by (created_at, id).
    queues: HashMap<u32, Vec<(Time, u64, PacketId)>>,
    /// Prefix sums aligned with `queues`: bytes strictly ahead of slot k.
    prefix: HashMap<u32, Vec<u64>>,
}

impl QueueSnapshot {
    /// Builds a snapshot from `(id, dst, size, created_at)` tuples.
    pub fn build(packets: impl IntoIterator<Item = (PacketId, NodeId, u64, Time)>) -> Self {
        let mut queues: HashMap<u32, Vec<(Time, u64, PacketId)>> = HashMap::new();
        for (id, dst, size, created) in packets {
            queues.entry(dst.0).or_default().push((created, size, id));
        }
        let mut prefix = HashMap::with_capacity(queues.len());
        for (&dst, q) in queues.iter_mut() {
            // Oldest first = smallest created_at first; PacketId tiebreak
            // keeps the order deterministic.
            q.sort_unstable_by_key(|&(t, _, id)| (t, id));
            let mut acc = 0u64;
            let sums = q
                .iter()
                .map(|&(_, size, _)| {
                    let ahead = acc;
                    acc += size;
                    ahead
                })
                .collect();
            prefix.insert(dst, sums);
        }
        Self { queues, prefix }
    }

    /// Bytes queued ahead of an *existing* packet in the `dst` queue.
    ///
    /// # Panics
    /// If the packet is not in the snapshot.
    pub fn bytes_ahead(&self, dst: NodeId, id: PacketId, created_at: Time) -> u64 {
        let q = self
            .queues
            .get(&dst.0)
            .unwrap_or_else(|| panic!("no queue for {dst}"));
        let pos = q
            .binary_search_by_key(&(created_at, id), |&(t, _, i)| (t, i))
            .unwrap_or_else(|_| panic!("{id} not in queue for {dst}"));
        self.prefix[&dst.0][pos]
    }

    /// Bytes that would be queued ahead of a *hypothetical* packet with the
    /// given age, were it inserted (used to evaluate replicating onto this
    /// node: older packets with the same destination go first).
    pub fn bytes_ahead_if_inserted(&self, dst: NodeId, created_at: Time) -> u64 {
        let Some(q) = self.queues.get(&dst.0) else {
            return 0;
        };
        // All packets strictly older (created earlier) precede the insert.
        let pos = q.partition_point(|&(t, _, _)| t < created_at);
        if pos == 0 {
            0
        } else {
            let (_, size, _) = q[pos - 1];
            self.prefix[&dst.0][pos - 1] + size
        }
    }

    /// Total queued bytes for `dst`.
    pub fn total_bytes(&self, dst: NodeId) -> u64 {
        match (self.queues.get(&dst.0), self.prefix.get(&dst.0)) {
            (Some(q), Some(p)) if !q.is_empty() => p[q.len() - 1] + q[q.len() - 1].1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn meetings_needed_head_of_queue_is_one() {
        close(meetings_needed(0, 1000.0), 1.0, 1e-12);
        close(meetings_needed(999, 1000.0), 1.0, 1e-12);
        close(meetings_needed(1000, 1000.0), 2.0, 1e-12);
        close(meetings_needed(2500, 1000.0), 3.0, 1e-12);
    }

    #[test]
    fn eq8_uniform_example() {
        // §4.1.1: without bandwidth restrictions, k replicas each needing
        // one meeting with rate λ give A(i) = 1/(kλ).
        let lambda = 0.02; // mean meeting time 50 s
        let k = 4;
        let delays = vec![1.0 / lambda; k];
        close(
            expected_remaining_delay(delays.clone()),
            1.0 / (k as f64 * lambda),
            1e-9,
        );
        // Eq. 7 at t = mean: P = 1 − e^{−kλt}.
        let t = 10.0;
        close(
            prob_delivered_within(delays, t),
            1.0 - (-(k as f64) * lambda * t).exp(),
            1e-12,
        );
    }

    #[test]
    fn eq9_non_uniform_rates() {
        // A(i) = (λ1/n1 + λ2/n2)^-1 with a_j = n_j/λ_j.
        let a1 = replica_delay(100.0, 2.0); // 200 s
        let a2 = replica_delay(50.0, 1.0); // 50 s
        close(expected_remaining_delay([a1, a2]), 40.0, 1e-9); // (1/200+1/50)^-1
    }

    #[test]
    fn unreachable_replicas_contribute_nothing() {
        let inf = replica_delay(f64::INFINITY, 1.0);
        assert!(inf.is_infinite());
        close(expected_remaining_delay([inf, 100.0]), 100.0, 1e-9);
        assert!(expected_remaining_delay([inf]).is_infinite());
        assert_eq!(prob_delivered_within([inf], 10.0), 0.0);
    }

    #[test]
    fn more_replicas_never_hurt() {
        let base = expected_remaining_delay([100.0, 200.0]);
        let more = expected_remaining_delay([100.0, 200.0, 500.0]);
        assert!(more < base);
        let p_base = prob_delivered_within([100.0, 200.0], 30.0);
        let p_more = prob_delivered_within([100.0, 200.0, 500.0], 30.0);
        assert!(p_more > p_base);
    }

    #[test]
    fn prob_edge_cases() {
        assert_eq!(prob_delivered_within([100.0], 0.0), 0.0);
        assert_eq!(prob_delivered_within([100.0], -5.0), 0.0);
        assert_eq!(prob_delivered_within(std::iter::empty(), 10.0), 0.0);
    }

    fn q(entries: &[(u32, u32, u64, u64)]) -> QueueSnapshot {
        // (id, dst, size, created_secs)
        QueueSnapshot::build(
            entries
                .iter()
                .map(|&(id, dst, size, t)| (PacketId(id), NodeId(dst), size, Time::from_secs(t))),
        )
    }

    #[test]
    fn queue_positions_oldest_first() {
        let s = q(&[
            (0, 9, 1000, 50), // newest
            (1, 9, 1000, 10), // oldest → head
            (2, 9, 1000, 30),
            (3, 8, 500, 5), // other destination
        ]);
        let dst = NodeId(9);
        assert_eq!(s.bytes_ahead(dst, PacketId(1), Time::from_secs(10)), 0);
        assert_eq!(s.bytes_ahead(dst, PacketId(2), Time::from_secs(30)), 1000);
        assert_eq!(s.bytes_ahead(dst, PacketId(0), Time::from_secs(50)), 2000);
        assert_eq!(s.bytes_ahead(NodeId(8), PacketId(3), Time::from_secs(5)), 0);
        assert_eq!(s.total_bytes(dst), 3000);
        assert_eq!(s.total_bytes(NodeId(7)), 0);
    }

    #[test]
    fn hypothetical_insertion_position() {
        let s = q(&[(0, 9, 1000, 10), (1, 9, 1000, 30)]);
        let dst = NodeId(9);
        // Older than everything → head.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(5)), 0);
        // Between the two.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(20)), 1000);
        // Newest → tail.
        assert_eq!(s.bytes_ahead_if_inserted(dst, Time::from_secs(99)), 2000);
        // Unknown destination → empty queue.
        assert_eq!(s.bytes_ahead_if_inserted(NodeId(1), Time::from_secs(1)), 0);
    }

    #[test]
    fn equal_timestamps_break_ties_by_id() {
        let s = q(&[(5, 9, 100, 10), (2, 9, 100, 10)]);
        let dst = NodeId(9);
        assert_eq!(s.bytes_ahead(dst, PacketId(2), Time::from_secs(10)), 0);
        assert_eq!(s.bytes_ahead(dst, PacketId(5), Time::from_secs(10)), 100);
    }
}
