//! Per-node control-plane state: the replica/delay tables the in-band
//! channel gossips (§4.2).
//!
//! "For each encountered packet i, rapid maintains a list of nodes that
//! carry the replica of i, and for each replica, an estimated time for
//! direct delivery." Entries carry a change stamp so exchanges can be
//! incremental ("The node only sends information about packets whose
//! information changed since the last exchange"), and the table is bounded:
//! beyond a cap, the stalest entries for packets not held locally are
//! pruned — a real deployment cannot hold control state for every packet
//! ever heard of.
//!
//! Beliefs are keyed on dense slots: packet ids are interned
//! ([`dtn_sim::PacketInterner`]) in first-heard order, lookups are `Vec`
//! indexing, and the live slots are tracked in an [`IndexSet`] bitset so
//! the delta-exchange scan touches only occupied slots. Slots are stable
//! for the table's lifetime (pruned packets free the belief, not the
//! slot), which is what lets callers hold dense-indexed side state.

use dtn_sim::{IndexSet, NodeId, PacketId, PacketInterner, Time};

/// One believed replica of a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolderEntry {
    /// The node believed to hold a replica.
    pub holder: NodeId,
    /// That replica's estimated direct-delivery delay, seconds.
    pub delay_secs: f64,
    /// When this belief was formed (at the believed holder).
    pub stamp: Time,
}

/// Everything a node believes about one packet's replicas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PacketBelief {
    /// Believed replicas, sorted by holder id.
    pub entries: Vec<HolderEntry>,
    /// Most recent stamp across entries (drives delta exchange).
    pub changed_at: Time,
}

impl PacketBelief {
    /// Per-replica delay estimates, for feeding Eq. 8.
    pub fn replica_delays(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().map(|e| e.delay_secs)
    }

    /// The entry for a specific holder.
    pub fn entry(&self, holder: NodeId) -> Option<&HolderEntry> {
        self.entries
            .binary_search_by_key(&holder, |e| e.holder)
            .ok()
            .map(|k| &self.entries[k])
    }
}

/// A node's replica/delay table.
#[derive(Debug, Clone, Default)]
pub struct MetaTable {
    /// Packet ids interned onto stable dense slots, first-heard order.
    packets: PacketInterner,
    /// Beliefs by interned slot (`None` = forgotten/pruned).
    beliefs: Vec<Option<PacketBelief>>,
    /// Occupied slots, for iteration without scanning holes.
    live: IndexSet,
}

impl MetaTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packets with beliefs.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The belief about `id`, if any.
    pub fn get(&self, id: PacketId) -> Option<&PacketBelief> {
        let slot = self.packets.get(id)?.index();
        self.beliefs.get(slot)?.as_ref()
    }

    /// Records (or refreshes) the belief that `holder` carries `id` with
    /// the given delay estimate. Newer stamps win; equal-stamp updates
    /// overwrite (local refresh). Returns whether anything changed.
    pub fn upsert(&mut self, id: PacketId, entry: HolderEntry) -> bool {
        let slot = self.packets.intern(id).index();
        if slot >= self.beliefs.len() {
            self.beliefs.resize(slot + 1, None);
        }
        let belief = self.beliefs[slot].get_or_insert_with(PacketBelief::default);
        self.live.insert(slot);
        match belief
            .entries
            .binary_search_by_key(&entry.holder, |e| e.holder)
        {
            Ok(k) => {
                let existing = &mut belief.entries[k];
                if entry.stamp < existing.stamp {
                    return false;
                }
                if *existing == entry {
                    return false;
                }
                *existing = entry;
            }
            Err(k) => belief.entries.insert(k, entry),
        }
        belief.changed_at = belief.changed_at.max(entry.stamp);
        true
    }

    /// Forgets a packet entirely (on ack: "Metadata for delivered packets
    /// is deleted when an ack is received").
    pub fn remove_packet(&mut self, id: PacketId) {
        if let Some(slot) = self.packets.get(id) {
            if self.live.remove(slot.index()) {
                self.beliefs[slot.index()] = None;
            }
        }
    }

    /// Forgets one holder of a packet (local eviction).
    pub fn remove_holder(&mut self, id: PacketId, holder: NodeId) {
        let Some(slot) = self.packets.get(id) else {
            return;
        };
        let Some(belief) = self.beliefs.get_mut(slot.index()).and_then(Option::as_mut) else {
            return;
        };
        if let Ok(k) = belief.entries.binary_search_by_key(&holder, |e| e.holder) {
            belief.entries.remove(k);
            if belief.entries.is_empty() {
                self.beliefs[slot.index()] = None;
                self.live.remove(slot.index());
            }
        }
    }

    /// Iterates the occupied `(id, belief)` pairs in slot (first-heard)
    /// order.
    pub fn iter_live(&self) -> impl Iterator<Item = (PacketId, &PacketBelief)> + '_ {
        self.live.iter().map(|slot| {
            let belief = self.beliefs[slot]
                .as_ref()
                .expect("live slot holds a belief");
            (self.packets.id(dtn_sim::PacketIdx(slot as u32)), belief)
        })
    }

    /// Installs a checkpointed belief verbatim (checkpoint restore). The
    /// stamp-wins discipline of [`MetaTable::upsert`] cannot reproduce a
    /// `changed_at` that outlived removed holders, so restore bypasses it.
    /// Slot assignment follows restore order, which is unobservable: every
    /// exported listing sorts by content keys, never slots.
    pub fn restore_belief(&mut self, id: PacketId, belief: PacketBelief) {
        assert!(
            belief.entries.windows(2).all(|w| w[0].holder < w[1].holder),
            "belief entries must be sorted by holder"
        );
        let slot = self.packets.intern(id).index();
        if slot >= self.beliefs.len() {
            self.beliefs.resize(slot + 1, None);
        }
        self.live.insert(slot);
        self.beliefs[slot] = Some(belief);
    }

    /// Packets whose belief changed after `since`, with the number of
    /// *entries* newer than `since` (what the channel actually ships) and
    /// the belief's change stamp. Sorted by `(changed_at, id)` — oldest
    /// changes first — so a truncated exchange can advance its watermark to
    /// the last stamp it fully shipped.
    pub fn changed_since(&self, since: Time) -> Vec<(PacketId, usize, Time)> {
        let mut out = Vec::new();
        self.changed_since_into(since, &mut out);
        out
    }

    /// [`MetaTable::changed_since`] into a reusable buffer (the
    /// per-contact exchange path calls this with scratch storage).
    pub fn changed_since_into(&self, since: Time, out: &mut Vec<(PacketId, usize, Time)>) {
        out.clear();
        out.extend(
            self.iter_live()
                .filter(|(_, b)| b.changed_at > since)
                .map(|(id, b)| {
                    let fresh = b.entries.iter().filter(|e| e.stamp > since).count();
                    (id, fresh, b.changed_at)
                })
                .filter(|&(_, fresh, _)| fresh > 0),
        );
        out.sort_unstable_by_key(|&(id, _, at)| (at, id));
    }

    /// Merges the entries of `other`'s belief about `id` that are newer
    /// than `since` (stamp-wins per holder). Returns how many changed.
    pub fn merge_packet_from(&mut self, id: PacketId, other: &PacketBelief, since: Time) -> usize {
        let mut changed = 0;
        for &e in &other.entries {
            if e.stamp > since && self.upsert(id, e) {
                changed += 1;
            }
        }
        changed
    }

    /// Bounds the table to `cap` beliefs: beliefs for packets *not* matched
    /// by `keep` are pruned stalest-first until the size fits. Beliefs that
    /// `keep` matches (typically: packets in the local buffer) survive.
    pub fn prune(&mut self, cap: usize, mut keep: impl FnMut(PacketId) -> bool) {
        if self.len() <= cap {
            return;
        }
        let mut removable: Vec<(Time, PacketId)> = self
            .iter_live()
            .filter(|&(id, _)| !keep(id))
            .map(|(id, b)| (b.changed_at, id))
            .collect();
        removable.sort_unstable();
        let excess = self.len() - cap;
        for &(_, id) in removable.iter().take(excess) {
            self.remove_packet(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(holder: u32, delay: f64, stamp: u64) -> HolderEntry {
        HolderEntry {
            holder: NodeId(holder),
            delay_secs: delay,
            stamp: Time::from_secs(stamp),
        }
    }

    #[test]
    fn upsert_insert_and_refresh() {
        let mut t = MetaTable::new();
        assert!(t.upsert(PacketId(1), e(3, 100.0, 10)));
        assert!(t.upsert(PacketId(1), e(5, 50.0, 12)));
        let b = t.get(PacketId(1)).unwrap();
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.changed_at, Time::from_secs(12));
        // Stale update rejected.
        assert!(!t.upsert(PacketId(1), e(3, 1.0, 5)));
        assert!(
            (t.get(PacketId(1))
                .unwrap()
                .entry(NodeId(3))
                .unwrap()
                .delay_secs
                - 100.0)
                .abs()
                < 1e-9
        );
        // Fresher update accepted.
        assert!(t.upsert(PacketId(1), e(3, 80.0, 20)));
        assert!(
            (t.get(PacketId(1))
                .unwrap()
                .entry(NodeId(3))
                .unwrap()
                .delay_secs
                - 80.0)
                .abs()
                < 1e-9
        );
        // Identical update is a no-op.
        assert!(!t.upsert(PacketId(1), e(3, 80.0, 20)));
    }

    #[test]
    fn entries_stay_sorted_by_holder() {
        let mut t = MetaTable::new();
        for h in [9u32, 2, 5, 7, 1] {
            t.upsert(PacketId(0), e(h, 10.0, 1));
        }
        let holders: Vec<u32> = t
            .get(PacketId(0))
            .unwrap()
            .entries
            .iter()
            .map(|x| x.holder.0)
            .collect();
        assert_eq!(holders, vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn remove_holder_and_packet() {
        let mut t = MetaTable::new();
        t.upsert(PacketId(1), e(3, 100.0, 10));
        t.upsert(PacketId(1), e(4, 100.0, 10));
        t.remove_holder(PacketId(1), NodeId(3));
        assert_eq!(t.get(PacketId(1)).unwrap().entries.len(), 1);
        t.remove_holder(PacketId(1), NodeId(4));
        assert!(t.get(PacketId(1)).is_none(), "empty belief collapses");
        t.upsert(PacketId(2), e(1, 5.0, 1));
        t.remove_packet(PacketId(2));
        assert!(t.is_empty());
    }

    #[test]
    fn delta_exchange_listing() {
        let mut t = MetaTable::new();
        t.upsert(PacketId(1), e(3, 100.0, 10));
        t.upsert(PacketId(2), e(3, 100.0, 20));
        let changed = t.changed_since(Time::from_secs(15));
        assert_eq!(changed, vec![(PacketId(2), 1, Time::from_secs(20))]);
        assert_eq!(t.changed_since(Time::from_secs(0)).len(), 2);
        assert!(t.changed_since(Time::from_secs(20)).is_empty());
        // Only the entries newer than the watermark count.
        t.upsert(PacketId(1), e(4, 50.0, 30));
        let changed = t.changed_since(Time::from_secs(15));
        assert_eq!(changed[0], (PacketId(2), 1, Time::from_secs(20)));
        assert_eq!(changed[1], (PacketId(1), 1, Time::from_secs(30)));
    }

    #[test]
    fn changed_listing_is_stamp_ordered() {
        let mut t = MetaTable::new();
        t.upsert(PacketId(9), e(1, 1.0, 50));
        t.upsert(PacketId(2), e(1, 1.0, 10));
        t.upsert(PacketId(5), e(1, 1.0, 30));
        let order: Vec<u32> = t
            .changed_since(Time::ZERO)
            .iter()
            .map(|&(id, _, _)| id.0)
            .collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn merge_from_peer_belief() {
        let mut a = MetaTable::new();
        let mut b = MetaTable::new();
        a.upsert(PacketId(7), e(1, 100.0, 10));
        b.upsert(PacketId(7), e(1, 90.0, 15)); // fresher
        b.upsert(PacketId(7), e(2, 40.0, 12)); // new holder
        let changed = a.merge_packet_from(PacketId(7), b.get(PacketId(7)).unwrap(), Time::ZERO);
        assert_eq!(changed, 2);
        assert_eq!(a.get(PacketId(7)).unwrap().entries.len(), 2);
        // A merge bounded by a later watermark moves nothing.
        let mut c = MetaTable::new();
        let moved = c.merge_packet_from(
            PacketId(7),
            b.get(PacketId(7)).unwrap(),
            Time::from_secs(20),
        );
        assert_eq!(moved, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn prune_keeps_local_and_evicts_stalest() {
        let mut t = MetaTable::new();
        for id in 0..10u32 {
            t.upsert(PacketId(id), e(1, 10.0, u64::from(id)));
        }
        // Keep even ids ("in local buffer"); cap 6 → drop 4 stalest odd ids.
        t.prune(6, |p| p.0 % 2 == 0);
        assert_eq!(t.len(), 6);
        for id in [1u32, 3, 5, 7] {
            assert!(t.get(PacketId(id)).is_none(), "p{id} should be pruned");
        }
        assert!(t.get(PacketId(9)).is_some(), "freshest odd survives");
        // No-op when under cap.
        t.prune(100, |_| false);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn replica_delays_feed_eq8() {
        let mut t = MetaTable::new();
        t.upsert(PacketId(1), e(3, 100.0, 10));
        t.upsert(PacketId(1), e(4, 50.0, 10));
        let delays: Vec<f64> = t.get(PacketId(1)).unwrap().replica_delays().collect();
        assert_eq!(delays.len(), 2);
        let a = crate::estimate::expected_remaining_delay(delays);
        assert!((a - 1.0 / (1.0 / 100.0 + 1.0 / 50.0)).abs() < 1e-9);
    }
}
