//! RAPID configuration: routing metric, control-channel mode, tuning knobs.

use dtn_sim::TimeDelta;

/// The administrator-specified routing metric RAPID optimizes (§3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingMetric {
    /// Minimize average delivery delay: `U_i = −D(i)` (Eq. 1).
    MinAvgDelay,
    /// Minimize the number of packets that miss their deadline:
    /// `U_i = P(a(i) < L(i) − T(i))` while within lifetime `L`, else 0
    /// (Eq. 2).
    MinMissedDeadlines {
        /// Packet lifetime `L(i)` (Table 4: 2.7 h trace / 20 s synthetic).
        lifetime: TimeDelta,
    },
    /// Minimize the maximum delay: only the packet with the largest
    /// expected delay has non-zero utility (Eq. 3), evaluated
    /// work-conservingly in decreasing order of expected delay.
    MinMaxDelay,
}

/// How control metadata moves between nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelMode {
    /// The default: metadata rides the same transfer opportunities as data
    /// (§4.2), optionally capped to a fraction of each opportunity
    /// (the Fig. 8 experiment).
    InBand {
        /// If set, metadata may use at most this fraction of each
        /// opportunity's bytes (0.0 disables the control channel entirely).
        cap_fraction: Option<f64>,
    },
    /// Like `InBand`, but nodes only describe packets in their own buffers —
    /// no third-party gossip. This is the `rapid-local` ablation of §6.2.6.
    LocalOnly,
    /// An instant, zero-latency global control channel (§6.2.3): replica
    /// locations, queue states and delivery acks are always current. Models
    /// the hybrid DTN with a long-range control radio; requires the
    /// simulation to enable `allow_global_knowledge`.
    InstantGlobal,
}

impl ChannelMode {
    /// The unrestricted in-band channel (the paper's default).
    pub fn in_band() -> Self {
        ChannelMode::InBand { cap_fraction: None }
    }
}

/// Tuning parameters for RAPID. Defaults follow the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RapidConfig {
    /// The metric to optimize.
    pub metric: RoutingMetric,
    /// Control-channel mode.
    pub channel: ChannelMode,
    /// Maximum hops for transitive meeting-time estimation
    /// (§4.1.2: "In our implementation we restrict h = 3").
    pub hop_limit: usize,
    /// Fallback expected transfer-opportunity size (bytes) before any
    /// transfer has been observed with a peer.
    pub default_opportunity_bytes: u64,
    /// Upper bound on control-state entries retained per node; stale
    /// third-party entries are pruned beyond this (bounded control state —
    /// an implementation necessity the paper leaves implicit).
    pub meta_entry_cap: usize,
    /// Ceiling (seconds) applied to per-replica delay estimates: a replica
    /// that cannot reach the destination within this time is as good as
    /// none (packets die at the end of the service day, §6.1). Keeps
    /// marginal utilities finite and comparable; experiment labs set it to
    /// ~1.5× the run horizon.
    pub delay_cap_secs: f64,
}

impl RapidConfig {
    /// RAPID minimizing average delay with the default in-band channel.
    pub fn avg_delay() -> Self {
        Self::with_metric(RoutingMetric::MinAvgDelay)
    }

    /// RAPID minimizing maximum delay.
    pub fn max_delay() -> Self {
        Self::with_metric(RoutingMetric::MinMaxDelay)
    }

    /// RAPID maximizing deliveries within `lifetime`.
    pub fn deadline(lifetime: TimeDelta) -> Self {
        Self::with_metric(RoutingMetric::MinMissedDeadlines { lifetime })
    }

    /// Default configuration for a metric.
    pub fn with_metric(metric: RoutingMetric) -> Self {
        Self {
            metric,
            channel: ChannelMode::in_band(),
            hop_limit: 3,
            default_opportunity_bytes: 100 * 1024,
            meta_entry_cap: 200_000,
            delay_cap_secs: 1e9,
        }
    }

    /// Switches the channel mode.
    pub fn with_channel(mut self, channel: ChannelMode) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the per-replica delay-estimate ceiling.
    pub fn with_delay_cap(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "delay cap must be positive");
        self.delay_cap_secs = secs;
        self
    }
}

/// Wire-size accounting constants for the in-band channel (bytes). These
/// determine the metadata fractions reported in Table 3 / Figs. 8–9: an ack
/// is a packet id; a packet entry is (packet id, holder id, delay estimate,
/// staleness stamp); a meeting-vector row is (node id, n × mean, stamp).
pub mod wire {
    /// Bytes per acknowledged packet id.
    pub const ACK_BYTES: u64 = 4;
    /// Bytes per (packet, holder, delay, stamp) metadata entry.
    pub const META_ENTRY_BYTES: u64 = 16;
    /// Bytes per meeting-vector row entry (one peer's mean + stamp).
    pub const MEETING_ENTRY_BYTES: u64 = 12;
    /// Bytes for the "average size of past transfer opportunities" scalar.
    pub const AVG_OPP_BYTES: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RapidConfig::avg_delay();
        assert_eq!(c.hop_limit, 3);
        assert_eq!(c.channel, ChannelMode::InBand { cap_fraction: None });
        assert_eq!(c.metric, RoutingMetric::MinAvgDelay);
    }

    #[test]
    fn builders_compose() {
        let c = RapidConfig::deadline(TimeDelta::from_secs(20))
            .with_channel(ChannelMode::InstantGlobal);
        assert_eq!(c.channel, ChannelMode::InstantGlobal);
        assert!(matches!(
            c.metric,
            RoutingMetric::MinMissedDeadlines { lifetime } if lifetime == TimeDelta::from_secs(20)
        ));
    }
}
