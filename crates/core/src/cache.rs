//! The incremental Estimate-Delay cache: per-packet Eq. 4–9 results with
//! epoch-based dirty tracking.
//!
//! RAPID's utilities are derived from one expensive quantity per packet:
//! the *combined replica rate* `Σ_j 1/a_j` over the replica delays of
//! Eqs. 4–9 (the metric formulas in `protocol.rs` are cheap closed forms
//! over that rate and the packet's age). Recomputing every rate from
//! scratch at every buffer-overflow decision is the paper reproduction's
//! biggest constant factor; this cache makes the recomputation incremental:
//! a rate is reused while all of its inputs are provably unchanged, and
//! only *dirty* packets are re-estimated.
//!
//! A cached rate for packet `i` (destination `Z`) at node `X` depends on
//! three input groups, each guarded by its own epoch:
//!
//! * **node epoch** — `X`'s meeting-time estimates, believed opportunity
//!   sizes and learned rows. All change together at `X`'s own contacts
//!   (and on churn), so one counter guards them:
//!   [`DelayCache::invalidate_all`] is driven off `on_contact` and the
//!   `on_node_up`/`on_node_down` lifecycle hooks.
//! * **destination epoch** — the bytes queued ahead of `i` for `Z`
//!   (Eq. 5's `b(i)`), which changes only when `X`'s delivery queue for
//!   `Z` changes: a creation, an accepted replica, an eviction or a TTL
//!   expiry. [`DelayCache::touch_dst`] is driven off those events
//!   (`on_packet_created`, `make_room` victims, `on_packet_expired`).
//! * **packet epoch** — the remote-replica delay entries gossiped for `i`
//!   (the `MetaTable` belief), plus ack state. [`DelayCache::touch_packet`]
//!   is driven off belief mutations and delivery/ack events.
//!
//! An entry is valid only if all three epochs still match — validity
//! implies the recomputation would be bit-identical, so cached and
//! from-scratch selection decisions cannot diverge (the `rapid-core`
//! property tests assert exactly that, and `protocol.rs` re-verifies every
//! hit under `debug_assertions`).
//!
//! The cache also exposes a monotone [`DelayCache::version`] — bumped by
//! every invalidation — which `protocol.rs` uses to reuse an already
//! *sorted* eviction order across storage decisions (lazy re-sorting):
//! same version, same order.

use dtn_sim::{NodeId, PacketId};

/// One cached combined-rate entry with the epochs it was computed under.
#[derive(Debug, Clone, Copy)]
struct Entry {
    node_epoch: u64,
    dst_epoch: u64,
    pkt_epoch: u32,
    rate: f64,
}

/// Per-node cache of combined replica rates (Eqs. 4–9), invalidated by
/// epoch comparison. See the module docs for the invalidation contract.
#[derive(Debug, Clone)]
pub struct DelayCache {
    /// Epoch of node-level inputs (estimates, opportunity beliefs).
    node_epoch: u64,
    /// Epoch of each destination's delivery queue, by `NodeId` index.
    dst_epoch: Vec<u64>,
    /// Epoch of each packet's remote-belief inputs, by `PacketId` index.
    pkt_epoch: Vec<u32>,
    /// Cached entries by `PacketId` index.
    entries: Vec<Entry>,
    /// Bumped by every invalidation; guards derived sorted orders.
    version: u64,
}

const EMPTY: Entry = Entry {
    node_epoch: 0,
    dst_epoch: 0,
    pkt_epoch: 0,
    rate: 0.0,
};

impl DelayCache {
    /// A cache for a simulation with `nodes` destinations.
    pub fn new(nodes: usize) -> Self {
        Self {
            node_epoch: 1,
            dst_epoch: vec![1; nodes],
            pkt_epoch: Vec::new(),
            entries: Vec::new(),
            version: 0,
        }
    }

    /// Invalidates every cached rate (node-level inputs changed).
    pub fn invalidate_all(&mut self) {
        self.node_epoch += 1;
        self.version += 1;
    }

    /// Invalidates rates of packets destined to `dst` (that delivery queue
    /// changed, so their `b(i)` may have).
    pub fn touch_dst(&mut self, dst: NodeId) {
        self.dst_epoch[dst.index()] += 1;
        self.version += 1;
    }

    /// Invalidates the rate of one packet (its remote-belief inputs
    /// changed).
    pub fn touch_packet(&mut self, id: PacketId) {
        let i = id.index();
        if i >= self.pkt_epoch.len() {
            self.pkt_epoch.resize(i + 1, 0);
        }
        self.pkt_epoch[i] += 1;
        self.version += 1;
    }

    /// The cached rate for `id` (destined to `dst`), if still valid.
    pub fn get(&self, id: PacketId, dst: NodeId) -> Option<f64> {
        let e = self.entries.get(id.index()).copied().unwrap_or(EMPTY);
        let pkt_epoch = self.pkt_epoch.get(id.index()).copied().unwrap_or(0);
        (e.node_epoch == self.node_epoch
            && e.dst_epoch == self.dst_epoch[dst.index()]
            && e.pkt_epoch == pkt_epoch)
            .then_some(e.rate)
    }

    /// Stores a freshly computed rate under the current epochs.
    pub fn put(&mut self, id: PacketId, dst: NodeId, rate: f64) {
        let i = id.index();
        if i >= self.entries.len() {
            self.entries.resize(i + 1, EMPTY);
        }
        self.entries[i] = Entry {
            node_epoch: self.node_epoch,
            dst_epoch: self.dst_epoch[dst.index()],
            pkt_epoch: self.pkt_epoch.get(i).copied().unwrap_or(0),
            rate,
        };
    }

    /// Monotone counter bumped by every invalidation. Two equal versions
    /// bracket a span with no invalidation at all — anything derived from
    /// cached rates (like a sorted eviction order) is still exact.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Batched validity sweep over one delivery queue: writes each
    /// packet's still-valid cached rate (or `None` for a dirty packet)
    /// into `row`, returning the number of misses. Equivalent to
    /// [`DelayCache::get`] per packet, with the destination-epoch lookup
    /// hoisted out of the loop — the refresh path for one dirty node
    /// walks whole queues, not individual packets.
    pub fn sweep_queue(
        &self,
        dst: NodeId,
        ids: impl IntoIterator<Item = PacketId>,
        row: &mut Vec<Option<f64>>,
    ) -> usize {
        let dst_epoch = self.dst_epoch[dst.index()];
        row.clear();
        let mut misses = 0;
        row.extend(ids.into_iter().map(|id| {
            let e = self.entries.get(id.index()).copied().unwrap_or(EMPTY);
            let pkt_epoch = self.pkt_epoch.get(id.index()).copied().unwrap_or(0);
            let hit = (e.node_epoch == self.node_epoch
                && e.dst_epoch == dst_epoch
                && e.pkt_epoch == pkt_epoch)
                .then_some(e.rate);
            misses += usize::from(hit.is_none());
            hit
        }));
        misses
    }

    /// Stores one queue's freshly recomputed rates under the current
    /// epochs — the write half of a batched sweep. Equivalent to
    /// [`DelayCache::put`] per packet.
    pub fn put_row(&mut self, dst: NodeId, rates: impl IntoIterator<Item = (PacketId, f64)>) {
        let dst_epoch = self.dst_epoch[dst.index()];
        for (id, rate) in rates {
            let i = id.index();
            if i >= self.entries.len() {
                self.entries.resize(i + 1, EMPTY);
            }
            self.entries[i] = Entry {
                node_epoch: self.node_epoch,
                dst_epoch,
                pkt_epoch: self.pkt_epoch.get(i).copied().unwrap_or(0),
                rate,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_after_each_invalidation_kind() {
        let mut c = DelayCache::new(4);
        let (p, d) = (PacketId(7), NodeId(2));
        assert_eq!(c.get(p, d), None, "cold cache misses");
        c.put(p, d, 0.125);
        assert_eq!(c.get(p, d), Some(0.125));

        c.touch_dst(NodeId(3));
        assert_eq!(c.get(p, d), Some(0.125), "other destinations unaffected");
        c.touch_dst(d);
        assert_eq!(c.get(p, d), None, "destination touch invalidates");

        c.put(p, d, 0.25);
        c.touch_packet(PacketId(8));
        assert_eq!(c.get(p, d), Some(0.25), "other packets unaffected");
        c.touch_packet(p);
        assert_eq!(c.get(p, d), None, "packet touch invalidates");

        c.put(p, d, 0.5);
        c.invalidate_all();
        assert_eq!(c.get(p, d), None, "node epoch invalidates everything");
    }

    #[test]
    fn version_counts_every_invalidation() {
        let mut c = DelayCache::new(2);
        let v0 = c.version();
        c.put(PacketId(0), NodeId(0), 1.0);
        assert_eq!(c.version(), v0, "puts do not bump the version");
        c.touch_dst(NodeId(1));
        c.touch_packet(PacketId(5));
        c.invalidate_all();
        assert_eq!(c.version(), v0 + 3);
    }

    #[test]
    fn sweep_and_put_row_match_per_packet_calls() {
        let mut c = DelayCache::new(3);
        let dst = NodeId(1);
        let ids = [PacketId(0), PacketId(3), PacketId(5)];
        c.put(PacketId(0), dst, 0.5);
        c.put(PacketId(5), dst, 0.25);
        c.touch_packet(PacketId(5));

        let mut row = Vec::new();
        let misses = c.sweep_queue(dst, ids, &mut row);
        assert_eq!(misses, 2);
        assert_eq!(row, vec![Some(0.5), None, None]);
        for (&id, &hit) in ids.iter().zip(&row) {
            assert_eq!(c.get(id, dst), hit);
        }

        c.put_row(dst, [(PacketId(3), 1.5), (PacketId(5), 2.5)]);
        assert_eq!(c.sweep_queue(dst, ids, &mut row), 0);
        assert_eq!(row, vec![Some(0.5), Some(1.5), Some(2.5)]);
        c.touch_dst(dst);
        assert_eq!(c.sweep_queue(dst, ids, &mut row), 3);
    }

    #[test]
    fn entries_are_per_packet() {
        let mut c = DelayCache::new(2);
        c.put(PacketId(0), NodeId(0), 1.0);
        c.put(PacketId(1), NodeId(1), 2.0);
        assert_eq!(c.get(PacketId(0), NodeId(0)), Some(1.0));
        assert_eq!(c.get(PacketId(1), NodeId(1)), Some(2.0));
        c.touch_dst(NodeId(0));
        assert_eq!(c.get(PacketId(0), NodeId(0)), None);
        assert_eq!(c.get(PacketId(1), NodeId(1)), Some(2.0));
    }
}
