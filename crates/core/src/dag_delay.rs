//! `DAG_DELAY` — the idealized delay estimator of Appendix C.
//!
//! Estimate Delay (§4.1) ignores the *non-vertical* dependencies between
//! packet delays: if replicas of packet `b` sit behind replicas of packet
//! `a` in several buffers, delivering `a` anywhere unblocks every replica of
//! `b`. Appendix C constructs the dependency graph explicitly and computes,
//! for unit-size packets and unit transfer opportunities,
//!
//! ```text
//! d'(p_j) = d(succ(p_j)) ⊕ e_{node(p_j)}        (per replica)
//! d(p)    = min(d'(p_1), …, d'(p_k))            (per packet)
//! ```
//!
//! where `e_n` is the distribution of node `n`'s wait to meet the
//! destination and `⊕` is the sum of independent delays. The distribution
//! calculus is the discretized one from `dtn-stats` (exact for min, grid
//! convolution for ⊕).
//!
//! The paper uses this algorithm only as an idealized reference (it needs a
//! global view); the reproduction ships it for the same purpose — tests and
//! an ablation bench quantify how far Estimate Delay's independence
//! assumption strays from it.

use dtn_sim::{NodeId, PacketId};
use dtn_stats::DiscreteDist;
use std::collections::HashMap;

/// The queue state fed to `dag_delay`: for each node, the packets destined
/// to the (implicit, common) destination in delivery order, head first.
/// Packet ids may repeat across nodes (replicas), not within a node.
#[derive(Debug, Clone, Default)]
pub struct QueueState {
    /// `(node, its queue head-first)` pairs.
    pub queues: Vec<(NodeId, Vec<PacketId>)>,
}

/// Computes the delivery-delay distribution of every packet appearing in
/// `queues`, given each node's meeting-time distribution with the
/// destination.
///
/// `meet` maps a node to its `e_node` distribution; every node with a
/// non-empty queue must be present. All distributions must share one grid.
///
/// # Panics
/// Panics if queue orders are inconsistent (a packet precedes another in
/// one buffer and follows it in another — impossible under the global
/// age-ordering of §4.1, and the recursion would not terminate).
pub fn dag_delay(
    queues: &QueueState,
    meet: &HashMap<NodeId, DiscreteDist>,
) -> HashMap<PacketId, DiscreteDist> {
    // Gather replicas: packet → [(node, predecessor packet if any)].
    let mut replicas: HashMap<PacketId, Vec<(NodeId, Option<PacketId>)>> = HashMap::new();
    for (node, queue) in &queues.queues {
        assert!(
            meet.contains_key(node),
            "missing meeting distribution for {node}"
        );
        let mut prev: Option<PacketId> = None;
        for &p in queue {
            replicas.entry(p).or_default().push((*node, prev));
            prev = Some(p);
        }
    }

    let mut memo: HashMap<PacketId, DiscreteDist> = HashMap::new();
    let mut in_progress: Vec<PacketId> = Vec::new();
    let mut order: Vec<PacketId> = replicas.keys().copied().collect();
    order.sort_unstable();
    for p in order {
        compute(p, &replicas, meet, &mut memo, &mut in_progress);
    }
    memo
}

fn compute(
    p: PacketId,
    replicas: &HashMap<PacketId, Vec<(NodeId, Option<PacketId>)>>,
    meet: &HashMap<NodeId, DiscreteDist>,
    memo: &mut HashMap<PacketId, DiscreteDist>,
    in_progress: &mut Vec<PacketId>,
) -> DiscreteDist {
    if let Some(d) = memo.get(&p) {
        return d.clone();
    }
    assert!(
        !in_progress.contains(&p),
        "cyclic packet ordering at {p}: queues are not globally age-ordered"
    );
    in_progress.push(p);
    let reps = &replicas[&p];
    let mut per_replica: Vec<DiscreteDist> = Vec::with_capacity(reps.len());
    for &(node, pred) in reps {
        let e = &meet[&node];
        let d = match pred {
            None => e.clone(),
            Some(q) => {
                let dq = compute(q, replicas, meet, memo, in_progress);
                dq.convolve(e)
            }
        };
        per_replica.push(d);
    }
    let result = DiscreteDist::min_of(&per_replica);
    in_progress.pop();
    memo.insert(p, result.clone());
    result
}

/// Estimate Delay's answer on the same inputs, for comparison: each replica
/// of the packet waits `position + 1` meetings of *its own node* (gamma,
/// approximated exponential with the same mean), independent across
/// replicas (Eq. 8).
pub fn estimate_delay_reference(
    queues: &QueueState,
    mean_meet_secs: &HashMap<NodeId, f64>,
) -> HashMap<PacketId, f64> {
    let mut delays: HashMap<PacketId, Vec<f64>> = HashMap::new();
    for (node, queue) in &queues.queues {
        let m = mean_meet_secs[node];
        for (pos, &p) in queue.iter().enumerate() {
            delays.entry(p).or_default().push(m * (pos as f64 + 1.0));
        }
    }
    delays
        .into_iter()
        .map(|(p, reps)| (p, crate::estimate::expected_remaining_delay(reps)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 3000;
    const DT: f64 = 0.05;

    fn exp_dist(mean: f64) -> DiscreteDist {
        DiscreteDist::exponential(1.0 / mean, N, DT)
    }

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn single_replica_head_is_meeting_time() {
        let queues = QueueState {
            queues: vec![(NodeId(0), vec![PacketId(1)])],
        };
        let meet = HashMap::from([(NodeId(0), exp_dist(10.0))]);
        let d = dag_delay(&queues, &meet);
        close(d[&PacketId(1)].mean(), 10.0, 0.3);
    }

    #[test]
    fn second_in_queue_is_two_meetings() {
        let queues = QueueState {
            queues: vec![(NodeId(0), vec![PacketId(1), PacketId(2)])],
        };
        let meet = HashMap::from([(NodeId(0), exp_dist(10.0))]);
        let d = dag_delay(&queues, &meet);
        // Gamma(2, 1/10): mean 20.
        close(d[&PacketId(2)].mean(), 20.0, 0.5);
    }

    #[test]
    fn replicas_take_the_minimum() {
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![PacketId(1)]),
                (NodeId(1), vec![PacketId(1)]),
            ],
        };
        let meet = HashMap::from([(NodeId(0), exp_dist(10.0)), (NodeId(1), exp_dist(10.0))]);
        let d = dag_delay(&queues, &meet);
        // min of two Exp(1/10) = Exp(2/10): mean 5.
        close(d[&PacketId(1)].mean(), 5.0, 0.2);
    }

    #[test]
    fn paper_example_dependency_captured() {
        // Fig. 2: a ahead of b at X; b alone at W. dag_delay accounts for
        // b's X-replica waiting on a's delivery by ANY replica of a.
        // Setup: a at X and Y (head of both), b behind a at X, b alone at W.
        let (a, b) = (PacketId(1), PacketId(2));
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![a, b]), // X
                (NodeId(1), vec![a]),    // Y
                (NodeId(2), vec![b]),    // W
            ],
        };
        let meet = HashMap::from([
            (NodeId(0), exp_dist(10.0)),
            (NodeId(1), exp_dist(10.0)),
            (NodeId(2), exp_dist(10.0)),
        ]);
        let d = dag_delay(&queues, &meet);
        // d(a) = min(Exp10, Exp10) → mean 5.
        close(d[&a].mean(), 5.0, 0.2);
        // d(b) = min( d(a) ⊕ Exp10 at X, Exp10 at W ).
        // Reference via the calculus itself:
        let da = exp_dist(10.0).min_with(&exp_dist(10.0));
        let expect = da.convolve(&exp_dist(10.0)).min_with(&exp_dist(10.0));
        close(d[&b].mean(), expect.mean(), 1e-9);
        // Estimate Delay would model b's X-replica as 2 meetings of X
        // alone — a *larger* estimate than dag_delay's, because it ignores
        // that Y may deliver a first (the Appendix's inflation direction).
        let est = estimate_delay_reference(
            &queues,
            &HashMap::from([(NodeId(0), 10.0), (NodeId(1), 10.0), (NodeId(2), 10.0)]),
        );
        assert!(est[&b] > 0.0);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn inconsistent_orders_panic() {
        let (a, b) = (PacketId(1), PacketId(2));
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![a, b]),
                (NodeId(1), vec![b, a]), // contradicts the other buffer
            ],
        };
        let meet = HashMap::from([(NodeId(0), exp_dist(10.0)), (NodeId(1), exp_dist(10.0))]);
        let _ = dag_delay(&queues, &meet);
    }

    #[test]
    #[should_panic(expected = "missing meeting distribution")]
    fn missing_distribution_panics() {
        let queues = QueueState {
            queues: vec![(NodeId(0), vec![PacketId(1)])],
        };
        let _ = dag_delay(&queues, &HashMap::new());
    }

    #[test]
    fn estimate_delay_reference_matches_eq8() {
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![PacketId(1)]),
                (NodeId(1), vec![PacketId(1)]),
            ],
        };
        let est = estimate_delay_reference(
            &queues,
            &HashMap::from([(NodeId(0), 100.0), (NodeId(1), 50.0)]),
        );
        close(est[&PacketId(1)], 1.0 / (1.0 / 100.0 + 1.0 / 50.0), 1e-9);
    }
}
