//! `DAG_DELAY` — the idealized delay estimator of Appendix C.
//!
//! Estimate Delay (§4.1) ignores the *non-vertical* dependencies between
//! packet delays: if replicas of packet `b` sit behind replicas of packet
//! `a` in several buffers, delivering `a` anywhere unblocks every replica of
//! `b`. Appendix C constructs the dependency graph explicitly and computes,
//! for unit-size packets and unit transfer opportunities,
//!
//! ```text
//! d'(p_j) = d(succ(p_j)) ⊕ e_{node(p_j)}        (per replica)
//! d(p)    = min(d'(p_1), …, d'(p_k))            (per packet)
//! ```
//!
//! where `e_n` is the distribution of node `n`'s wait to meet the
//! destination and `⊕` is the sum of independent delays. The distribution
//! calculus is the discretized one from `dtn-stats` (exact for min, grid
//! convolution for ⊕).
//!
//! The paper uses this algorithm only as an idealized reference (it needs a
//! global view); the reproduction ships it for the same purpose — tests and
//! an ablation bench quantify how far Estimate Delay's independence
//! assumption strays from it.
//!
//! Packet and node identities are interned onto dense indices up front
//! (the workspace-wide discipline from `dtn_sim::ids`): the recursion,
//! memoization and cycle tracking are all `Vec`-indexed — no hashing on
//! the evaluation path — and both inputs and outputs are plain ordered
//! slices, so iteration order is deterministic by construction (results
//! come back in ascending [`PacketId`] order).

use dtn_sim::{NodeId, NodeInterner, PacketId, PacketInterner};
use dtn_stats::DiscreteDist;

/// The queue state fed to `dag_delay`: for each node, the packets destined
/// to the (implicit, common) destination in delivery order, head first.
/// Packet ids may repeat across nodes (replicas), not within a node.
#[derive(Debug, Clone, Default)]
pub struct QueueState {
    /// `(node, its queue head-first)` pairs.
    pub queues: Vec<(NodeId, Vec<PacketId>)>,
}

/// Dense working tables for one `dag_delay` evaluation.
struct DagTables<'a> {
    /// Per dense packet index: its replicas as
    /// `(dense node, predecessor dense packet if any)`.
    replicas: Vec<Vec<(u32, Option<u32>)>>,
    /// Per dense node index: its meeting-time distribution.
    meet: Vec<&'a DiscreteDist>,
    /// Memoized results per dense packet index.
    memo: Vec<Option<DiscreteDist>>,
    /// Cycle guard per dense packet index.
    in_progress: Vec<bool>,
}

/// Computes the delivery-delay distribution of every packet appearing in
/// `queues`, given each node's meeting-time distribution with the
/// destination.
///
/// `meet` maps a node to its `e_node` distribution; every node with a
/// non-empty queue must be present (duplicates: the first entry wins).
/// All distributions must share one grid. Results are returned in
/// ascending [`PacketId`] order.
///
/// # Panics
/// Panics if queue orders are inconsistent (a packet precedes another in
/// one buffer and follows it in another — impossible under the global
/// age-ordering of §4.1, and the recursion would not terminate).
pub fn dag_delay(
    queues: &QueueState,
    meet: &[(NodeId, DiscreteDist)],
) -> Vec<(PacketId, DiscreteDist)> {
    // Intern nodes and packets onto dense indices; gather replica lists.
    let mut nodes = NodeInterner::new();
    let mut packets = PacketInterner::new();
    let mut replicas: Vec<Vec<(u32, Option<u32>)>> = Vec::new();
    for (node, queue) in &queues.queues {
        let ni = nodes.intern(*node);
        let mut prev: Option<u32> = None;
        for &p in queue {
            let pi = packets.intern(p);
            if pi.index() >= replicas.len() {
                replicas.resize_with(pi.index() + 1, Vec::new);
            }
            replicas[pi.index()].push((ni.0, prev));
            prev = Some(pi.0);
        }
    }

    // Resolve each interned node's distribution (first meet entry wins).
    let mut meet_of: Vec<Option<&DiscreteDist>> = vec![None; nodes.len()];
    for (node, dist) in meet {
        if let Some(ni) = nodes.get(*node) {
            meet_of[ni.index()].get_or_insert(dist);
        }
    }
    let meet_dense: Vec<&DiscreteDist> = (0..nodes.len())
        .map(|ni| {
            meet_of[ni].unwrap_or_else(|| {
                panic!(
                    "missing meeting distribution for {}",
                    nodes.id(dtn_sim::NodeIdx(ni as u32))
                )
            })
        })
        .collect();

    let n_packets = packets.len();
    let mut tables = DagTables {
        replicas,
        meet: meet_dense,
        memo: vec![None; n_packets],
        in_progress: vec![false; n_packets],
    };

    // Evaluate in ascending PacketId order (deterministic, and the order
    // the results are returned in).
    let mut order: Vec<PacketId> = (0..n_packets)
        .map(|pi| packets.id(dtn_sim::PacketIdx(pi as u32)))
        .collect();
    order.sort_unstable();
    order
        .into_iter()
        .map(|id| {
            let pi = packets.get(id).expect("interned above").0;
            let dist = compute(pi, &mut tables, &packets);
            (id, dist)
        })
        .collect()
}

fn compute(pi: u32, tables: &mut DagTables<'_>, packets: &PacketInterner) -> DiscreteDist {
    let i = pi as usize;
    if let Some(d) = &tables.memo[i] {
        return d.clone();
    }
    assert!(
        !tables.in_progress[i],
        "cyclic packet ordering at {}: queues are not globally age-ordered",
        packets.id(dtn_sim::PacketIdx(pi))
    );
    tables.in_progress[i] = true;
    // Taking (not cloning) is safe: the memo check above means this body
    // runs at most once per packet, and the recursion below only reads
    // *other* packets' replica lists (self-reference panics via
    // `in_progress`), so the emptied slot is never consulted again.
    let reps = std::mem::take(&mut tables.replicas[i]);
    let mut per_replica: Vec<DiscreteDist> = Vec::with_capacity(reps.len());
    for (ni, pred) in reps {
        let e = tables.meet[ni as usize];
        let d = match pred {
            None => e.clone(),
            Some(q) => {
                let dq = compute(q, tables, packets);
                dq.convolve(e)
            }
        };
        per_replica.push(d);
    }
    let result = DiscreteDist::min_of(&per_replica);
    tables.in_progress[i] = false;
    tables.memo[i] = Some(result.clone());
    result
}

/// Estimate Delay's answer on the same inputs, for comparison: each replica
/// of the packet waits `position + 1` meetings of *its own node* (gamma,
/// approximated exponential with the same mean), independent across
/// replicas (Eq. 8). Results in ascending [`PacketId`] order.
pub fn estimate_delay_reference(
    queues: &QueueState,
    mean_meet_secs: &[(NodeId, f64)],
) -> Vec<(PacketId, f64)> {
    let mut packets = PacketInterner::new();
    let mut delays: Vec<Vec<f64>> = Vec::new();
    for (node, queue) in &queues.queues {
        let m = mean_meet_secs
            .iter()
            .find(|(n, _)| n == node)
            .unwrap_or_else(|| panic!("missing mean meeting time for {node}"))
            .1;
        for (pos, &p) in queue.iter().enumerate() {
            let pi = packets.intern(p);
            if pi.index() >= delays.len() {
                delays.resize_with(pi.index() + 1, Vec::new);
            }
            delays[pi.index()].push(m * (pos as f64 + 1.0));
        }
    }
    let mut order: Vec<PacketId> = (0..packets.len())
        .map(|pi| packets.id(dtn_sim::PacketIdx(pi as u32)))
        .collect();
    order.sort_unstable();
    order
        .into_iter()
        .map(|id| {
            let pi = packets.get(id).expect("interned above");
            let reps = std::mem::take(&mut delays[pi.index()]);
            (id, crate::estimate::expected_remaining_delay(reps))
        })
        .collect()
}

/// Looks up one packet's entry in an ascending-`PacketId` result slice.
pub fn delay_of<T>(results: &[(PacketId, T)], id: PacketId) -> Option<&T> {
    results
        .binary_search_by_key(&id, |(p, _)| *p)
        .ok()
        .map(|k| &results[k].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 3000;
    const DT: f64 = 0.05;

    fn exp_dist(mean: f64) -> DiscreteDist {
        DiscreteDist::exponential(1.0 / mean, N, DT)
    }

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    fn get<T>(results: &[(PacketId, T)], id: PacketId) -> &T {
        delay_of(results, id).expect("packet in results")
    }

    #[test]
    fn single_replica_head_is_meeting_time() {
        let queues = QueueState {
            queues: vec![(NodeId(0), vec![PacketId(1)])],
        };
        let meet = vec![(NodeId(0), exp_dist(10.0))];
        let d = dag_delay(&queues, &meet);
        close(get(&d, PacketId(1)).mean(), 10.0, 0.3);
    }

    #[test]
    fn second_in_queue_is_two_meetings() {
        let queues = QueueState {
            queues: vec![(NodeId(0), vec![PacketId(1), PacketId(2)])],
        };
        let meet = vec![(NodeId(0), exp_dist(10.0))];
        let d = dag_delay(&queues, &meet);
        // Gamma(2, 1/10): mean 20.
        close(get(&d, PacketId(2)).mean(), 20.0, 0.5);
    }

    #[test]
    fn replicas_take_the_minimum() {
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![PacketId(1)]),
                (NodeId(1), vec![PacketId(1)]),
            ],
        };
        let meet = vec![(NodeId(0), exp_dist(10.0)), (NodeId(1), exp_dist(10.0))];
        let d = dag_delay(&queues, &meet);
        // min of two Exp(1/10) = Exp(2/10): mean 5.
        close(get(&d, PacketId(1)).mean(), 5.0, 0.2);
    }

    #[test]
    fn results_are_packet_id_ordered() {
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![PacketId(9), PacketId(2)]),
                (NodeId(1), vec![PacketId(5)]),
            ],
        };
        let meet = vec![(NodeId(0), exp_dist(10.0)), (NodeId(1), exp_dist(10.0))];
        let d = dag_delay(&queues, &meet);
        let ids: Vec<u32> = d.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ids, vec![2, 5, 9], "ascending by construction");
        let est = estimate_delay_reference(&queues, &[(NodeId(0), 10.0), (NodeId(1), 10.0)]);
        let ids: Vec<u32> = est.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn paper_example_dependency_captured() {
        // Fig. 2: a ahead of b at X; b alone at W. dag_delay accounts for
        // b's X-replica waiting on a's delivery by ANY replica of a.
        // Setup: a at X and Y (head of both), b behind a at X, b alone at W.
        let (a, b) = (PacketId(1), PacketId(2));
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![a, b]), // X
                (NodeId(1), vec![a]),    // Y
                (NodeId(2), vec![b]),    // W
            ],
        };
        let meet = vec![
            (NodeId(0), exp_dist(10.0)),
            (NodeId(1), exp_dist(10.0)),
            (NodeId(2), exp_dist(10.0)),
        ];
        let d = dag_delay(&queues, &meet);
        // d(a) = min(Exp10, Exp10) → mean 5.
        close(get(&d, a).mean(), 5.0, 0.2);
        // d(b) = min( d(a) ⊕ Exp10 at X, Exp10 at W ).
        // Reference via the calculus itself:
        let da = exp_dist(10.0).min_with(&exp_dist(10.0));
        let expect = da.convolve(&exp_dist(10.0)).min_with(&exp_dist(10.0));
        close(get(&d, b).mean(), expect.mean(), 1e-9);
        // Estimate Delay would model b's X-replica as 2 meetings of X
        // alone — a *larger* estimate than dag_delay's, because it ignores
        // that Y may deliver a first (the Appendix's inflation direction).
        let est = estimate_delay_reference(
            &queues,
            &[(NodeId(0), 10.0), (NodeId(1), 10.0), (NodeId(2), 10.0)],
        );
        assert!(*get(&est, b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn inconsistent_orders_panic() {
        let (a, b) = (PacketId(1), PacketId(2));
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![a, b]),
                (NodeId(1), vec![b, a]), // contradicts the other buffer
            ],
        };
        let meet = vec![(NodeId(0), exp_dist(10.0)), (NodeId(1), exp_dist(10.0))];
        let _ = dag_delay(&queues, &meet);
    }

    #[test]
    #[should_panic(expected = "missing meeting distribution")]
    fn missing_distribution_panics() {
        let queues = QueueState {
            queues: vec![(NodeId(0), vec![PacketId(1)])],
        };
        let _ = dag_delay(&queues, &[]);
    }

    #[test]
    fn estimate_delay_reference_matches_eq8() {
        let queues = QueueState {
            queues: vec![
                (NodeId(0), vec![PacketId(1)]),
                (NodeId(1), vec![PacketId(1)]),
            ],
        };
        let est = estimate_delay_reference(&queues, &[(NodeId(0), 100.0), (NodeId(1), 50.0)]);
        close(
            *get(&est, PacketId(1)),
            1.0 / (1.0 / 100.0 + 1.0 / 50.0),
            1e-9,
        );
    }
}
