//! RAPID — the Resource Allocation Protocol for Intentional DTN routing,
//! from *DTN Routing as a Resource Allocation Problem* (Balasubramanian,
//! Levine, Venkataramani; SIGCOMM 2007).
//!
//! RAPID treats DTN routing as a utility-driven resource allocation
//! problem: an administrator-specified routing metric (average delay,
//! missed deadlines, or maximum delay — [`config::RoutingMetric`]) is
//! translated into per-packet utilities, and at every transfer opportunity
//! the packet whose replication buys the most utility per byte is sent
//! first.
//!
//! Crate layout, mapped to the paper:
//!
//! | module | paper | contents |
//! |--------|-------|----------|
//! | [`config`] | §3.5, §6 | metrics, channel modes, tuning |
//! | [`protocol`] | §3.4 | the selection algorithm (Protocol RAPID) |
//! | [`estimate`] | §4.1 | Estimate Delay: Eqs. 4–9 |
//! | [`cache`] | — | incremental Eq. 4–9 rate cache with epoch dirty tracking |
//! | [`meetings`] | §4.1.2 | meeting-time learning, h-hop estimates |
//! | [`control`] | §4.2 | the in-band control channel's replica tables |
//! | [`mod@dag_delay`] | Appendix C | the idealized dependency-graph estimator |
//!
//! State is dense-indexed end to end (PR 3): packet/node identities are
//! interned onto dense handles (`dtn_sim::ids`), [`control::MetaTable`]
//! and [`estimate::QueueSnapshot`] are `Vec`-keyed rather than hashed, and
//! the selection hot path reuses cached Estimate-Delay rates — only
//! packets dirtied by contact, queue, belief, expiry or churn events are
//! re-estimated, with the sorted eviction order itself reused while
//! nothing invalidated it. Decisions are provably unchanged: every cache
//! hit re-verifies bitwise against a from-scratch recomputation under
//! `debug_assertions`, and the figure TSVs are byte-identical across the
//! refactor for a fixed seed.
//!
//! ```
//! use rapid_core::{Rapid, RapidConfig};
//! use dtn_sim::{Simulation, SimConfig, Schedule, Contact, NodeId, Time};
//! use dtn_sim::workload::{Workload, PacketSpec};
//!
//! let config = SimConfig { nodes: 2, horizon: Time::from_secs(60), ..SimConfig::default() };
//! let schedule = Schedule::new(vec![Contact::new(Time::from_secs(30), NodeId(0), NodeId(1), 4096)]);
//! let workload = Workload::new(vec![PacketSpec {
//!     time: Time::from_secs(1), src: NodeId(0), dst: NodeId(1), size_bytes: 1024,
//! }]);
//! let report = Simulation::new(config, schedule, workload)
//!     .run(&mut Rapid::new(RapidConfig::avg_delay()));
//! assert_eq!(report.delivered(), 1);
//! ```

pub mod cache;
pub mod config;
pub mod control;
pub mod dag_delay;
pub mod estimate;
pub mod meetings;
pub mod protocol;

pub use cache::DelayCache;
pub use config::{ChannelMode, RapidConfig, RoutingMetric};
pub use control::{HolderEntry, MetaTable, PacketBelief};
pub use dag_delay::{dag_delay, delay_of, estimate_delay_reference, QueueState};
pub use estimate::{
    combined_rate, delay_from_rate, expected_remaining_delay, meetings_needed,
    prob_delivered_within, prob_within_from_rate, replica_delay, Kernel, QueueSnapshot, RateBatch,
};
pub use meetings::{expected_meeting_times_from, MeetingView};
pub use protocol::Rapid;
