//! Meeting-time estimation for unknown mobility distributions (§4.1.2).
//!
//! "Every node tabulates the average time to meet every other node based on
//! past meeting times. Nodes exchange this table as part of metadata
//! exchanges. A node combines the metadata into a meeting-time adjacency
//! matrix ... E(M_XZ) is estimated as the expected time taken for X to meet
//! Z in at most h hops" (h = 3); pairs unreachable in h hops get infinity.
//!
//! Each node owns *its* row of the matrix (the averages of its own direct
//! meetings) and learns other rows through gossip; rows carry a
//! last-updated stamp and merge by last-writer-wins, so delayed gossip can
//! only ever be stale, never corrupting.

use dtn_sim::{NodeId, Time};
use dtn_stats::RunningMean;

/// One node's view of the fleet-wide meeting-time matrix.
#[derive(Debug, Clone)]
pub struct MeetingView {
    me: NodeId,
    n: usize,
    /// `rows[u][v]`: believed mean time (seconds) for `u` to meet `v`
    /// directly; `INFINITY` = never observed.
    rows: Vec<Vec<f64>>,
    /// Stamp of the information in `rows[u]` (when `u` last updated it).
    row_stamp: Vec<Time>,
    /// My own direct-meeting averages (the ground truth for `rows[me]`).
    my_avg: Vec<RunningMean>,
    /// Last time I met each peer (to form inter-meeting gaps).
    last_met: Vec<Option<Time>>,
}

impl MeetingView {
    /// Creates an empty view for node `me` in an `n`-node fleet.
    pub fn new(me: NodeId, n: usize) -> Self {
        Self {
            me,
            n,
            rows: vec![vec![f64::INFINITY; n]; n],
            row_stamp: vec![Time::ZERO; n],
            my_avg: vec![RunningMean::new(); n],
            last_met: vec![None; n],
        }
    }

    /// The owner of this view.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Records a direct meeting with `peer` at `now`, updating the
    /// inter-meeting average (the first meeting only sets the baseline).
    pub fn record_meeting(&mut self, peer: NodeId, now: Time) {
        assert_ne!(peer, self.me, "cannot meet self");
        let p = peer.index();
        if let Some(last) = self.last_met[p] {
            let gap = now.since(last).as_secs_f64();
            self.my_avg[p].observe(gap);
        }
        self.last_met[p] = Some(now);
        if let Some(mean) = self.my_avg[p].mean() {
            self.rows[self.me.index()][p] = mean;
        }
        self.row_stamp[self.me.index()] = now;
    }

    /// My believed mean direct inter-meeting time with `peer`, seconds.
    pub fn direct_mean(&self, peer: NodeId) -> f64 {
        self.rows[self.me.index()][peer.index()]
    }

    /// My own ground-truth row: mean direct inter-meeting times I observed.
    pub fn my_row(&self) -> &[f64] {
        &self.rows[self.me.index()]
    }

    /// Any believed row (mine is ground truth; others are gossip).
    pub fn row(&self, u: usize) -> &[f64] {
        &self.rows[u]
    }

    /// Rows updated after `since`, for the delta metadata exchange
    /// (§4.2: "only sends information about packets whose information
    /// changed since the last exchange" — same discipline for meeting rows).
    pub fn rows_changed_since(&self, since: Time) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.rows_changed_since_into(since, &mut out);
        out
    }

    /// [`MeetingView::rows_changed_since`] into a reusable buffer (the
    /// per-contact exchange path calls this with scratch storage).
    pub fn rows_changed_since_into(&self, since: Time, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            (0..self.n)
                .filter(|&u| {
                    self.row_stamp[u] > since && self.rows[u].iter().any(|v| v.is_finite())
                })
                .map(|u| NodeId(u as u32)),
        );
    }

    /// Merges `peer`'s view into mine: last-writer-wins per row, restricted
    /// to `rows` (what the channel actually carried).
    pub fn merge_rows_from(&mut self, other: &MeetingView, rows: &[NodeId]) {
        for &u in rows {
            let ui = u.index();
            // Never overwrite my own ground-truth row.
            if u == self.me {
                continue;
            }
            if other.row_stamp[ui] > self.row_stamp[ui] {
                self.rows[ui].clone_from(&other.rows[ui]);
                self.row_stamp[ui] = other.row_stamp[ui];
            }
        }
    }

    /// Expected time (seconds) for me to meet every destination within
    /// `hop_limit` hops: `h` rounds of relaxation over believed rows
    /// (Bellman–Ford limited to `h` edges). Unreachable ⇒ `INFINITY`
    /// (§4.1.2: "we set the expected inter-meeting time to infinity").
    pub fn expected_meeting_times(&self, hop_limit: usize) -> Vec<f64> {
        expected_meeting_times_from(&self.rows, self.me, hop_limit)
    }

    /// Checkpoint capture: the view's raw parts, owned. Meeting rows are
    /// mostly `INFINITY` in practice, so the caller is expected to encode
    /// them sparsely; this hands over the dense truth.
    pub fn checkpoint(&self) -> MeetingCheckpoint {
        MeetingCheckpoint {
            rows: self.rows.clone(),
            row_stamp: self.row_stamp.clone(),
            my_avg: self.my_avg.iter().map(|m| m.state()).collect(),
            last_met: self.last_met.clone(),
        }
    }

    /// Restores a checkpointed view onto this (freshly constructed) one.
    /// The parts must be shaped for the same `n` this view was built with.
    pub fn restore(&mut self, ck: MeetingCheckpoint) {
        assert_eq!(ck.rows.len(), self.n, "meeting checkpoint shape mismatch");
        assert!(ck.rows.iter().all(|r| r.len() == self.n));
        assert_eq!(ck.row_stamp.len(), self.n);
        assert_eq!(ck.my_avg.len(), self.n);
        assert_eq!(ck.last_met.len(), self.n);
        self.rows = ck.rows;
        self.row_stamp = ck.row_stamp;
        self.my_avg = ck
            .my_avg
            .into_iter()
            .map(|(mean, count)| RunningMean::from_state(mean, count))
            .collect();
        self.last_met = ck.last_met;
    }

    /// [`MeetingView::expected_meeting_times`] evaluated from an arbitrary
    /// start node `from` *through this view's believed rows*, written into
    /// reusable buffers — the allocation-free form the per-contact hot
    /// path uses (`from == me` for own estimates, `from == peer` for
    /// valuing the peer's position through learned rows). Bit-identical
    /// to [`expected_meeting_times_from`] over the same rows.
    pub fn expected_from_into(
        &self,
        from: NodeId,
        hop_limit: usize,
        dist: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
    ) {
        expected_meeting_times_from_into(&self.rows, from, hop_limit, dist, scratch);
    }
}

/// The raw parts of a [`MeetingView`] for checkpoint capture/restore:
/// believed rows, their stamps, the own-row running averages as
/// `(mean, count)` pairs, and the last-met instants.
#[derive(Debug, Clone, PartialEq)]
pub struct MeetingCheckpoint {
    /// Believed mean direct inter-meeting times, dense.
    pub rows: Vec<Vec<f64>>,
    /// Last-updated stamp per row.
    pub row_stamp: Vec<Time>,
    /// Own-row [`RunningMean`] states.
    pub my_avg: Vec<(f64, u64)>,
    /// Last direct meeting per peer.
    pub last_met: Vec<Option<Time>>,
}

/// [`expected_meeting_times_from`] into reusable buffers: `dist` receives
/// the result, `scratch` holds the per-round snapshot. No allocation once
/// the buffers have capacity `n`. The relaxation arithmetic (and thus the
/// result, bitwise) is identical to the allocating form.
pub fn expected_meeting_times_from_into(
    rows: &[Vec<f64>],
    src: NodeId,
    hop_limit: usize,
    dist: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    let n = rows.len();
    assert!(hop_limit >= 1, "need at least one hop");
    dist.clear();
    dist.extend_from_slice(&rows[src.index()]);
    dist[src.index()] = 0.0;
    for _ in 1..hop_limit {
        scratch.clear();
        scratch.extend_from_slice(dist);
        for (y, &dy) in scratch.iter().enumerate() {
            if !dy.is_finite() || y == src.index() {
                continue;
            }
            for z in 0..n {
                if z == src.index() {
                    continue;
                }
                let via = dy + rows[y][z];
                if via < dist[z] {
                    dist[z] = via;
                }
            }
        }
    }
    dist[src.index()] = 0.0;
}

/// h-hop expected meeting times from `src` over an arbitrary matrix of
/// believed direct means. Exposed for the ablation bench on `h`; the
/// buffer-reusing [`expected_meeting_times_from_into`] is the hot-path
/// form and this delegates to it.
pub fn expected_meeting_times_from(rows: &[Vec<f64>], src: NodeId, hop_limit: usize) -> Vec<f64> {
    let mut dist = Vec::new();
    let mut scratch = Vec::new();
    expected_meeting_times_from_into(rows, src, hop_limit, &mut dist, &mut scratch);
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn averages_form_from_gaps() {
        let mut v = MeetingView::new(NodeId(0), 3);
        assert!(v.direct_mean(NodeId(1)).is_infinite());
        v.record_meeting(NodeId(1), t(100));
        // One meeting: no gap yet, still unknown.
        assert!(v.direct_mean(NodeId(1)).is_infinite());
        v.record_meeting(NodeId(1), t(160));
        assert!((v.direct_mean(NodeId(1)) - 60.0).abs() < 1e-9);
        v.record_meeting(NodeId(1), t(260));
        assert!((v.direct_mean(NodeId(1)) - 80.0).abs() < 1e-9); // (60+100)/2
    }

    #[test]
    fn transitive_estimate_via_intermediary() {
        // 0 meets 1 every 50 s; 1 meets 2 every 70 s; 0 never meets 2.
        let mut v = MeetingView::new(NodeId(0), 3);
        v.record_meeting(NodeId(1), t(0));
        v.record_meeting(NodeId(1), t(50));
        // Gossip in node 1's row.
        let mut v1 = MeetingView::new(NodeId(1), 3);
        v1.record_meeting(NodeId(2), t(0));
        v1.record_meeting(NodeId(2), t(70));
        v.merge_rows_from(&v1, &[NodeId(1)]);

        let est = v.expected_meeting_times(3);
        assert!((est[1] - 50.0).abs() < 1e-9);
        assert!((est[2] - 120.0).abs() < 1e-9, "0→1→2 = 50 + 70");
        assert_eq!(est[0], 0.0);
    }

    #[test]
    fn hop_limit_bounds_reachability() {
        // Chain 0-1-2-3-4: with h=3, node 4 is 4 hops away → infinity.
        let mut rows = vec![vec![f64::INFINITY; 5]; 5];
        for i in 0..4usize {
            rows[i][i + 1] = 10.0;
            rows[i + 1][i] = 10.0;
        }
        let est3 = expected_meeting_times_from(&rows, NodeId(0), 3);
        assert!((est3[3] - 30.0).abs() < 1e-9);
        assert!(est3[4].is_infinite(), "4 hops exceeds h=3");
        let est4 = expected_meeting_times_from(&rows, NodeId(0), 4);
        assert!((est4[4] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_direct_when_cheaper() {
        let mut rows = vec![vec![f64::INFINITY; 3]; 3];
        rows[0][2] = 40.0;
        rows[0][1] = 10.0;
        rows[1][2] = 10.0;
        // Two-hop path 0→1→2 costs 20 < direct 40.
        let est = expected_meeting_times_from(&rows, NodeId(0), 3);
        assert!((est[2] - 20.0).abs() < 1e-9);
        // With h=1, only the direct edge counts.
        let est1 = expected_meeting_times_from(&rows, NodeId(0), 1);
        assert!((est1[2] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_last_writer_wins_and_protects_own_row() {
        let mut a = MeetingView::new(NodeId(0), 3);
        a.record_meeting(NodeId(1), t(0));
        a.record_meeting(NodeId(1), t(100)); // own row: mean 100

        let mut b = MeetingView::new(NodeId(1), 3);
        b.record_meeting(NodeId(2), t(0));
        b.record_meeting(NodeId(2), t(30));

        // Forge a stale copy of b and a fresh one; fresh must win.
        let stale = b.clone();
        b.record_meeting(NodeId(2), t(500)); // mean now (30 + 470)/2 = 250

        a.merge_rows_from(&b, &[NodeId(1)]);
        assert!((a.rows[1][2] - 250.0).abs() < 1e-9);
        a.merge_rows_from(&stale, &[NodeId(1)]);
        assert!(
            (a.rows[1][2] - 250.0).abs() < 1e-9,
            "stale must not regress"
        );

        // Merging someone's claim about MY row is ignored.
        let mut foreign = MeetingView::new(NodeId(2), 3);
        foreign.rows[0][1] = 1.0;
        foreign.row_stamp[0] = t(9999);
        a.merge_rows_from(&foreign, &[NodeId(0)]);
        assert!((a.direct_mean(NodeId(1)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn changed_rows_for_delta_exchange() {
        let mut v = MeetingView::new(NodeId(0), 3);
        v.record_meeting(NodeId(1), t(10));
        v.record_meeting(NodeId(1), t(20));
        assert_eq!(v.rows_changed_since(t(5)), vec![NodeId(0)]);
        assert!(v.rows_changed_since(t(20)).is_empty());
    }
}
