//! Protocol RAPID (§3.4) — the selection algorithm over the inference
//! machinery, wired to the simulator's [`Routing`] interface.
//!
//! At every transfer opportunity between `X` and `Y`:
//!
//! 1. **Initialization**: metadata exchange over the in-band channel
//!    (acks, meeting-time rows, average opportunity sizes, changed replica
//!    entries — §4.2), then purge of packets known to be delivered.
//! 2. **Direct delivery**: packets destined to the peer, in decreasing
//!    utility order.
//! 3. **Replication**: every other buffered packet is scored by marginal
//!    utility per byte `δU_i / s_i` (Eqs. 1–3 over Estimate Delay) and
//!    replicated in decreasing order until the opportunity is exhausted.
//! 4. **Termination**: implicit — the engine bounds each direction by the
//!    opportunity size.
//!
//! Storage: when a buffer overflows, the lowest-utility packets are dropped
//! first; a source never drops its own unacknowledged packet (§3.4).
//!
//! # Execution model
//!
//! All contact-time work runs through [`ContactExec`], which views the
//! per-node protocol states either as the full slice (serial execution,
//! required by the global-channel modes) or as exactly the contact's two
//! endpoint states ([`StatePair::Pair`], the intra-run parallel batch
//! path). That a contact compiles against the pair view is the proof that
//! RAPID's contact handling touches only per-endpoint state — the
//! property behind its [`ContactConcurrency::NodeDisjoint`] declaration.
//!
//! The steady-state contact is allocation-free: queue snapshots, h-hop
//! estimate vectors, candidate lists and exchange listings all live in a
//! reusable [`ContactScratch`] (one per worker under batch execution),
//! and contacts where both endpoints' buffers are empty skip the
//! snapshot/estimate setup entirely.

use crate::cache::DelayCache;
use crate::config::{wire, ChannelMode, RapidConfig, RoutingMetric};
use crate::control::{HolderEntry, MetaTable};
use crate::estimate::{
    combined_rate, delay_from_rate, meetings_needed, prob_within_from_rate, rate_contribution,
    replica_delay, InsertCursor, Kernel, QueueSnapshot, RateBatch,
};
use crate::meetings::{expected_meeting_times_from, MeetingView};
use dtn_sim::{
    ContactConcurrency, ContactDriver, ContactPool, NodeBuffer, NodeId, Packet, PacketId,
    PacketSet, PacketStore, Partition, QueueEntry, Routing, SimConfig, SlicePartition, Time,
    TransferOutcome,
};
use dtn_trace::{write_varint, ByteCursor};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

/// Relative change below which a refreshed delay estimate is not
/// republished (keeps the delta channel quiet when nothing moved).
const PUBLISH_THRESHOLD: f64 = 1.0;

/// Fraction of each opportunity available to third-party replica gossip
/// ("information about other packets", §4.2). Bounding this class keeps
/// total metadata at the paper's percent-of-data scale; see
/// `exchange_metadata`.
const THIRD_PARTY_FRACTION: f64 = 0.02;

/// Score assigned when replication newly makes a destination reachable —
/// larger than any finite delay gain, far below `f64::MAX` so age offsets
/// and size divisions stay meaningful.
const UNREACHABLE_GAIN: f64 = 1e18;

/// Per-node protocol state (beliefs only — the world lives in the engine).
#[derive(Debug, Clone)]
struct NodeState {
    meetings: MeetingView,
    meta: MetaTable,
    acks: PacketSet,
    /// Watermark of the last *complete* metadata send to each peer.
    last_sent: Vec<Time>,
    /// Average opportunity size observed by this node (bytes).
    avg_opp: dtn_stats::RunningMean,
    /// Believed average opportunity size of every node, with stamp.
    believed_opp: Vec<(f64, Time)>,
    /// h-hop expected meeting times, valid while `est_valid` (refreshed in
    /// place — never reallocated in steady state).
    est_cache: Vec<f64>,
    est_valid: bool,
    /// Incremental Eq. 4–9 rate cache (see `cache.rs`); invalidated by the
    /// lifecycle hooks and the contact/meta events below.
    cache: DelayCache,
    /// Lazily re-sorted eviction order derived from cached rates.
    evict_order: Option<EvictOrder>,
}

/// A sorted storage-eviction order, reusable while nothing invalidated the
/// rates it was derived from (the "lazy re-sorting" half of the cache).
#[derive(Debug, Clone)]
struct EvictOrder {
    /// [`DelayCache::version`] at build time; any invalidation outdates it.
    version: u64,
    /// Build instant: the order is only reusable at the same `now`. (For
    /// the delay metrics the order is clock-shift-invariant in *real*
    /// arithmetic — utilities are `-(age + A(i))` — but not in floating
    /// point, where a shift can round two distinct utilities into a tie
    /// and flip the id tie-break; the deadline metric is age-dependent
    /// outright. Same-instant reuse still covers the hot case: a burst of
    /// creations at one timestamp hammering a full buffer.)
    now: Time,
    /// `(id, size)` in ascending `(utility, id)` order: evict front first.
    order: Vec<(PacketId, u64)>,
}

impl NodeState {
    fn new(me: NodeId, n: usize) -> Self {
        Self {
            meetings: MeetingView::new(me, n),
            meta: MetaTable::new(),
            acks: PacketSet::new(),
            last_sent: vec![Time::ZERO; n],
            avg_opp: dtn_stats::RunningMean::new(),
            believed_opp: vec![(0.0, Time::ZERO); n],
            est_cache: Vec::new(),
            est_valid: false,
            cache: DelayCache::new(n),
            evict_order: None,
        }
    }
}

/// The RAPID routing protocol.
pub struct Rapid {
    cfg: RapidConfig,
    sim: SimConfig,
    states: Vec<NodeState>,
    /// Eq. 4–9 kernel for every batched rate evaluation (the `RAPID_KERNEL`
    /// knob; every kernel is bitwise-identical, see `estimate.rs`).
    kernel: Kernel,
    /// Reusable contact scratch; `[0]` serves serial execution, and the
    /// vector grows to the pool's worker count for batch execution (one
    /// scratch per worker — workers never share).
    scratch: Vec<ContactScratch>,
}

/// Reusable per-contact scratch storage (queue snapshots, estimate
/// vectors, rate rows, id/candidate/exchange lists): refilled at every
/// contact so steady-state contacts allocate nothing.
#[derive(Default)]
struct ContactScratch {
    snap_a: QueueSnapshot,
    snap_b: QueueSnapshot,
    destined: Vec<PacketId>,
    candidates: Vec<Candidate>,
    stored: HashSet<PacketId>,
    purge: Vec<PacketId>,
    /// h-hop estimates: own views and each side's view of the peer.
    est_x: Vec<f64>,
    est_y: Vec<f64>,
    est_y_from_x: Vec<f64>,
    est_x_from_y: Vec<f64>,
    /// Relaxation scratch for the estimate computations.
    relax: Vec<f64>,
    /// Batched Eq. 4–5 rows: own-side and peer-side replica delays of one
    /// delivery queue, evaluated whole-queue per kernel.
    row_self: RateBatch,
    row_peer: RateBatch,
    /// Cache-validity row for the batched `make_room` sweep.
    rate_row: Vec<Option<f64>>,
    /// Freshly recomputed `(id, rate)` pairs awaiting a `put_row`.
    fresh_rates: Vec<(PacketId, f64)>,
    /// Exchange listings (§4.2 delta channel).
    acks_new: Vec<PacketId>,
    changed_rows: Vec<NodeId>,
    changed: Vec<(PacketId, usize, Time)>,
    own_changed: Vec<(PacketId, usize, Time)>,
    third_changed: Vec<(PacketId, usize, Time)>,
}

impl ContactScratch {
    fn with_kernel(kernel: Kernel) -> Self {
        let mut s = Self::default();
        s.row_self.set_kernel(kernel);
        s.row_peer.set_kernel(kernel);
        s
    }
}

/// The per-node states an execution may address: the full slice (serial;
/// global modes read arbitrary nodes), exactly the two endpoints of a
/// contact (batch and sharded execution), or a single node (sharded
/// storage decisions — `make_room` is a one-node operation). Any access
/// outside the leased states is a bug and panics.
enum StatePair<'a> {
    Full(&'a mut [NodeState]),
    Pair {
        a: NodeId,
        sa: &'a mut NodeState,
        b: NodeId,
        sb: &'a mut NodeState,
    },
    Solo {
        x: NodeId,
        sx: &'a mut NodeState,
    },
}

impl StatePair<'_> {
    fn state(&self, x: NodeId) -> &NodeState {
        match self {
            StatePair::Full(states) => &states[x.index()],
            StatePair::Pair { a, sa, b, sb } => {
                if x == *a {
                    sa
                } else if x == *b {
                    sb
                } else {
                    panic!("{x} is outside this contact's state pair")
                }
            }
            StatePair::Solo { x: n, sx } => {
                if x == *n {
                    sx
                } else {
                    panic!("{x} is outside this solo state lease")
                }
            }
        }
    }

    fn state_mut(&mut self, x: NodeId) -> &mut NodeState {
        match self {
            StatePair::Full(states) => &mut states[x.index()],
            StatePair::Pair { a, sa, b, sb } => {
                if x == *a {
                    sa
                } else if x == *b {
                    sb
                } else {
                    panic!("{x} is outside this contact's state pair")
                }
            }
            StatePair::Solo { x: n, sx } => {
                if x == *n {
                    sx
                } else {
                    panic!("{x} is outside this solo state lease")
                }
            }
        }
    }

    /// Split-borrows two distinct node states.
    fn two(&mut self, x: NodeId, y: NodeId) -> (&mut NodeState, &mut NodeState) {
        assert_ne!(x, y);
        match self {
            StatePair::Full(states) => {
                let (xi, yi) = (x.index(), y.index());
                if xi < yi {
                    let (lo, hi) = states.split_at_mut(yi);
                    (&mut lo[xi], &mut hi[0])
                } else {
                    let (lo, hi) = states.split_at_mut(xi);
                    (&mut hi[0], &mut lo[yi])
                }
            }
            StatePair::Pair { a, sa, b, sb } => {
                if x == *a && y == *b {
                    (sa, sb)
                } else if x == *b && y == *a {
                    (sb, sa)
                } else {
                    panic!("({x}, {y}) is not this contact's state pair")
                }
            }
            StatePair::Solo { .. } => {
                panic!("({x}, {y}) requested from a solo state lease")
            }
        }
    }

    /// Every node state — global-channel paths only (always serial).
    fn all(&self) -> &[NodeState] {
        match self {
            StatePair::Full(states) => states,
            StatePair::Pair { .. } | StatePair::Solo { .. } => {
                unreachable!("global-knowledge paths never run under batch execution")
            }
        }
    }
}

/// One contact's execution context: configuration plus the states it may
/// touch. Every selection/exchange routine lives here so the serial and
/// batch paths share one implementation.
struct ContactExec<'a> {
    cfg: &'a RapidConfig,
    n: usize,
    states: StatePair<'a>,
}

impl Rapid {
    /// Creates a RAPID instance with the given configuration, evaluating
    /// rate rows with the `RAPID_KERNEL` kernel (default: best detected).
    pub fn new(cfg: RapidConfig) -> Self {
        Self::with_kernel(cfg, Kernel::from_env())
    }

    /// Creates a RAPID instance pinned to a specific Eq. 4–9 kernel
    /// (kernels are bitwise-interchangeable; this exists for equivalence
    /// tests and benchmarks).
    pub fn with_kernel(cfg: RapidConfig, kernel: Kernel) -> Self {
        Self {
            cfg,
            sim: SimConfig::default(),
            states: Vec::new(),
            kernel,
            scratch: vec![ContactScratch::with_kernel(kernel)],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RapidConfig {
        &self.cfg
    }

    /// The Eq. 4–9 kernel in use.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    fn is_global(&self) -> bool {
        matches!(self.cfg.channel, ChannelMode::InstantGlobal)
    }
}

impl ContactExec<'_> {
    fn is_global(&self) -> bool {
        matches!(self.cfg.channel, ChannelMode::InstantGlobal)
    }

    /// Applies the delay-estimate ceiling: replicas that cannot deliver
    /// within the cap are equivalent to the cap (see
    /// [`RapidConfig::delay_cap_secs`]).
    fn cap(&self, a: f64) -> f64 {
        a.min(self.cfg.delay_cap_secs)
    }

    /// Believed average transfer-opportunity size of `node`, bytes.
    fn opp_bytes(&self, believer: NodeId, node: NodeId) -> f64 {
        let (v, stamp) = self.states.state(believer).believed_opp[node.index()];
        if stamp > Time::ZERO && v > 0.0 {
            v
        } else {
            self.cfg.default_opportunity_bytes as f64
        }
    }

    /// `node`'s own opportunity average as the global channel reads it
    /// (any node's state — serial only).
    fn opp_bytes_global(&self, node: NodeId) -> f64 {
        let (v, stamp) = self.states.all()[node.index()].believed_opp[node.index()];
        if stamp > Time::ZERO && v > 0.0 {
            v
        } else {
            self.cfg.default_opportunity_bytes as f64
        }
    }

    /// h-hop expected meeting times over the instant global channel:
    /// ground-truth rows of every node, evaluated from `from`.
    fn estimate_times_global(&self, from: NodeId) -> Vec<f64> {
        let all = self.states.all();
        let rows: Vec<Vec<f64>> = (0..self.n)
            .map(|u| all[u].meetings.my_row().to_vec())
            .collect();
        expected_meeting_times_from(&rows, from, self.cfg.hop_limit)
    }

    /// Fills `out` with the h-hop expected meeting times as believed by
    /// `believer`, evaluated from `from`'s position (usually `believer`
    /// itself; evaluating the peer's position uses the learned rows).
    fn fill_est(&self, believer: NodeId, from: NodeId, out: &mut Vec<f64>, relax: &mut Vec<f64>) {
        if self.is_global() {
            let est = self.estimate_times_global(from);
            out.clear();
            out.extend_from_slice(&est);
        } else {
            self.states.state(believer).meetings.expected_from_into(
                from,
                self.cfg.hop_limit,
                out,
                relax,
            );
        }
    }

    /// Makes `node`'s estimate cache valid (recomputing it in place if a
    /// contact or churn invalidated it since the last refresh).
    fn ensure_est_cache(&mut self, node: NodeId, relax: &mut Vec<f64>) {
        if self.states.state(node).est_valid {
            return;
        }
        if self.is_global() {
            let est = self.estimate_times_global(node);
            let st = self.states.state_mut(node);
            st.est_cache.clear();
            st.est_cache.extend_from_slice(&est);
            st.est_valid = true;
        } else {
            let hop_limit = self.cfg.hop_limit;
            let st = self.states.state_mut(node);
            let NodeState {
                meetings,
                est_cache,
                est_valid,
                ..
            } = st;
            meetings.expected_from_into(node, hop_limit, est_cache, relax);
            *est_valid = true;
        }
    }

    /// The combined replica rate (Eqs. 4–9) of a buffered packet at `node`,
    /// computed from scratch with the given queue position: the own-replica
    /// delay from the h-hop estimates plus the believed remote-replica
    /// delays, folded into `Σ_j 1/a_j`.
    fn rate_with(&self, node: NodeId, packet: &Packet, bytes_ahead: u64) -> f64 {
        let state = self.states.state(node);
        // Hard assert in every build: a stale estimate cache would not
        // crash but silently misrank packets (the pre-refactor
        // `Option::expect` had the same release-mode teeth).
        assert!(
            state.est_valid,
            "estimate cache must be built before utility queries"
        );
        let est = &state.est_cache;
        let b_self = self.opp_bytes(node, node);
        let a_self = self.cap(replica_delay(
            est[packet.dst.index()],
            meetings_needed(bytes_ahead, b_self),
        ));
        self.rate_from_a_self(node, packet.id, a_self)
    }

    /// The remote-belief half of [`ContactExec::rate_with`]: folds the
    /// believed remote-replica delays of `id` with an already-computed
    /// own-replica delay — the exact sequence `rate_with` folds, so a
    /// batched `a_self` row produces bitwise-identical rates.
    fn rate_from_a_self(&self, node: NodeId, id: PacketId, a_self: f64) -> f64 {
        match self.states.state(node).meta.get(id) {
            Some(b) => combined_rate(
                b.entries
                    .iter()
                    .filter(|e| e.holder != node)
                    .map(|e| self.cap(e.delay_secs))
                    .chain([a_self]),
            ),
            None => combined_rate([a_self]),
        }
    }

    /// Utility of a buffered packet from its combined rate (for eviction
    /// ordering). Higher = more valuable to keep.
    fn utility_from_rate(&self, rate: f64, packet: &Packet, now: Time) -> f64 {
        let t = now.since(packet.created_at).as_secs_f64();
        match self.cfg.metric {
            RoutingMetric::MinAvgDelay | RoutingMetric::MinMaxDelay => -(t + delay_from_rate(rate)),
            RoutingMetric::MinMissedDeadlines { lifetime } => {
                let l = lifetime.as_secs_f64();
                if t >= l {
                    0.0
                } else {
                    prob_within_from_rate(rate, l - t)
                }
            }
        }
    }

    /// §3.4 storage decision: the lowest-utility victims freeing `needed`
    /// bytes at `node`. Touches only `node`'s state (that it runs under
    /// [`StatePair::Solo`] in sharded execution is the compile-time proof),
    /// so the serial, batch and sharded paths share this implementation.
    #[allow(clippy::too_many_arguments)]
    fn make_room(
        &mut self,
        node: NodeId,
        incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        packets: &PacketStore,
        now: Time,
        scratch: &mut ContactScratch,
    ) -> Vec<PacketId> {
        self.ensure_est_cache(node, &mut scratch.relax);
        // Lazy re-sorting: reuse the node's sorted eviction order while no
        // invalidation touched the cache (a dropped creation leaves the
        // order valid for the next storage decision); rebuild it from
        // cached rates — only dirty packets re-run Estimate Delay —
        // otherwise.
        let version = self.states.state(node).cache.version();
        let reusable = self
            .states
            .state(node)
            .evict_order
            .as_ref()
            .is_some_and(|o| o.version == version && o.now == now);
        if !reusable {
            let mut scored: Vec<(f64, PacketId, u64)> = Vec::with_capacity(buffer.len());
            let b_self = self.opp_bytes(node, node);
            let cap = self.cfg.delay_cap_secs;
            // Batched refresh, one delivery queue at a time: a single
            // cache-validity sweep per queue, then one kernel row over
            // just the dirty packets' queue positions (the per-queue
            // constants — destination estimate, opportunity size, cap —
            // broadcast across the row), then the remote-belief folds.
            // Valid entries are reused as-is (recomputation would be
            // bit-identical; re-verified under `debug_assertions`).
            for (dst, queue) in buffer.queues() {
                {
                    let state = self.states.state(node);
                    let misses = state.cache.sweep_queue(
                        dst,
                        queue.iter().map(|q| q.id),
                        &mut scratch.rate_row,
                    );
                    scratch.row_self.clear();
                    if misses > 0 {
                        let e_dst = state.est_cache[dst.index()];
                        for (entry, hit) in queue.iter().zip(&scratch.rate_row) {
                            if hit.is_none() {
                                scratch.row_self.push(entry.bytes_ahead);
                            }
                        }
                        scratch.row_self.compute(e_dst, b_self, cap);
                    }
                }
                let mut fresh = scratch.row_self.delays().iter();
                scratch.fresh_rates.clear();
                for (entry, hit) in queue.iter().zip(&scratch.rate_row) {
                    let p = packets.get(entry.id);
                    let rate = match *hit {
                        Some(rate) => {
                            #[cfg(debug_assertions)]
                            {
                                let from_scratch = self.rate_with(node, &p, entry.bytes_ahead);
                                debug_assert!(
                                    rate.to_bits() == from_scratch.to_bits(),
                                    "stale delay-cache entry for {} at {node}: \
                                     cached {rate}, fresh {from_scratch}",
                                    entry.id,
                                );
                            }
                            rate
                        }
                        None => {
                            let a_self = *fresh.next().expect("one row value per miss");
                            let rate = self.rate_from_a_self(node, entry.id, a_self);
                            scratch.fresh_rates.push((entry.id, rate));
                            rate
                        }
                    };
                    scored.push((
                        self.utility_from_rate(rate, &p, now),
                        entry.id,
                        entry.size_bytes,
                    ));
                }
                self.states
                    .state_mut(node)
                    .cache
                    .put_row(dst, scratch.fresh_rates.drain(..));
            }
            // Lowest utility evicted first; id tiebreak for determinism.
            scored.sort_unstable_by(|a, b| cmp_utility_then_id((a.0, a.1), (b.0, b.1)));
            self.states.state_mut(node).evict_order = Some(EvictOrder {
                version,
                now,
                order: scored.into_iter().map(|(_, id, size)| (id, size)).collect(),
            });
        }

        // §3.4 protects a source's own unacked packets from being displaced
        // by *incoming replicas*; when the incoming packet is the node's own
        // creation, the source manages its own queue and may shed its own
        // lowest-utility packets (otherwise a saturated source would drop
        // every new packet at birth).
        let own_creation = incoming.src == node;
        let state = self.states.state(node);
        let order = &state.evict_order.as_ref().expect("just ensured").order;
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for &(id, size) in order {
            if freed >= needed {
                break;
            }
            let p = packets.get(id);
            if own_creation || p.src != node || state.acks.contains(id) {
                victims.push(id);
                freed += size;
            }
        }

        #[cfg(debug_assertions)]
        self.assert_victims_match_reference(node, own_creation, needed, buffer, packets, now, {
            if freed >= needed {
                &victims
            } else {
                &[]
            }
        });

        if freed >= needed {
            for &v in &victims {
                let dst = packets.get(v).dst;
                let st = self.states.state_mut(node);
                st.meta.remove_holder(v, node);
                // The eviction changes this queue's positions and v's own
                // remote-belief set: dirty both.
                st.cache.touch_dst(dst);
                st.cache.touch_packet(v);
            }
            victims
        } else {
            Vec::new()
        }
    }
}

/// The two whole-queue Eq. 4–5 rate rows of one enumeration — own-side
/// and peer-side replica delays — borrowed from the contact scratch and
/// refilled per destination queue.
struct RateRows<'a> {
    own: &'a mut RateBatch,
    peer: &'a mut RateBatch,
}

/// One replication candidate, scored.
struct Candidate {
    id: PacketId,
    score: f64,
    size: u64,
    a_self: f64,
    a_peer: f64,
}

/// Where a replication side reads *contact-start* queue state from.
///
/// The default is a materialized [`QueueSnapshot`]. When this contact
/// provably cannot overflow either buffer (each direction's opportunity
/// fits in the peer's free space, so `NeedsSpace` is impossible), the
/// sides that are untouched between contact start and their last read can
/// serve reads straight from the live buffer — skipping the snapshot copy:
///
/// * the first replicating side reads its own queues before any transfer
///   has happened, and its peer's queues are only mutated by its own
///   transfer loop *after* enumeration finished;
/// * the second side's *own* queues have been mutated by then (its snapshot
///   is always materialized), but its peer — the first side — never loses
///   or gains a replica mid-contact without overflow evictions.
#[derive(Clone, Copy)]
enum QueueView<'a> {
    /// Live buffer of this node, provably identical to contact-start state
    /// for every queue the reader consults.
    Live(NodeId),
    /// Materialized contact-start snapshot.
    Snap(&'a QueueSnapshot),
}

impl QueueView<'_> {
    /// Cursor over the `dst` queue for monotone hypothetical-insert reads.
    fn insert_cursor<'d>(&self, driver: &'d ContactDriver<'_>, dst: NodeId) -> InsertCursor<'d>
    where
        Self: 'd,
    {
        match *self {
            QueueView::Live(node) => InsertCursor::over(driver.buffer(node).queue(dst)),
            QueueView::Snap(snap) => snap.insert_cursor(dst),
        }
    }

    /// Contact-start `b(i)` of a stored packet (overflow-eviction scoring).
    fn bytes_ahead(
        &self,
        _driver: &ContactDriver<'_>,
        dst: NodeId,
        id: PacketId,
        created_at: Time,
    ) -> u64 {
        match *self {
            // Live views exist only for contacts where `NeedsSpace` is
            // impossible (see `QueueView`), and this read only happens on
            // the `NeedsSpace` eviction path.
            QueueView::Live(_) => {
                unreachable!("live queue view consulted for overflow eviction")
            }
            QueueView::Snap(snap) => snap.bytes_ahead(dst, id, created_at),
        }
    }
}

impl Routing for Rapid {
    fn name(&self) -> String {
        let metric = match self.cfg.metric {
            RoutingMetric::MinAvgDelay => "avg-delay",
            RoutingMetric::MinMissedDeadlines { .. } => "deadline",
            RoutingMetric::MinMaxDelay => "max-delay",
        };
        let channel = match self.cfg.channel {
            ChannelMode::InBand { cap_fraction: None } => "in-band".to_string(),
            ChannelMode::InBand {
                cap_fraction: Some(f),
            } => format!("in-band:{f:.2}"),
            ChannelMode::LocalOnly => "local".to_string(),
            ChannelMode::InstantGlobal => "global".to_string(),
        };
        format!("RAPID({metric},{channel})")
    }

    fn on_init(&mut self, config: &SimConfig) {
        assert!(
            !matches!(self.cfg.channel, ChannelMode::InstantGlobal)
                || config.allow_global_knowledge,
            "InstantGlobal RAPID requires SimConfig::allow_global_knowledge"
        );
        self.sim = config.clone();
        self.states = (0..config.nodes)
            .map(|i| NodeState::new(NodeId(i as u32), config.nodes))
            .collect();
    }

    fn make_room(
        &mut self,
        node: NodeId,
        incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        packets: &PacketStore,
        now: Time,
    ) -> Vec<PacketId> {
        let n = self.states.len();
        let (cfg, states, scratch) = (&self.cfg, &mut self.states, &mut self.scratch[0]);
        let mut exec = ContactExec {
            cfg,
            n,
            states: StatePair::Full(states),
        };
        exec.make_room(node, incoming, needed, buffer, packets, now, scratch)
    }
    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let n = self.states.len();
        let (cfg, states, scratch) = (&self.cfg, &mut self.states, &mut self.scratch[0]);
        let mut exec = ContactExec {
            cfg,
            n,
            states: StatePair::Full(states),
        };
        exec.contact(driver, scratch);
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        // Non-global contacts compile against the two-endpoint state view
        // (see `StatePair::Pair`), so node-disjoint contacts commute; the
        // global channel reads arbitrary nodes' states and stays serial.
        if self.is_global() {
            ContactConcurrency::Serial
        } else {
            ContactConcurrency::NodeDisjoint
        }
    }

    fn on_contact_batch(&mut self, batch: &mut [ContactDriver<'_>], pool: &ContactPool) {
        debug_assert!(!self.is_global(), "global channel declared Serial");
        let workers = pool.workers();
        if self.scratch.len() < workers {
            let kernel = self.kernel;
            self.scratch
                .resize_with(workers, || ContactScratch::with_kernel(kernel));
        }
        let n = self.states.len();
        let cfg = &self.cfg;
        let states = SlicePartition::new(&mut self.states);
        let scratches = SlicePartition::new(&mut self.scratch);
        let drivers = SlicePartition::new(batch);
        pool.run(drivers.len(), &|worker, i| {
            // SAFETY: each batch index is claimed by exactly one worker
            // (`ContactPool::run`); drivers are node-disjoint (the
            // engine's batch contract), so the two state slots of driver
            // `i` are borrowed by no other concurrent execution; each
            // worker uses only its own scratch slot.
            let driver = unsafe { drivers.get_mut(i) };
            let (a, b) = driver.endpoints();
            let (sa, sb) = unsafe { states.pair_mut(a.index(), b.index()) };
            let scratch = unsafe { scratches.get_mut(worker) };
            let mut exec = ContactExec {
                cfg,
                n,
                states: StatePair::Pair { a, sa, b, sb },
            };
            exec.contact(driver, scratch);
        });
    }

    fn on_shard_epoch(
        &mut self,
        partition: &Partition,
        pool: &ContactPool,
        drain: &(dyn Fn(usize, &mut dyn Routing) + Sync),
    ) -> bool {
        debug_assert!(!self.is_global(), "global channel declared Serial");
        let shards = partition.shards();
        if self.scratch.len() < shards {
            let kernel = self.kernel;
            self.scratch
                .resize_with(shards, || ContactScratch::with_kernel(kernel));
        }
        let n = self.states.len();
        let cfg = &self.cfg;
        let states = SlicePartition::new(&mut self.states);
        let scratches = SlicePartition::new(&mut self.scratch);
        pool.run(shards, &|_worker, s| {
            // SAFETY: partition ranges are disjoint and each shard index
            // is claimed by exactly one worker (`ContactPool::run`), so
            // shard `s`'s run of node states and scratch slot `s` are
            // borrowed by no other concurrent execution. The drained
            // messages address only nodes the shard owns (the director's
            // routing contract), which `RapidShardView` enforces by
            // construction: its lease is exactly `partition.range(s)`.
            let range = partition.range(s);
            let base = range.start;
            let mut view = RapidShardView {
                cfg,
                n,
                base,
                states: unsafe { states.range_mut(range) },
                scratch: unsafe { scratches.get_mut(s) },
            };
            drain(s, &mut view);
        });
        true
    }

    fn on_packet_created(&mut self, packet: &Packet) {
        // The source's delivery queue for this destination gained an entry.
        let st = &mut self.states[packet.src.index()];
        st.cache.touch_dst(packet.dst);
        st.cache.touch_packet(packet.id);
    }

    fn on_packet_expired(&mut self, packet: &Packet) {
        // The engine evicted every replica: any holder's queue for this
        // destination may have changed. Holders are not tracked here, so
        // dirty the destination at every node (cheap: one counter each).
        for st in &mut self.states {
            st.cache.touch_dst(packet.dst);
            st.cache.touch_packet(packet.id);
        }
    }

    fn on_node_up(&mut self, node: NodeId, _now: Time) {
        self.states[node.index()].cache.invalidate_all();
    }

    fn on_node_down(&mut self, node: NodeId, _now: Time) {
        self.states[node.index()].cache.invalidate_all();
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        write_varint(&mut out, self.states.len() as u64);
        for st in &self.states {
            encode_node_state(&mut out, st);
        }
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut cur = ByteCursor::new(bytes);
        let n = cur.varint().map_err(|e| format!("node count: {e}"))? as usize;
        if n != self.states.len() {
            return Err(format!(
                "RAPID state for {n} nodes, world has {}",
                self.states.len()
            ));
        }
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let mut st = NodeState::new(NodeId(i as u32), n);
            decode_node_state(&mut cur, &mut st, n)
                .map_err(|e| format!("node {i} (offset {}): {e}", cur.offset()))?;
            states.push(st);
        }
        if !cur.is_empty() {
            return Err(format!(
                "{} trailing bytes after RAPID state",
                cur.remaining()
            ));
        }
        self.states = states;
        Ok(())
    }
}

/// Appends one node's checkpointable belief state. Derived/caching fields
/// (`est_cache`, `cache`, `evict_order`) are rebuilt empty on restore —
/// they are lazily recomputed and never observed directly. All sparse maps
/// iterate in ascending peer/slot order, so a save of a restored instance
/// is byte-identical.
fn encode_node_state(out: &mut Vec<u8>, st: &NodeState) {
    let f64_bytes = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());

    // Meeting view: rows are mostly INFINITY, so emit only rows that carry
    // information (a stamp or any finite mean), and within a row only the
    // finite cells — restore starts from the INFINITY matrix.
    let mv = st.meetings.checkpoint();
    let live_rows: Vec<usize> = (0..mv.rows.len())
        .filter(|&u| mv.row_stamp[u] != Time::ZERO || mv.rows[u].iter().any(|v| v.is_finite()))
        .collect();
    write_varint(out, live_rows.len() as u64);
    for u in live_rows {
        write_varint(out, u as u64);
        write_varint(out, mv.row_stamp[u].0);
        let finite: Vec<usize> = (0..mv.rows[u].len())
            .filter(|&c| mv.rows[u][c].is_finite())
            .collect();
        write_varint(out, finite.len() as u64);
        for c in finite {
            write_varint(out, c as u64);
            f64_bytes(out, mv.rows[u][c]);
        }
    }
    let avgs: Vec<usize> = (0..mv.my_avg.len())
        .filter(|&p| mv.my_avg[p].1 > 0)
        .collect();
    write_varint(out, avgs.len() as u64);
    for p in avgs {
        write_varint(out, p as u64);
        f64_bytes(out, mv.my_avg[p].0);
        write_varint(out, mv.my_avg[p].1);
    }
    let met: Vec<usize> = (0..mv.last_met.len())
        .filter(|&p| mv.last_met[p].is_some())
        .collect();
    write_varint(out, met.len() as u64);
    for p in met {
        write_varint(out, p as u64);
        write_varint(out, mv.last_met[p].unwrap().0);
    }

    // Replica beliefs, in slot (first-heard) order so restore reproduces
    // the interner's slot assignment exactly.
    let beliefs: Vec<_> = st.meta.iter_live().collect();
    write_varint(out, beliefs.len() as u64);
    for (id, belief) in beliefs {
        write_varint(out, id.0 as u64);
        write_varint(out, belief.changed_at.0);
        write_varint(out, belief.entries.len() as u64);
        for e in &belief.entries {
            write_varint(out, e.holder.0 as u64);
            f64_bytes(out, e.delay_secs);
            write_varint(out, e.stamp.0);
        }
    }

    write_varint(out, st.acks.len() as u64);
    for id in st.acks.iter() {
        write_varint(out, id.0 as u64);
    }

    let sent: Vec<usize> = (0..st.last_sent.len())
        .filter(|&p| st.last_sent[p] != Time::ZERO)
        .collect();
    write_varint(out, sent.len() as u64);
    for p in sent {
        write_varint(out, p as u64);
        write_varint(out, st.last_sent[p].0);
    }

    let (mean, count) = st.avg_opp.state();
    f64_bytes(out, mean);
    write_varint(out, count);

    let opp: Vec<usize> = (0..st.believed_opp.len())
        .filter(|&p| st.believed_opp[p] != (0.0, Time::ZERO))
        .collect();
    write_varint(out, opp.len() as u64);
    for p in opp {
        write_varint(out, p as u64);
        f64_bytes(out, st.believed_opp[p].0);
        write_varint(out, st.believed_opp[p].1 .0);
    }
}

/// Restores one node's belief state onto a fresh [`NodeState`]. Inverse of
/// [`encode_node_state`]; every index is validated against `n`.
fn decode_node_state(
    cur: &mut dtn_trace::ByteCursor<'_>,
    st: &mut NodeState,
    n: usize,
) -> Result<(), String> {
    let wire = |e: dtn_trace::WireError| e.to_string();
    let f64_at = |cur: &mut dtn_trace::ByteCursor<'_>| -> Result<f64, String> {
        let b = cur.take(8).map_err(wire)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    };
    let peer = |v: u64| -> Result<usize, String> {
        let p = v as usize;
        if p >= n {
            return Err(format!("peer index {p} out of range (n={n})"));
        }
        Ok(p)
    };

    let mut mv = crate::meetings::MeetingCheckpoint {
        rows: vec![vec![f64::INFINITY; n]; n],
        row_stamp: vec![Time::ZERO; n],
        my_avg: vec![(0.0, 0); n],
        last_met: vec![None; n],
    };
    let rows = cur.varint().map_err(wire)?;
    for _ in 0..rows {
        let u = peer(cur.varint().map_err(wire)?)?;
        mv.row_stamp[u] = Time(cur.varint().map_err(wire)?);
        let cells = cur.varint().map_err(wire)?;
        for _ in 0..cells {
            let c = peer(cur.varint().map_err(wire)?)?;
            mv.rows[u][c] = f64_at(cur)?;
        }
    }
    let avgs = cur.varint().map_err(wire)?;
    for _ in 0..avgs {
        let p = peer(cur.varint().map_err(wire)?)?;
        let mean = f64_at(cur)?;
        let count = cur.varint().map_err(wire)?;
        mv.my_avg[p] = (mean, count);
    }
    let met = cur.varint().map_err(wire)?;
    for _ in 0..met {
        let p = peer(cur.varint().map_err(wire)?)?;
        mv.last_met[p] = Some(Time(cur.varint().map_err(wire)?));
    }
    st.meetings.restore(mv);

    let beliefs = cur.varint().map_err(wire)?;
    for _ in 0..beliefs {
        let id =
            PacketId(u32::try_from(cur.varint().map_err(wire)?).map_err(|_| "packet id overflow")?);
        let changed_at = Time(cur.varint().map_err(wire)?);
        let entries_len = cur.varint().map_err(wire)?;
        let mut entries = Vec::with_capacity(entries_len.min(1 << 16) as usize);
        for _ in 0..entries_len {
            let holder = NodeId(peer(cur.varint().map_err(wire)?)? as u32);
            let delay_secs = f64_at(cur)?;
            let stamp = Time(cur.varint().map_err(wire)?);
            entries.push(HolderEntry {
                holder,
                delay_secs,
                stamp,
            });
        }
        if !entries.windows(2).all(|w| w[0].holder < w[1].holder) {
            return Err(format!("belief entries for packet {} not sorted", id.0));
        }
        st.meta.restore_belief(
            id,
            crate::control::PacketBelief {
                entries,
                changed_at,
            },
        );
    }

    let acks = cur.varint().map_err(wire)?;
    let mut prev: Option<u32> = None;
    for _ in 0..acks {
        let id = u32::try_from(cur.varint().map_err(wire)?).map_err(|_| "ack id overflow")?;
        if prev.is_some_and(|p| p >= id) {
            return Err("ack ids not strictly ascending".into());
        }
        prev = Some(id);
        st.acks.insert(PacketId(id));
    }

    let sent = cur.varint().map_err(wire)?;
    for _ in 0..sent {
        let p = peer(cur.varint().map_err(wire)?)?;
        st.last_sent[p] = Time(cur.varint().map_err(wire)?);
    }

    let mean = f64_at(cur)?;
    let count = cur.varint().map_err(wire)?;
    st.avg_opp = dtn_stats::RunningMean::from_state(mean, count);

    let opp = cur.varint().map_err(wire)?;
    for _ in 0..opp {
        let p = peer(cur.varint().map_err(wire)?)?;
        let size = f64_at(cur)?;
        let stamp = Time(cur.varint().map_err(wire)?);
        st.believed_opp[p] = (size, stamp);
    }
    Ok(())
}

/// One shard's lease over its contiguous run of RAPID node states during
/// a sharded epoch ([`Rapid::on_shard_epoch`]). The director delivers the
/// epoch's messages through the [`Routing`] interface with *global* node
/// ids; every hook here re-bases them onto the local subslice, so a
/// message addressing a node outside the shard's partition range is an
/// out-of-bounds panic rather than a data race.
///
/// Cross-endpoint effects need no special handling: an intra-shard
/// contact owns both endpoint states ([`StatePair::Pair`]), and
/// cross-shard contacts are director barriers that run on the coordinator
/// instance with the full slice — the in-band metadata rows those
/// contacts exchange flow through the same serial path as before.
struct RapidShardView<'a> {
    cfg: &'a RapidConfig,
    /// Total node count (estimate vectors are world-sized even though the
    /// lease is not).
    n: usize,
    /// First node id owned by this shard; local index = `id - base`.
    base: usize,
    states: &'a mut [NodeState],
    scratch: &'a mut ContactScratch,
}

impl RapidShardView<'_> {
    fn local_mut(&mut self, node: NodeId) -> &mut NodeState {
        &mut self.states[node.index() - self.base]
    }
}

impl Routing for RapidShardView<'_> {
    fn name(&self) -> String {
        "RAPID(shard-view)".into()
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        ContactConcurrency::NodeDisjoint
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        let (ai, bi) = (a.index() - self.base, b.index() - self.base);
        let (sa, sb) = if ai < bi {
            let (lo, hi) = self.states.split_at_mut(bi);
            (&mut lo[ai], &mut hi[0])
        } else {
            let (lo, hi) = self.states.split_at_mut(ai);
            (&mut hi[0], &mut lo[bi])
        };
        let mut exec = ContactExec {
            cfg: self.cfg,
            n: self.n,
            states: StatePair::Pair { a, sa, b, sb },
        };
        exec.contact(driver, self.scratch);
    }

    fn make_room(
        &mut self,
        node: NodeId,
        incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        packets: &PacketStore,
        now: Time,
    ) -> Vec<PacketId> {
        let sx = &mut self.states[node.index() - self.base];
        let mut exec = ContactExec {
            cfg: self.cfg,
            n: self.n,
            states: StatePair::Solo { x: node, sx },
        };
        exec.make_room(node, incoming, needed, buffer, packets, now, self.scratch)
    }

    fn on_packet_created(&mut self, packet: &Packet) {
        let (dst, id) = (packet.dst, packet.id);
        let st = self.local_mut(packet.src);
        st.cache.touch_dst(dst);
        st.cache.touch_packet(id);
    }

    fn on_packet_expired(&mut self, _packet: &Packet) {
        unreachable!("TTL expiry is a director barrier and runs on the coordinator instance")
    }

    fn on_node_up(&mut self, node: NodeId, _now: Time) {
        self.local_mut(node).cache.invalidate_all();
    }

    fn on_node_down(&mut self, node: NodeId, _now: Time) {
        self.local_mut(node).cache.invalidate_all();
    }
}

impl ContactExec<'_> {
    /// One full contact (Steps 1–3 plus state bounding). `scratch` is this
    /// execution's reusable storage; under batch execution each worker
    /// brings its own.
    fn contact(&mut self, driver: &mut ContactDriver<'_>, scratch: &mut ContactScratch) {
        let (a, b) = driver.endpoints();
        let now = driver.now();
        let full_opp = driver.remaining_bytes(a);

        // --- Record the meeting and the opportunity size.
        for (x, y) in [(a, b), (b, a)] {
            let st = self.states.state_mut(x);
            st.meetings.record_meeting(y, now);
            st.avg_opp.observe(full_opp as f64);
            let avg = st.avg_opp.mean_or(0.0);
            st.believed_opp[x.index()] = (avg, now);
            st.est_valid = false;
            // Node-level inputs (estimates, opportunity averages, and the
            // rows/acks/beliefs about to be exchanged) change at a contact:
            // one epoch bump invalidates every cached rate at this node.
            st.cache.invalidate_all();
        }

        // --- Step 1: metadata exchange (in-band modes only).
        match self.cfg.channel {
            ChannelMode::InBand { cap_fraction } => {
                let budget = cap_fraction
                    .map(|f| (f * full_opp as f64) as u64)
                    .unwrap_or(u64::MAX);
                self.exchange_metadata(driver, a, b, budget, full_opp, false, scratch);
                self.exchange_metadata(driver, b, a, budget, full_opp, false, scratch);
            }
            ChannelMode::LocalOnly => {
                self.exchange_metadata(driver, a, b, u64::MAX, full_opp, true, scratch);
                self.exchange_metadata(driver, b, a, u64::MAX, full_opp, true, scratch);
            }
            ChannelMode::InstantGlobal => {}
        }

        // --- Purge packets known to be delivered (acks / global truth).
        for x in [a, b] {
            // Filter while iterating; only the (few) hits are collected
            // into reusable scratch — the eviction below mutates the
            // buffer, so a snapshot of the hits is still required.
            scratch.purge.clear();
            {
                let is_global = self.is_global();
                let state = self.states.state(x);
                scratch
                    .purge
                    .extend(driver.buffer(x).iter().map(|(id, _)| id).filter(|&id| {
                        if is_global {
                            driver.global().is_delivered(id)
                        } else {
                            state.acks.contains(id)
                        }
                    }));
            }
            for &id in &scratch.purge {
                driver.evict(x, id);
                self.states.state_mut(x).meta.remove_packet(id);
            }
        }

        // --- Fast path: with both buffers empty there is nothing to
        // deliver, replicate, score or snapshot — skip the estimate and
        // snapshot setup entirely. (`est_valid` stays false; a later
        // `make_room` recomputes from the same post-meeting inputs,
        // bit-identically.)
        if driver.buffer(a).is_empty() && driver.buffer(b).is_empty() {
            self.bound_meta(driver, a, b);
            return;
        }

        // --- Build per-side context: estimates and queue snapshots.
        let ContactScratch {
            snap_a,
            snap_b,
            destined,
            candidates,
            stored,
            est_x: est_a,
            est_y: est_b,
            est_y_from_x: est_b_from_a,
            est_x_from_y: est_a_from_b,
            relax,
            row_self,
            row_peer,
            ..
        } = scratch;
        self.fill_est(a, a, est_a, relax);
        self.fill_est(b, b, est_b, relax);
        // How each side values the *peer's* position (for a_peer): seen
        // through its own learned rows.
        self.fill_est(a, b, est_b_from_a, relax);
        self.fill_est(b, a, est_a_from_b, relax);
        // Contact-start queue state for scoring, even as transfers mutate
        // the buffers mid-contact. The second replicating side always needs
        // a materialized copy of its own queues (the first side mutates
        // them); the first side's queues stay untouched for every read this
        // contact performs, so its copy is skipped whenever buffer overflow
        // — the only other snapshot reader, via `NeedsSpace` eviction — is
        // impossible: data into a buffer is bounded by the opportunity, so
        // an opportunity that fits in the peer's free space cannot trigger
        // it.
        let overflow_possible = driver.remaining_bytes(a) > driver.buffer(b).free_bytes()
            || driver.remaining_bytes(b) > driver.buffer(a).free_bytes();
        snap_b.refill_from_buffer(driver.buffer(b));
        let view_b = QueueView::Snap(snap_b);
        let view_a = if overflow_possible {
            snap_a.refill_from_buffer(driver.buffer(a));
            QueueView::Snap(snap_a)
        } else {
            QueueView::Live(a)
        };
        for (x, est) in [(a, &*est_a), (b, &*est_b)] {
            let st = self.states.state_mut(x);
            st.est_cache.clear();
            st.est_cache.extend_from_slice(est);
            st.est_valid = true;
        }

        // --- Step 2: direct delivery, both sides.
        for (x, y) in [(a, b), (b, a)] {
            self.direct_delivery(driver, x, y, now, destined);
        }

        // --- Step 3: replication, both sides.
        stored.clear();
        self.replicate_side(
            driver,
            a,
            b,
            est_a,
            est_b_from_a,
            view_a,
            view_b,
            now,
            stored,
            candidates,
            row_self,
            row_peer,
        );
        self.replicate_side(
            driver,
            b,
            a,
            est_b,
            est_a_from_b,
            view_b,
            view_a,
            now,
            stored,
            candidates,
            row_self,
            row_peer,
        );

        self.bound_meta(driver, a, b);
    }

    /// Bounds each endpoint's control state (§4.2 table cap).
    fn bound_meta(&mut self, driver: &ContactDriver<'_>, a: NodeId, b: NodeId) {
        for x in [a, b] {
            let cap = self.cfg.meta_entry_cap;
            let buffer = driver.buffer(x);
            self.states
                .state_mut(x)
                .meta
                .prune(cap, |id| buffer.contains(id));
        }
    }

    /// Step 2: deliver packets destined to the peer, highest utility first.
    /// For the deadline metric, expired packets go last (their utility is
    /// 0); otherwise the queue order is decreasing `T(i)` (§4.1).
    ///
    /// The buffer's delivery queue for `y` is already in `(created_at, id)`
    /// order — exactly the delivery order — so no sort is needed: the
    /// deadline metric's expired packets form the (oldest) queue prefix,
    /// which is rotated to the back.
    fn direct_delivery(
        &mut self,
        driver: &mut ContactDriver<'_>,
        x: NodeId,
        y: NodeId,
        now: Time,
        destined: &mut Vec<PacketId>,
    ) {
        let queue = driver.buffer(x).queue(y);
        destined.clear();
        match self.cfg.metric {
            RoutingMetric::MinMissedDeadlines { lifetime } => {
                // `since` saturates and the queue is created-ascending, so
                // the expired predicate is monotone along it.
                let split = queue.partition_point(|e| now.since(e.created_at) >= lifetime);
                destined.extend(queue[split..].iter().chain(&queue[..split]).map(|e| e.id));
            }
            _ => destined.extend(queue.iter().map(|e| e.id)),
        };
        for &id in destined.iter() {
            match driver.try_transfer(x, id) {
                TransferOutcome::Delivered | TransferOutcome::DeliveredDuplicate => {
                    // Both endpoints witnessed the delivery: instant ack.
                    let (sx, sy) = self.states.two(x, y);
                    sx.acks.insert(id);
                    sy.acks.insert(id);
                    sx.meta.remove_packet(id);
                    sy.meta.remove_packet(id);
                }
                TransferOutcome::NoBandwidth => break,
                _ => {}
            }
        }
    }

    /// Step 3 for one side: score candidates by marginal utility per byte
    /// and replicate greedily.
    #[allow(clippy::too_many_arguments)]
    fn replicate_side(
        &mut self,
        driver: &mut ContactDriver<'_>,
        x: NodeId,
        y: NodeId,
        est_x: &[f64],
        est_y: &[f64],
        snap_x: QueueView<'_>,
        snap_y: QueueView<'_>,
        now: Time,
        stored_this_contact: &mut HashSet<PacketId>,
        candidates: &mut Vec<Candidate>,
        row_self: &mut RateBatch,
        row_peer: &mut RateBatch,
    ) {
        let b_x = self.opp_bytes(x, x);
        let b_y = if self.is_global() {
            self.opp_bytes_global(y)
        } else {
            self.opp_bytes(x, y)
        };

        // Global-mode caches: per-holder estimates and queue snapshots.
        let mut global_est: HashMap<u32, Vec<f64>> = HashMap::new();
        let mut global_snap: HashMap<u32, QueueSnapshot> = HashMap::new();

        // Candidates are enumerated per destination queue of the
        // contact-start view: along a queue the own-side `b(i)` is an
        // O(1) prefix read, and the peer-side insertion point advances
        // monotonically (one cursor per destination) instead of a binary
        // search per packet. Enumeration order cannot affect decisions —
        // `sort_candidates` imposes a strict total order ((score, id), ids
        // unique) and every other per-packet effect is independent — but
        // the candidate *set* must match the live buffer: snapshot entries
        // evicted mid-contact are skipped via the O(1) membership check.
        candidates.clear();
        let rows = RateRows {
            own: row_self,
            peer: row_peer,
        };
        match snap_x {
            QueueView::Live(node) => self.enumerate_queues(
                driver,
                driver.buffer(node).queues(),
                x,
                y,
                snap_y,
                est_x,
                est_y,
                b_x,
                b_y,
                now,
                candidates,
                rows,
                &mut global_est,
                &mut global_snap,
            ),
            QueueView::Snap(snap) => self.enumerate_queues(
                driver,
                snap.queues(),
                x,
                y,
                snap_y,
                est_x,
                est_y,
                b_x,
                b_y,
                now,
                candidates,
                rows,
                &mut global_est,
                &mut global_snap,
            ),
        }

        sort_candidates(candidates, driver.remaining_bytes(x));

        // Lazy eviction queue at the receiver: (utility, id, size),
        // ascending utility; built on first NeedsSpace.
        let mut evict_queue: Option<Vec<(f64, PacketId, u64)>> = None;

        for cand in candidates.drain(..) {
            if driver.remaining_bytes(x) < cand.size {
                // Packets are uniform-size in the paper's workloads; a
                // smaller later candidate could still fit, so keep going
                // only while something could fit.
                if driver.remaining_bytes(x) == 0 {
                    break;
                }
                continue;
            }
            loop {
                match driver.try_transfer(x, cand.id) {
                    TransferOutcome::Replicated => {
                        stored_this_contact.insert(cand.id);
                        if !self.is_global() {
                            let stamp = now;
                            let entry_peer = HolderEntry {
                                holder: y,
                                delay_secs: cand.a_peer,
                                stamp,
                            };
                            let entry_self = HolderEntry {
                                holder: x,
                                delay_secs: cand.a_self,
                                stamp,
                            };
                            for node in [x, y] {
                                let st = self.states.state_mut(node);
                                st.meta.upsert(cand.id, entry_peer);
                                st.meta.upsert(cand.id, entry_self);
                            }
                        }
                        break;
                    }
                    TransferOutcome::NeedsSpace(needed) => {
                        if !self.evict_for(
                            driver,
                            y,
                            needed,
                            stored_this_contact,
                            snap_y,
                            now,
                            &mut evict_queue,
                        ) {
                            break; // could not make room: skip candidate
                        }
                        // Retry the transfer with space freed.
                    }
                    _ => break,
                }
            }
        }
    }

    /// Scores one contact-start destination queue into `candidates` (and
    /// publishes refreshed own-packet estimates). Works identically over a
    /// live-buffer queue or a snapshot queue — the two arms of
    /// [`QueueView`].
    #[allow(clippy::too_many_arguments)]
    fn enumerate_queues<'d>(
        &mut self,
        driver: &'d ContactDriver<'_>,
        queues: impl Iterator<Item = (NodeId, &'d [QueueEntry])>,
        x: NodeId,
        y: NodeId,
        snap_y: QueueView<'_>,
        est_x: &[f64],
        est_y: &[f64],
        b_x: f64,
        b_y: f64,
        now: Time,
        candidates: &mut Vec<Candidate>,
        mut rows: RateRows<'_>,
        global_est: &mut HashMap<u32, Vec<f64>>,
        global_snap: &mut HashMap<u32, QueueSnapshot>,
    ) {
        for (dst_node, queue) in queues {
            self.enumerate_queue(
                driver,
                x,
                y,
                dst_node,
                queue,
                snap_y,
                est_x,
                est_y,
                b_x,
                b_y,
                now,
                candidates,
                &mut rows,
                global_est,
                global_snap,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_queue(
        &mut self,
        driver: &ContactDriver<'_>,
        x: NodeId,
        y: NodeId,
        dst_node: NodeId,
        queue: &[QueueEntry],
        snap_y: QueueView<'_>,
        est_x: &[f64],
        est_y: &[f64],
        b_x: f64,
        b_y: f64,
        now: Time,
        candidates: &mut Vec<Candidate>,
        rows: &mut RateRows<'_>,
        global_est: &mut HashMap<u32, Vec<f64>>,
        global_snap: &mut HashMap<u32, QueueSnapshot>,
    ) {
        if dst_node == y {
            return; // destined packets belong to step 2, not step 3
        }
        let dst = dst_node.index();
        // Pass 1: evaluate both Eq. 4–5 rows over the whole queue in one
        // kernel call each. The own-side positions are the queue's prefix
        // sums; the peer-side insertion points advance monotonically, so
        // they are gathered for every entry — the cursor is a memoized
        // monotone scan, and a query for a later-skipped entry cannot
        // disturb the value any kept entry reads.
        let mut peer_pos = snap_y.insert_cursor(driver, dst_node);
        rows.own.load_queue(queue);
        rows.peer.clear();
        for entry in queue {
            rows.peer
                .push(peer_pos.bytes_ahead_if_inserted(entry.created_at));
        }
        let cap = self.cfg.delay_cap_secs;
        rows.own.compute(est_x[dst], b_x, cap);
        rows.peer.compute(est_y[dst], b_y, cap);
        // Pass 2: score against the precomputed rows.
        for (
            i,
            &QueueEntry {
                created_at,
                id,
                size_bytes,
                ..
            },
        ) in queue.iter().enumerate()
        {
            if !driver.buffer(x).contains(id) || driver.buffer(y).contains(id) {
                continue;
            }
            if !self.is_global() && self.states.state(x).acks.contains(id) {
                continue; // known delivered but not yet purged (can't happen after purge, kept defensively)
            }
            let t = now.since(created_at).as_secs_f64();
            let a_self = rows.own.delays()[i];
            let a_peer = rows.peer.delays()[i];

            // Combined rate of the believed remote replicas (or the
            // true ones, by channel mode) — summed inline, no per-packet
            // allocation.
            let remote_rate: f64 = if self.is_global() {
                let g = driver.global();
                combined_rate(
                    g.holders(id)
                        .filter(|&h| h != x && h != y)
                        .map(|h| {
                            let est_h = global_est
                                .entry(h.0)
                                .or_insert_with(|| self.estimate_times_global(h));
                            let snap_h = global_snap
                                .entry(h.0)
                                .or_insert_with(|| QueueSnapshot::from_buffer(g.buffer(h)));
                            let ahead = snap_h.bytes_ahead(dst_node, id, created_at);
                            let b_h = self.opp_bytes_global(h);
                            self.cap(replica_delay(est_h[dst], meetings_needed(ahead, b_h)))
                        })
                        .collect::<Vec<f64>>(),
                )
            } else {
                match self.states.state(x).meta.get(id) {
                    Some(belief) => combined_rate(
                        belief
                            .entries
                            .iter()
                            .filter(|e| e.holder != x && e.holder != y)
                            .map(|e| self.cap(e.delay_secs)),
                    ),
                    None => 0.0,
                }
            };
            // Left-to-right extension keeps these sums bit-identical to
            // folding the full replica list at once.
            let rate_self = remote_rate + rate_contribution(a_self);
            let rate_both = rate_self + rate_contribution(a_peer);

            let score = match self.cfg.metric {
                RoutingMetric::MinAvgDelay => {
                    let before = delay_from_rate(rate_self);
                    let after = delay_from_rate(rate_both);
                    delta_or_zero(before, after) / size_bytes as f64
                }
                RoutingMetric::MinMissedDeadlines { lifetime } => {
                    let rem = lifetime.as_secs_f64() - t;
                    if rem <= 0.0 {
                        0.0
                    } else {
                        let before = prob_within_from_rate(rate_self, rem);
                        let after = prob_within_from_rate(rate_both, rem);
                        (after - before) / size_bytes as f64
                    }
                }
                RoutingMetric::MinMaxDelay => {
                    // Work-conserving Eq. 3: replicate in decreasing order
                    // of current expected delay D(i) = T(i) + A(i).
                    let before = delay_from_rate(rate_self);
                    if before.is_finite() {
                        t + before
                    } else if a_peer.is_finite() {
                        // No current replica can reach the destination but
                        // the peer can: the largest possible gain. Age
                        // preserves the work-conserving order among such
                        // packets.
                        UNREACHABLE_GAIN + t
                    } else {
                        0.0
                    }
                }
            };
            if score > 0.0 {
                candidates.push(Candidate {
                    id,
                    score,
                    size: size_bytes,
                    a_self,
                    a_peer,
                });
            }
            // Publish/refresh own delay estimate for the gossip channel —
            // only for packets this node originated ("for each of its own
            // packets", §4.2); carried replicas are already described by
            // the entries created at replication time.
            if !self.is_global() && driver.packets().get(id).src == x {
                self.publish_estimate(x, id, a_self, now);
            }
        }
    }

    /// Buffer-overflow policy at the receiving node: evict lowest-utility
    /// packets (never its own unacked source packets, never replicas stored
    /// during this contact) until `needed` bytes are free. Returns whether
    /// enough space was freed.
    #[allow(clippy::too_many_arguments)]
    fn evict_for(
        &mut self,
        driver: &mut ContactDriver<'_>,
        y: NodeId,
        needed: u64,
        stored_this_contact: &HashSet<PacketId>,
        snap_y: QueueView<'_>,
        now: Time,
        queue: &mut Option<Vec<(f64, PacketId, u64)>>,
    ) -> bool {
        if queue.is_none() {
            let mut scored: Vec<(bool, f64, PacketId, u64)> = Vec::new();
            for (id, _) in driver.buffer(y).iter() {
                if stored_this_contact.contains(&id) {
                    continue;
                }
                let p = driver.packets().get(id);
                // §3.4's own-packet protection, applied as a strict
                // preference: a node's own unacked packets are evicted
                // only after every other packet is gone.
                let own_unacked = p.src == y && !self.states.state(y).acks.contains(id);
                // Scored against the contact-start snapshot, like every
                // other in-contact decision (not the live, mid-contact
                // queue) — which is why this path bypasses the rate cache.
                let rate =
                    self.rate_with(y, &p, snap_y.bytes_ahead(driver, p.dst, id, p.created_at));
                scored.push((
                    own_unacked,
                    self.utility_from_rate(rate, &p, now),
                    id,
                    p.size_bytes,
                ));
            }
            // Pop order (from the back): non-own lowest-utility first,
            // own-unacked packets last of all.
            scored.sort_unstable_by(|a, b| {
                b.0.cmp(&a.0)
                    .then(cmp_utility_then_id((b.1, b.2), (a.1, a.2)))
            });
            *queue = Some(
                scored
                    .into_iter()
                    .map(|(_, u, id, size)| (u, id, size))
                    .collect(),
            );
        }
        let q = queue.as_mut().expect("just built");
        let mut freed = 0u64;
        while freed < needed {
            let Some((_, victim, size)) = q.pop() else {
                return false; // nothing evictable left
            };
            if driver.evict(y, victim) {
                self.states.state_mut(y).meta.remove_holder(victim, y);
                freed += size;
            }
        }
        true
    }

    /// Debug-build oracle for `make_room`: recomputes the victim choice
    /// from scratch — fresh Estimate Delay per packet, filter, full sort —
    /// and asserts the cached/lazily-sorted path chose identically. This is
    /// what gives the cache-consistency property tests their teeth: any
    /// missed invalidation shows up as a divergence here.
    #[cfg(debug_assertions)]
    #[allow(clippy::too_many_arguments)]
    fn assert_victims_match_reference(
        &self,
        node: NodeId,
        own_creation: bool,
        needed: u64,
        buffer: &NodeBuffer,
        packets: &PacketStore,
        now: Time,
        got: &[PacketId],
    ) {
        let state = self.states.state(node);
        let mut scored: Vec<(f64, PacketId, u64)> = buffer
            .iter()
            .filter(|&(id, _)| {
                own_creation || {
                    let p = packets.get(id);
                    p.src != node || state.acks.contains(id)
                }
            })
            .map(|(id, meta)| {
                let p = packets.get(id);
                let rate = self.rate_with(node, &p, buffer.bytes_ahead(p.dst, id, p.created_at));
                (self.utility_from_rate(rate, &p, now), id, meta.size_bytes)
            })
            .collect();
        scored.sort_unstable_by(|a, b| cmp_utility_then_id((a.0, a.1), (b.0, b.1)));
        let mut expect = Vec::new();
        let mut freed = 0u64;
        for (_, id, size) in scored {
            if freed >= needed {
                break;
            }
            expect.push(id);
            freed += size;
        }
        if freed < needed {
            expect.clear();
        }
        debug_assert_eq!(
            got, expect,
            "incremental make_room diverged from the from-scratch reference at {node}"
        );
    }

    /// Refreshes this node's own delay estimate for a packet in the gossip
    /// table, if it moved by more than [`PUBLISH_THRESHOLD`].
    fn publish_estimate(&mut self, x: NodeId, id: PacketId, a_self: f64, now: Time) {
        let st = self.states.state_mut(x);
        let stale = match st.meta.get(id).and_then(|b| b.entry(x)) {
            Some(e) => {
                let old = e.delay_secs;
                !(old.is_finite() && a_self.is_finite())
                    || (old - a_self).abs() > PUBLISH_THRESHOLD * old.abs().max(1.0)
            }
            None => true,
        };
        if stale && a_self.is_finite() {
            st.meta.upsert(
                id,
                HolderEntry {
                    holder: x,
                    delay_secs: a_self,
                    stamp: now,
                },
            );
        }
    }

    /// Step 1: the in-band metadata exchange in one direction, within a
    /// byte budget. Priority order: acks, meeting rows + opportunity
    /// averages, replica entries (own-buffer packets first). The watermark
    /// only advances when everything fit (§4.2's delta exchange).
    #[allow(clippy::too_many_arguments)]
    fn exchange_metadata(
        &mut self,
        driver: &mut ContactDriver<'_>,
        from: NodeId,
        to: NodeId,
        budget: u64,
        full_opp: u64,
        local_only: bool,
        scratch: &mut ContactScratch,
    ) {
        let ContactScratch {
            acks_new,
            changed_rows,
            changed,
            own_changed,
            third_changed,
            ..
        } = scratch;
        let now = driver.now();
        let mut allowed = budget.min(driver.remaining_bytes(from));
        let mut used = 0u64;
        let mut truncated = false;
        let since = self.states.state(from).last_sent[to.index()];

        // 1. Acknowledgments.
        {
            let (from_st, to_st) = self.states.two(from, to);
            acks_new.clear();
            acks_new.extend(from_st.acks.iter().filter(|&id| !to_st.acks.contains(id)));
            for &id in acks_new.iter() {
                if allowed < wire::ACK_BYTES {
                    truncated = true;
                    break;
                }
                to_st.acks.insert(id);
                to_st.meta.remove_packet(id);
                allowed -= wire::ACK_BYTES;
                used += wire::ACK_BYTES;
            }
        }

        // 2. Meeting-time rows changed since the watermark.
        {
            let n = self.n as u64;
            let row_cost = n * wire::MEETING_ENTRY_BYTES;
            self.states
                .state(from)
                .meetings
                .rows_changed_since_into(since, changed_rows);
            for &row in changed_rows.iter() {
                if allowed < row_cost {
                    truncated = true;
                    break;
                }
                let (from_st, to_st) = self.states.two(from, to);
                to_st.meetings.merge_rows_from(&from_st.meetings, &[row]);
                allowed -= row_cost;
                used += row_cost;
            }
            // Opportunity averages changed since the watermark.
            for u in 0..self.n {
                let (v, stamp) = self.states.state(from).believed_opp[u];
                if stamp <= since {
                    continue;
                }
                if allowed < wire::AVG_OPP_BYTES {
                    truncated = true;
                    break;
                }
                let to_st = self.states.state_mut(to);
                if stamp > to_st.believed_opp[u].1 {
                    to_st.believed_opp[u] = (v, stamp);
                }
                allowed -= wire::AVG_OPP_BYTES;
                used += wire::AVG_OPP_BYTES;
            }
        }

        // 3. Replica entries. Two classes, following §4.2:
        //
        //    * "For each of its own packets, the updated delivery delay
        //      estimate" — packets this node originated (and, for
        //      rapid-local, everything currently in its buffer). These are
        //      few, so they go watermark-complete, oldest change first.
        //    * "Information about other packets if modified since last
        //      exchange" — the transitive gossip. Its global volume is
        //      proportional to the network-wide replication rate, so it is
        //      shipped newest-first under a small per-contact budget
        //      (THIRD_PARTY_FRACTION of the opportunity); older changes age
        //      out rather than queue forever. This bounding is what keeps
        //      metadata at the paper's ~percent-of-data scale (Table 3) —
        //      recorded as a design decision in DESIGN.md.
        let mut entry_watermark = now;
        {
            self.states
                .state(from)
                .meta
                .changed_since_into(since, changed);
            own_changed.clear();
            third_changed.clear();
            for &(id, n_entries, changed_at) in changed.iter() {
                let buffered = driver.buffer(from).contains(id);
                if local_only {
                    if buffered {
                        own_changed.push((id, n_entries, changed_at));
                    }
                    continue;
                }
                if driver.packets().get(id).src == from {
                    own_changed.push((id, n_entries, changed_at));
                } else {
                    third_changed.push((id, n_entries, changed_at));
                }
            }

            // Own/buffered estimates: complete, oldest first, watermarked.
            let mut sent_through = since;
            let mut entries_truncated = false;
            for &(id, n_entries, changed_at) in own_changed.iter() {
                let cost = n_entries as u64 * wire::META_ENTRY_BYTES;
                if allowed < cost {
                    entries_truncated = true;
                    break;
                }
                self.ship_belief(from, to, id, since);
                allowed -= cost;
                used += cost;
                sent_through = sent_through.max(changed_at);
            }
            if entries_truncated {
                truncated = true;
                entry_watermark = sent_through;
            }

            // Third-party gossip: newest first, bounded.
            let gossip_budget = ((full_opp as f64 * THIRD_PARTY_FRACTION) as u64).min(allowed);
            let mut gossip_left = gossip_budget;
            for &(id, n_entries, _) in third_changed.iter().rev() {
                let cost = n_entries as u64 * wire::META_ENTRY_BYTES;
                if gossip_left < cost {
                    break;
                }
                self.ship_belief(from, to, id, since);
                gossip_left -= cost;
                used += cost;
            }
        }

        driver.charge_metadata(from, used);
        // Advance the watermark to cover everything actually shipped; a
        // truncated exchange resumes from where it stopped next time.
        self.states.state_mut(from).last_sent[to.index()] = if truncated {
            entry_watermark.min(now)
        } else {
            now
        };
    }

    /// Copies `from`'s belief entries about `id` newer than `since` into
    /// `to`'s table (unless the peer already knows the packet delivered).
    fn ship_belief(&mut self, from: NodeId, to: NodeId, id: PacketId, since: Time) {
        let (from_st, to_st) = self.states.two(from, to);
        if let Some(belief) = from_st.meta.get(id) {
            if !to_st.acks.contains(id) {
                to_st.meta.merge_packet_from(id, belief, since);
            }
        }
    }
}

/// `max(before − after, 0)`, handling infinities: replicating onto a
/// reachable peer when no replica could previously reach the destination is
/// an (arbitrarily) large gain, represented by the previous delay bound.
fn delta_or_zero(before: f64, after: f64) -> f64 {
    if !after.is_finite() {
        return 0.0;
    }
    if !before.is_finite() {
        // New reachability: treat as the largest finite gain available.
        return UNREACHABLE_GAIN;
    }
    (before - after).max(0.0)
}

/// The one total order every RAPID selection sort derives from: ascending
/// `(value, id)` over a float value with a deterministic id tie-break.
///
/// * Incomparable values (NaN) are treated as equal, falling through to
///   the id tie-break — no selection path produces NaN, but the order must
///   stay total regardless.
/// * Equal values — including `0.0` vs `-0.0` — break ties by **ascending
///   `PacketId`**, so every sort is deterministic and independent of input
///   order.
///
/// Call sites derive their direction from this single order: storage
/// eviction sorts ascending utility directly (lowest utility evicted
/// first); replication sorts by *negated* score (descending score, id
/// still ascending); the in-contact eviction queue reverses the call
/// (descending, so popping from the back yields ascending). The
/// `comparator_*` unit tests pin these tie-break rules.
fn cmp_utility_then_id(a: (f64, PacketId), b: (f64, PacketId)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .unwrap_or(Ordering::Equal)
        .then(a.1.cmp(&b.1))
}

/// Sorts candidates by decreasing score (id ascending tiebreak); when many
/// more candidates exist than could possibly fit in `remaining` bytes, a
/// partial selection keeps the contact O(n + k log k).
fn sort_candidates(c: &mut Vec<Candidate>, remaining: u64) {
    let min_size = c.iter().map(|x| x.size.max(1)).min().unwrap_or(1);
    let fit = (remaining / min_size) as usize;
    let keep = fit.saturating_mul(2).saturating_add(64);
    // Descending score via the shared ascending order on the negated key
    // (negation is exact for every non-NaN float, so ties are preserved).
    let by_score =
        |a: &Candidate, b: &Candidate| cmp_utility_then_id((-a.score, a.id), (-b.score, b.id));
    if c.len() > keep {
        c.select_nth_unstable_by(keep - 1, by_score);
        c.truncate(keep);
    }
    c.sort_unstable_by(by_score);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, Schedule, Simulation, TimeDelta};

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn contact(t: u64, a: u32, b: u32, bytes: u64) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), bytes)
    }

    fn config(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(10_000),
            ..SimConfig::default()
        }
    }

    #[test]
    fn direct_delivery_works() {
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![contact(10, 0, 1, 1 << 20)]),
            Workload::new(vec![spec(0, 0, 1)]),
        );
        let mut rapid = Rapid::new(RapidConfig::avg_delay());
        let r = sim.run(&mut rapid);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn replication_then_relay_delivery() {
        // 0 meets 1, then 1 meets 2. Packet 0→2 should be replicated to 1
        // and delivered by it.
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                // Teach the nodes their meeting averages first.
                contact(10, 1, 2, 1 << 20),
                contact(40, 1, 2, 1 << 20),
                contact(70, 0, 1, 1 << 20),
                contact(100, 1, 2, 1 << 20),
            ]),
            Workload::new(vec![spec(50, 0, 2)]),
        );
        let mut rapid = Rapid::new(RapidConfig::avg_delay());
        let r = sim.run(&mut rapid);
        assert_eq!(r.delivered(), 1, "relay delivery must happen");
        assert!((r.avg_delay_secs().unwrap() - 50.0).abs() < 1e-9);
        assert!(r.replications >= 1);
        assert!(r.metadata_bytes > 0, "in-band channel must carry bytes");
    }

    #[test]
    fn acks_purge_replicas() {
        // After delivery, the ack must reach node 1 and purge its replica.
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                contact(1, 1, 2, 1 << 20),
                contact(5, 1, 2, 1 << 20),  // node 1 now has a 1↔2 average
                contact(20, 0, 1, 1 << 20), // replicate 0→1
                contact(30, 0, 2, 1 << 20), // 0 delivers directly
                contact(40, 0, 1, 1 << 20), // ack flows 0→1 here
                contact(50, 1, 2, 1 << 20), // 1 must NOT re-send the packet
            ]),
            Workload::new(vec![spec(10, 0, 2)]),
        );
        let mut rapid = Rapid::new(RapidConfig::avg_delay());
        let r = sim.run(&mut rapid);
        assert_eq!(r.delivered(), 1);
        // Data bytes: replication (0→1) + delivery (0→2) only; the purged
        // replica at 1 must not cross to 2 at t=50.
        assert_eq!(r.data_bytes, 2 * 1024);
    }

    /// Populates a Rapid instance with non-trivial state: meetings learned,
    /// replicas believed, acks recorded, metadata watermarks advanced.
    fn populated_rapid() -> (Rapid, SimConfig) {
        let cfg = config(3);
        let sim = Simulation::new(
            cfg.clone(),
            Schedule::new(vec![
                contact(1, 1, 2, 1 << 20),
                contact(5, 1, 2, 1 << 20),
                contact(20, 0, 1, 1 << 20),
                contact(30, 0, 2, 1 << 20),
                contact(40, 0, 1, 1 << 20),
                contact(50, 1, 2, 1 << 20),
            ]),
            Workload::new(vec![spec(10, 0, 2), spec(15, 1, 0)]),
        );
        let mut rapid = Rapid::new(RapidConfig::avg_delay());
        let r = sim.run(&mut rapid);
        assert!(r.delivered() >= 1);
        (rapid, cfg)
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let (rapid, cfg) = populated_rapid();
        let saved = rapid.save_state().expect("RAPID is checkpointable");
        assert!(!saved.is_empty());

        let mut restored = Rapid::new(RapidConfig::avg_delay());
        restored.on_init(&cfg);
        restored.load_state(&saved).expect("round trip");
        let resaved = restored.save_state().unwrap();
        assert_eq!(
            saved, resaved,
            "restored state must re-save byte-identically"
        );
    }

    #[test]
    fn restore_reproduces_observable_state() {
        // The restored instance must report the same beliefs through every
        // read path a contact would use: meeting rows, expected meeting
        // times, replica listings, acks. (Behavioral continuation under
        // the engine is covered by the resume integration tests.)
        let (original, cfg) = populated_rapid();
        let saved = original.save_state().unwrap();
        let mut restored = Rapid::new(RapidConfig::avg_delay());
        restored.on_init(&cfg);
        restored.load_state(&saved).unwrap();

        for (a, b) in original.states.iter().zip(restored.states.iter()) {
            for u in 0..cfg.nodes {
                assert_eq!(a.meetings.row(u), b.meetings.row(u));
            }
            assert_eq!(
                a.meetings.expected_meeting_times(3),
                b.meetings.expected_meeting_times(3)
            );
            assert_eq!(a.meta.len(), b.meta.len());
            for ((ia, ba), (ib, bb)) in a.meta.iter_live().zip(b.meta.iter_live()) {
                assert_eq!(ia, ib);
                assert_eq!(ba, bb);
            }
            assert_eq!(
                a.acks.iter().collect::<Vec<_>>(),
                b.acks.iter().collect::<Vec<_>>()
            );
            assert_eq!(a.last_sent, b.last_sent);
            assert_eq!(a.avg_opp.state(), b.avg_opp.state());
            assert_eq!(a.believed_opp, b.believed_opp);
        }
    }

    #[test]
    fn load_rejects_malformed_state() {
        let (rapid, cfg) = populated_rapid();
        let saved = rapid.save_state().unwrap();

        let mut fresh = Rapid::new(RapidConfig::avg_delay());
        fresh.on_init(&config(5));
        let err = fresh.load_state(&saved).unwrap_err();
        assert!(err.contains("3 nodes"), "node-count mismatch named: {err}");

        let mut fresh = Rapid::new(RapidConfig::avg_delay());
        fresh.on_init(&cfg);
        assert!(fresh.load_state(&saved[..saved.len() / 2]).is_err());
        assert!(fresh.load_state(&[0xff; 16]).is_err());
        let mut trailing = saved.clone();
        trailing.push(0);
        let err = fresh.load_state(&trailing).unwrap_err();
        assert!(err.contains("trailing"), "trailing bytes named: {err}");
    }

    #[test]
    fn metadata_cap_zero_sends_nothing() {
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![contact(10, 0, 1, 1 << 20), contact(20, 1, 2, 1 << 20)]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let mut rapid = Rapid::new(RapidConfig::avg_delay().with_channel(ChannelMode::InBand {
            cap_fraction: Some(0.0),
        }));
        let r = sim.run(&mut rapid);
        assert_eq!(r.metadata_bytes, 0);
    }

    #[test]
    fn global_channel_requires_flag() {
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![contact(10, 0, 1, 1 << 20)]),
            Workload::new(vec![spec(0, 0, 1)]),
        );
        let mut rapid =
            Rapid::new(RapidConfig::avg_delay().with_channel(ChannelMode::InstantGlobal));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.run(&mut rapid);
        }));
        assert!(result.is_err(), "must refuse to run without the flag");
    }

    #[test]
    fn global_channel_runs_clean() {
        let cfg = SimConfig {
            allow_global_knowledge: true,
            ..config(3)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![
                contact(10, 1, 2, 1 << 20),
                contact(40, 1, 2, 1 << 20),
                contact(70, 0, 1, 1 << 20),
                contact(100, 1, 2, 1 << 20),
            ]),
            Workload::new(vec![spec(50, 0, 2)]),
        );
        let mut rapid =
            Rapid::new(RapidConfig::avg_delay().with_channel(ChannelMode::InstantGlobal));
        let r = sim.run(&mut rapid);
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.metadata_bytes, 0, "global channel is out of band");
    }

    #[test]
    fn deadline_metric_skips_expired_packets() {
        // Packet created at 0 with 10 s lifetime; contact at 100 s with a
        // relay: no replication should happen for the expired packet.
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                contact(90, 1, 2, 1 << 20),
                contact(100, 0, 1, 1 << 20),
            ]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let mut rapid = Rapid::new(RapidConfig::deadline(TimeDelta::from_secs(10)));
        let r = sim.run(&mut rapid);
        assert_eq!(r.replications, 0, "expired packet must not replicate");
    }

    #[test]
    fn max_delay_prefers_older_packets() {
        // Two packets to the same destination; tiny opportunity fits one.
        // Max-delay RAPID must replicate the older one.
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                contact(5, 1, 2, 1 << 20),
                contact(35, 1, 2, 1 << 20),
                // Room for one packet plus the metadata that precedes it.
                contact(100, 0, 1, 2047),
                contact(130, 1, 2, 1 << 20),
            ]),
            Workload::new(vec![spec(10, 0, 2), spec(60, 0, 2)]),
        );
        let mut rapid = Rapid::new(RapidConfig::max_delay());
        let r = sim.run(&mut rapid);
        // The replicated (and hence relayed) packet must be the older one.
        let delivered: Vec<_> = r
            .outcomes
            .iter()
            .filter(|o| o.delivered_at.is_some())
            .collect();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].created_at, Time::from_secs(10));
    }

    #[test]
    fn eviction_prefers_foreign_packets_over_own() {
        // Node 1 (buffer = 2 packets) holds its own p0 and a replica of p1,
        // both destined to node 3. An incoming replica (p2) must displace
        // the foreign replica p1, never the own packet p0.
        let cfg = SimConfig {
            nodes: 4,
            buffer_capacity: 2048,
            horizon: Time::from_secs(10_000),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![
                contact(1, 1, 3, 1 << 20),
                contact(6, 1, 3, 1 << 20),  // node 1 knows it meets 3 often
                contact(20, 0, 1, 1 << 20), // p1 replicated 0→1
                contact(30, 2, 1, 1 << 20), // p2 incoming: must evict p1
                contact(40, 1, 3, 1 << 20), // node 1 delivers what it kept
            ]),
            Workload::new(vec![
                spec(10, 1, 3), // p0: node 1's own
                spec(11, 0, 3), // p1: foreign replica at node 1
                spec(25, 2, 3), // p2: incoming at t=30
            ]),
        );
        let mut rapid = Rapid::new(RapidConfig::avg_delay());
        let r = sim.run(&mut rapid);
        let delivered: Vec<bool> = r
            .outcomes
            .iter()
            .map(|o| o.delivered_at.is_some())
            .collect();
        assert!(delivered[0], "own packet survived eviction and delivered");
        assert!(delivered[2], "incoming replica stored and delivered");
    }

    #[test]
    fn name_reflects_configuration() {
        assert_eq!(
            Rapid::new(RapidConfig::avg_delay()).name(),
            "RAPID(avg-delay,in-band)"
        );
        assert_eq!(
            Rapid::new(RapidConfig::max_delay().with_channel(ChannelMode::LocalOnly)).name(),
            "RAPID(max-delay,local)"
        );
        assert_eq!(
            Rapid::new(
                RapidConfig::deadline(TimeDelta::from_secs(20))
                    .with_channel(ChannelMode::InstantGlobal)
            )
            .name(),
            "RAPID(deadline,global)"
        );
    }

    #[test]
    fn comparator_orders_ascending_value_then_id() {
        use std::cmp::Ordering;
        let c = |a: (f64, u32), b: (f64, u32)| {
            cmp_utility_then_id((a.0, PacketId(a.1)), (b.0, PacketId(b.1)))
        };
        // Primary: ascending value.
        assert_eq!(c((1.0, 9), (2.0, 1)), Ordering::Less);
        assert_eq!(c((2.0, 1), (1.0, 9)), Ordering::Greater);
        // Tie-break: equal values order by ascending id.
        assert_eq!(c((5.0, 3), (5.0, 7)), Ordering::Less);
        assert_eq!(c((5.0, 7), (5.0, 3)), Ordering::Greater);
        assert_eq!(c((5.0, 4), (5.0, 4)), Ordering::Equal);
        // Signed zero compares equal: the id still decides.
        assert_eq!(c((0.0, 2), (-0.0, 1)), Ordering::Greater);
        // Infinities participate in the primary order.
        assert_eq!(c((f64::NEG_INFINITY, 9), (0.0, 0)), Ordering::Less);
        assert_eq!(c((f64::INFINITY, 0), (0.0, 9)), Ordering::Greater);
        // NaN is treated as equal-valued: the id tie-break keeps the
        // order total and deterministic.
        assert_eq!(c((f64::NAN, 1), (3.0, 2)), Ordering::Less);
        assert_eq!(c((3.0, 2), (f64::NAN, 1)), Ordering::Greater);
    }

    #[test]
    fn comparator_derivations_match_their_direction() {
        // The descending-score order used by `sort_candidates` is the same
        // comparator on negated keys: descending score, id still ascending.
        let mut scored = [(1.0f64, 7u32), (2.0, 5), (2.0, 3), (0.5, 1)];
        scored.sort_unstable_by(|a, b| {
            cmp_utility_then_id((-a.0, PacketId(a.1)), (-b.0, PacketId(b.1)))
        });
        assert_eq!(scored, [(2.0, 3), (2.0, 5), (1.0, 7), (0.5, 1)]);
        // The reversed call used by the in-contact eviction queue sorts
        // descending so popping from the back yields ascending (utility,
        // id).
        let mut pops = [(1.0f64, 2u32), (1.0, 4), (3.0, 1)];
        pops.sort_unstable_by(|a, b| {
            cmp_utility_then_id((b.0, PacketId(b.1)), (a.0, PacketId(a.1)))
        });
        assert_eq!(pops, [(3.0, 1), (1.0, 4), (1.0, 2)]);
    }

    #[test]
    fn deterministic_runs() {
        let mobility = dtn_mobility::UniformExponential {
            nodes: 8,
            mean_inter_meeting: TimeDelta::from_secs(60),
            opportunity_bytes: 8 * 1024,
        };
        let build = || {
            let mut rng = dtn_stats::stream(11, "rapid-det");
            let sched = mobility.generate(Time::from_secs(900), &mut rng);
            let wl = dtn_sim::workload::pairwise_poisson(
                &(0..8).map(NodeId).collect::<Vec<_>>(),
                TimeDelta::from_secs(120),
                1024,
                Time::from_secs(900),
                &mut rng,
            );
            let cfg = SimConfig {
                nodes: 8,
                horizon: Time::from_secs(900),
                ..SimConfig::default()
            };
            Simulation::new(cfg, sched, wl)
        };
        let r1 = build().run(&mut Rapid::new(RapidConfig::avg_delay()));
        let r2 = build().run(&mut Rapid::new(RapidConfig::avg_delay()));
        assert_eq!(r1, r2);
    }
}
