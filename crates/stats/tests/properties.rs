//! Property tests for the statistics substrate.

use dtn_stats::{jain_index, mean_ci95, paired_t_test, percentile, DiscreteDist, Summary};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn summary_merge_equals_sequential(xs in finite_vec(200), split in 0usize..200) {
        let k = split.min(xs.len());
        let mut left = Summary::of(&xs[..k]);
        let right = Summary::of(&xs[k..]);
        left.merge(&right);
        let full = Summary::of(&xs);
        prop_assert_eq!(left.count(), full.count());
        prop_assert!((left.mean().unwrap() - full.mean().unwrap()).abs() < 1e-6);
        if xs.len() > 1 {
            prop_assert!(
                (left.variance().unwrap() - full.variance().unwrap()).abs()
                    < 1e-3 * full.variance().unwrap().max(1.0)
            );
        }
    }

    #[test]
    fn percentile_is_bounded_and_monotone(xs in finite_vec(100), p in 0.0f64..100.0) {
        let lo = percentile(&xs, 0.0);
        let hi = percentile(&xs, 100.0);
        let v = percentile(&xs, p);
        prop_assert!(v >= lo && v <= hi);
        let v2 = percentile(&xs, (p + 10.0).min(100.0));
        prop_assert!(v2 + 1e-12 >= v);
    }

    #[test]
    fn jain_index_bounds(xs in finite_vec(50)) {
        let j = jain_index(&xs);
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
    }

    #[test]
    fn ci_contains_mean_of_constant_data(x in 0.0f64..1e3, n in 2usize..40) {
        let xs = vec![x; n];
        let (mean, ci) = mean_ci95(&xs).unwrap();
        prop_assert!((mean - x).abs() < 1e-9);
        prop_assert!(ci.abs() < 1e-9, "constant data has zero-width CI");
    }

    #[test]
    fn paired_t_test_is_antisymmetric(
        a in prop::collection::vec(0.0f64..100.0, 3..30),
        noise in prop::collection::vec(-5.0f64..5.0, 30),
    ) {
        let b: Vec<f64> = a.iter().zip(&noise).map(|(x, n)| x + n).collect();
        if let (Some(ab), Some(ba)) = (paired_t_test(&a, &b), paired_t_test(&b, &a)) {
            prop_assert!((ab.t + ba.t).abs() < 1e-9 || (ab.t.is_infinite() && ba.t.is_infinite()));
            prop_assert!((ab.p_two_sided - ba.p_two_sided).abs() < 1e-9);
            prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-9);
        }
    }

    #[test]
    fn dist_min_never_exceeds_inputs(l1 in 0.01f64..2.0, l2 in 0.01f64..2.0) {
        let a = DiscreteDist::exponential(l1, 800, 0.05);
        let b = DiscreteDist::exponential(l2, 800, 0.05);
        let m = a.min_with(&b);
        prop_assert!(m.mean() <= a.mean() + 1e-9);
        prop_assert!(m.mean() <= b.mean() + 1e-9);
        // CDF dominance: the min is stochastically smaller.
        for t in [0.5f64, 2.0, 10.0] {
            prop_assert!(m.cdf_at(t) + 1e-12 >= a.cdf_at(t));
            prop_assert!(m.cdf_at(t) + 1e-12 >= b.cdf_at(t));
        }
    }

    #[test]
    fn dist_convolution_adds_means(l1 in 0.2f64..2.0, l2 in 0.2f64..2.0) {
        // Generous grid so tail loss is negligible for these rates.
        let a = DiscreteDist::exponential(l1, 4000, 0.05);
        let b = DiscreteDist::exponential(l2, 4000, 0.05);
        let c = a.convolve(&b);
        let expect = 1.0 / l1 + 1.0 / l2;
        prop_assert!(
            (c.mean() - expect).abs() < 0.15 * expect,
            "mean {} vs {}", c.mean(), expect
        );
    }
}
