//! Summary statistics: Welford accumulation, percentiles, confidence
//! intervals.
//!
//! Used by the experiment harness: per-day delay averages with 95% CIs for
//! the simulator validation (Fig. 3 error bars, "within 1% with 95%
//! confidence"), per-load aggregation across runs for every other figure.

use crate::htest::student_t_cdf;

/// Single-pass mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.observe(v);
        }
        s
    }

    /// Incorporates one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sample variance (n−1 denominator), or `None` with fewer than 2 points.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count as f64 - 1.0))
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observed value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observed value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the 95% confidence interval on the mean, or `None`
    /// with fewer than 2 points.
    pub fn ci95_half_width(&self) -> Option<f64> {
        let sd = self.std_dev()?;
        let n = self.count as f64;
        let t = t_quantile_975(n - 1.0);
        Some(t * sd / n.sqrt())
    }
}

/// Percentile (0–100) by linear interpolation on a copy of the data.
///
/// Panics on an empty slice or a percentile outside `[0, 100]`.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty set");
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = pct / 100.0 * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Mean and half-width of the 95% CI for a sample; `None` for < 2 points.
pub fn mean_ci95(values: &[f64]) -> Option<(f64, f64)> {
    let s = Summary::of(values);
    Some((s.mean()?, s.ci95_half_width()?))
}

/// 97.5% quantile of the Student-t with `df` degrees of freedom, found by
/// bisection on the CDF (fast enough for reporting paths; df ≥ 1).
fn t_quantile_975(df: f64) -> f64 {
    assert!(df >= 1.0, "need at least 2 observations");
    let (mut lo, mut hi) = (0.0f64, 700.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < 0.975 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn welford_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        close(s.mean().unwrap(), 5.0, 1e-12);
        // Sample variance with n-1 = 7: Σ(x-5)² = 32 → 32/7.
        close(s.variance().unwrap(), 32.0 / 7.0, 1e-12);
        assert_eq!(s.min().unwrap(), 2.0);
        assert_eq!(s.max().unwrap(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let mut a = Summary::of(&xs[..3]);
        let b = Summary::of(&xs[3..]);
        a.merge(&b);
        let full = Summary::of(&xs);
        close(a.mean().unwrap(), full.mean().unwrap(), 1e-12);
        close(a.variance().unwrap(), full.variance().unwrap(), 1e-10);
        assert_eq!(a.count(), full.count());
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        close(percentile(&xs, 0.0), 1.0, 1e-12);
        close(percentile(&xs, 100.0), 4.0, 1e-12);
        close(percentile(&xs, 50.0), 2.5, 1e-12);
    }

    #[test]
    fn t_quantile_reference() {
        close(t_quantile_975(10.0), 2.228, 2e-3);
        close(t_quantile_975(1.0), 12.706, 2e-2);
        close(t_quantile_975(1e6), 1.96, 2e-3);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let narrow: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let wide: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (_, ci_narrow) = mean_ci95(&narrow).unwrap();
        let (_, ci_wide) = mean_ci95(&wide).unwrap();
        assert!(ci_narrow < ci_wide);
    }

    #[test]
    fn empty_and_singleton_behaviour() {
        assert_eq!(Summary::new().mean(), None);
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.variance(), None);
        assert!(mean_ci95(&[1.0]).is_none());
    }
}
