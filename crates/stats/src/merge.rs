//! Mergeable streaming accumulators.
//!
//! Sweep aggregation used to collect every run's `SimReport` into a `Vec`
//! and reduce at the end — O(runs) memory per data point, which fights the
//! streaming scenario pipeline. These accumulators absorb one run at a
//! time and can be merged across workers, so a sweep's memory is one
//! accumulator per data point regardless of how many runs feed it.
//!
//! Note on determinism: floating-point addition is not associative, so
//! `merge` of partial accumulators is *not* guaranteed bit-identical to a
//! single sequential fold. The experiment harness therefore pushes per-run
//! values in run-index order when byte-stable output matters (see
//! `rapid-bench`'s `parallel_reduce`) and reserves `merge` for scale sweeps
//! where last-bit stability is not part of the contract.

/// A value that can absorb another instance of itself — the reduction half
/// of a streaming (map, reduce) pair.
pub trait Mergeable {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Streaming arithmetic mean: `push` values, read `mean` at any point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingMean {
    sum: f64,
    count: u64,
}

impl StreamingMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The mean, or `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Mergeable for StreamingMean {
    fn merge(&mut self, other: Self) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Streaming extrema: the min and max of everything pushed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Extrema {
    min: f64,
    max: f64,
    seen: bool,
}

impl Extrema {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, value: f64) {
        if self.seen {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        } else {
            self.min = value;
            self.max = value;
            self.seen = true;
        }
    }

    /// The smallest observation, or `None` before the first.
    pub fn min(&self) -> Option<f64> {
        self.seen.then_some(self.min)
    }

    /// The largest observation, or `None` before the first.
    pub fn max(&self) -> Option<f64> {
        self.seen.then_some(self.max)
    }
}

impl Mergeable for Extrema {
    fn merge(&mut self, other: Self) {
        if other.seen {
            self.push(other.min);
            self.push(other.max);
        }
    }
}

/// Per-shard accumulator slots with a deterministic shard-order fold.
///
/// The sharded runtime hands each shard its own accumulator; folding
/// partial sums in whatever order shards finish would make aggregate
/// floats depend on thread timing. `ShardSlots` pins one slot per shard
/// and [`fold`](ShardSlots::fold)s them **in shard index order**, so the
/// aggregate is bit-identical for a fixed seed at any shard count and on
/// every run — the merge order is part of the result's definition, not
/// an accident of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSlots<T> {
    slots: Vec<T>,
}

impl<T: Default> ShardSlots<T> {
    /// One default-initialized slot per shard.
    pub fn new(shards: usize) -> Self {
        Self {
            slots: (0..shards).map(|_| T::default()).collect(),
        }
    }
}

impl<T> ShardSlots<T> {
    /// Number of slots.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The accumulator owned by shard `s`.
    pub fn slot_mut(&mut self, s: usize) -> &mut T {
        &mut self.slots[s]
    }

    /// Read-only view of shard `s`'s accumulator.
    pub fn slot(&self, s: usize) -> &T {
        &self.slots[s]
    }

    /// Iterates `(shard, accumulator)` in shard order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate()
    }
}

impl<T: Mergeable + Default> ShardSlots<T> {
    /// Collapses the slots into one accumulator, merging in shard index
    /// order — the deterministic reduction the sharded runtime's
    /// aggregates rely on.
    pub fn fold(self) -> T {
        let mut out = T::default();
        for slot in self.slots {
            out.merge(slot);
        }
        out
    }
}

impl<T: Mergeable> Mergeable for ShardSlots<T> {
    /// Slot-wise merge: shard `s` of `other` folds into shard `s` of
    /// `self` (combining the same shard's state across runs or workers).
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "shard slot counts must match"
        );
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_streams_and_merges() {
        let mut a = StreamingMean::new();
        assert_eq!(a.mean(), None);
        a.push(1.0);
        a.push(2.0);
        assert_eq!(a.mean(), Some(1.5));
        assert_eq!(a.count(), 2);

        let mut b = StreamingMean::new();
        b.push(6.0);
        a.merge(b);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 9.0);

        // Merging an empty accumulator changes nothing.
        a.merge(StreamingMean::new());
        assert_eq!(a.mean(), Some(3.0));
    }

    #[test]
    fn shard_slots_fold_in_shard_order() {
        // Push out of shard order; the fold must still be the shard-order
        // reduction (slot 0, then 1, then 2).
        let mut slots: ShardSlots<StreamingMean> = ShardSlots::new(3);
        slots.slot_mut(2).push(30.0);
        slots.slot_mut(0).push(10.0);
        slots.slot_mut(1).push(20.0);
        assert_eq!(slots.shards(), 3);
        assert_eq!(slots.slot(1).mean(), Some(20.0));

        let order: Vec<u64> = slots.iter().map(|(_, m)| m.count()).collect();
        assert_eq!(order, vec![1, 1, 1]);

        let folded = slots.fold();
        assert_eq!(folded.count(), 3);
        assert_eq!(folded.mean(), Some(20.0));

        // Reference: a sequential shard-order fold of the same values.
        let mut reference = StreamingMean::new();
        for v in [10.0, 20.0, 30.0] {
            reference.push(v);
        }
        assert_eq!(folded, reference, "fold order is shard index order");
    }

    #[test]
    fn shard_slots_merge_slotwise() {
        let mut a: ShardSlots<StreamingMean> = ShardSlots::new(2);
        a.slot_mut(0).push(1.0);
        let mut b: ShardSlots<StreamingMean> = ShardSlots::new(2);
        b.slot_mut(0).push(3.0);
        b.slot_mut(1).push(5.0);
        a.merge(b);
        assert_eq!(a.slot(0).mean(), Some(2.0));
        assert_eq!(a.slot(1).mean(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "slot counts must match")]
    fn shard_slots_reject_mismatched_merge() {
        let mut a: ShardSlots<StreamingMean> = ShardSlots::new(2);
        a.merge(ShardSlots::new(3));
    }

    #[test]
    fn extrema_streams_and_merges() {
        let mut a = Extrema::new();
        assert_eq!(a.min(), None);
        a.push(3.0);
        a.push(-1.0);
        assert_eq!((a.min(), a.max()), (Some(-1.0), Some(3.0)));

        let mut b = Extrema::new();
        b.push(10.0);
        a.merge(b);
        assert_eq!(a.max(), Some(10.0));
        a.merge(Extrema::new());
        assert_eq!(a.min(), Some(-1.0));
    }
}
