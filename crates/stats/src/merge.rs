//! Mergeable streaming accumulators.
//!
//! Sweep aggregation used to collect every run's `SimReport` into a `Vec`
//! and reduce at the end — O(runs) memory per data point, which fights the
//! streaming scenario pipeline. These accumulators absorb one run at a
//! time and can be merged across workers, so a sweep's memory is one
//! accumulator per data point regardless of how many runs feed it.
//!
//! Note on determinism: floating-point addition is not associative, so
//! `merge` of partial accumulators is *not* guaranteed bit-identical to a
//! single sequential fold. The experiment harness therefore pushes per-run
//! values in run-index order when byte-stable output matters (see
//! `rapid-bench`'s `parallel_reduce`) and reserves `merge` for scale sweeps
//! where last-bit stability is not part of the contract.

/// A value that can absorb another instance of itself — the reduction half
/// of a streaming (map, reduce) pair.
pub trait Mergeable {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Streaming arithmetic mean: `push` values, read `mean` at any point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingMean {
    sum: f64,
    count: u64,
}

impl StreamingMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The mean, or `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Mergeable for StreamingMean {
    fn merge(&mut self, other: Self) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Streaming extrema: the min and max of everything pushed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Extrema {
    min: f64,
    max: f64,
    seen: bool,
}

impl Extrema {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, value: f64) {
        if self.seen {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        } else {
            self.min = value;
            self.max = value;
            self.seen = true;
        }
    }

    /// The smallest observation, or `None` before the first.
    pub fn min(&self) -> Option<f64> {
        self.seen.then_some(self.min)
    }

    /// The largest observation, or `None` before the first.
    pub fn max(&self) -> Option<f64> {
        self.seen.then_some(self.max)
    }
}

impl Mergeable for Extrema {
    fn merge(&mut self, other: Self) {
        if other.seen {
            self.push(other.min);
            self.push(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_streams_and_merges() {
        let mut a = StreamingMean::new();
        assert_eq!(a.mean(), None);
        a.push(1.0);
        a.push(2.0);
        assert_eq!(a.mean(), Some(1.5));
        assert_eq!(a.count(), 2);

        let mut b = StreamingMean::new();
        b.push(6.0);
        a.merge(b);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 9.0);

        // Merging an empty accumulator changes nothing.
        a.merge(StreamingMean::new());
        assert_eq!(a.mean(), Some(3.0));
    }

    #[test]
    fn extrema_streams_and_merges() {
        let mut a = Extrema::new();
        assert_eq!(a.min(), None);
        a.push(3.0);
        a.push(-1.0);
        assert_eq!((a.min(), a.max()), (Some(-1.0), Some(3.0)));

        let mut b = Extrema::new();
        b.push(10.0);
        a.merge(b);
        assert_eq!(a.max(), Some(10.0));
        a.merge(Extrema::new());
        assert_eq!(a.min(), Some(-1.0));
    }
}
