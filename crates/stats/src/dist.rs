//! Discretized distribution calculus for delay estimation.
//!
//! Appendix C of the paper defines `dag_delay`, an idealized algorithm that
//! propagates *distributions* of delivery delay through a dependency DAG
//! using two operators: `⊕` (sum of independent delays, i.e. convolution —
//! "adding two identical exponential distributions yields a gamma
//! distribution") and `min` (the earliest of several replicas to reach the
//! destination). Closed forms exist only for special cases (min of
//! exponentials), so this module implements the calculus numerically on a
//! uniform time grid, which is exact in the limit of fine grids and easily
//! testable against the closed forms.

/// A probability distribution over `[0, horizon]`, represented by its CDF
/// sampled at `n + 1` uniformly spaced points (`bin 0 = t = 0`).
///
/// Mass beyond the horizon is carried implicitly: `cdf` values need not reach
/// 1.0 at the last bin, and [`DiscreteDist::mean`] accounts for the tail by
/// treating it as located at the horizon (a documented lower-bound bias that
/// vanishes as the horizon grows).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    /// CDF samples; `cdf[k] = P(X ≤ k · dt)`. Monotone non-decreasing, in [0,1].
    cdf: Vec<f64>,
    /// Grid step in the caller's time unit.
    dt: f64,
}

impl DiscreteDist {
    /// Builds a distribution directly from CDF samples.
    ///
    /// # Panics
    /// If fewer than two samples, a non-positive step, values outside
    /// `[0, 1]`, or a decreasing sequence are given.
    pub fn from_cdf(cdf: Vec<f64>, dt: f64) -> Self {
        assert!(cdf.len() >= 2, "need at least two CDF samples");
        assert!(dt > 0.0 && dt.is_finite(), "grid step must be positive");
        let mut prev = 0.0f64;
        for (i, &v) in cdf.iter().enumerate() {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&v),
                "cdf[{i}] = {v} out of range"
            );
            assert!(v + 1e-12 >= prev, "cdf must be non-decreasing at {i}");
            prev = v;
        }
        Self { cdf, dt }
    }

    /// A point mass at `t = 0` (delivery already happened).
    pub fn zero(n: usize, dt: f64) -> Self {
        Self::from_cdf(vec![1.0; n + 1], dt)
    }

    /// A distribution with no mass on the grid (never delivers within the
    /// horizon) — the identity element of `min_with`.
    pub fn never(n: usize, dt: f64) -> Self {
        Self::from_cdf(vec![0.0; n + 1], dt)
    }

    /// Discretizes an exponential with rate `lambda` on an `n`-bin grid of
    /// step `dt`.
    pub fn exponential(lambda: f64, n: usize, dt: f64) -> Self {
        assert!(lambda > 0.0, "rate must be positive");
        let cdf = (0..=n)
            .map(|k| 1.0 - (-lambda * k as f64 * dt).exp())
            .collect();
        Self::from_cdf(cdf, dt)
    }

    /// Discretizes a gamma with integer shape `k` and rate `lambda`
    /// (the `k`-fold convolution of an exponential), built by convolution so
    /// it is exactly consistent with [`DiscreteDist::convolve`].
    pub fn gamma(shape: u32, lambda: f64, n: usize, dt: f64) -> Self {
        assert!(shape >= 1, "shape must be at least 1");
        let e = Self::exponential(lambda, n, dt);
        let mut acc = e.clone();
        for _ in 1..shape {
            acc = acc.convolve(&e);
        }
        acc
    }

    /// Number of bins (grid cells) after `t = 0`.
    pub fn bins(&self) -> usize {
        self.cdf.len() - 1
    }

    /// Grid step.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// CDF evaluated at time `t` (nearest grid point at or below `t`,
    /// clamped to the horizon).
    pub fn cdf_at(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let k = ((t / self.dt).floor() as usize).min(self.cdf.len() - 1);
        self.cdf[k]
    }

    /// Probability mass in bin `k`, i.e. `P((k−1)·dt < X ≤ k·dt)` for `k ≥ 1`
    /// and `P(X ≤ 0)` for `k = 0`.
    fn pmf(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.cdf.len());
        p.push(self.cdf[0]);
        for k in 1..self.cdf.len() {
            p.push((self.cdf[k] - self.cdf[k - 1]).max(0.0));
        }
        p
    }

    /// Distribution of the sum of two independent delays (the paper's `⊕`).
    ///
    /// Mass that lands past the horizon stays in the implicit tail.
    /// O(n²); `dag_delay` uses modest grids so this is fine, and the
    /// Criterion bench `dag_delay` tracks the cost.
    pub fn convolve(&self, other: &Self) -> Self {
        assert_eq!(self.cdf.len(), other.cdf.len(), "grids must match");
        assert!((self.dt - other.dt).abs() < 1e-12, "grid steps must match");
        let pa = self.pmf();
        let pb = other.pmf();
        let n = self.cdf.len();
        let mut pmf = vec![0.0f64; n];
        for (i, &a) in pa.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in pb.iter().enumerate() {
                if i + j < n {
                    pmf[i + j] += a * b;
                }
                // else: tail mass, implicitly dropped from the grid.
            }
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for m in pmf {
            acc = (acc + m).min(1.0);
            cdf.push(acc);
        }
        Self { cdf, dt: self.dt }
    }

    /// Distribution of the minimum of two independent delays:
    /// `F_min(t) = 1 − (1 − F₁(t)) · (1 − F₂(t))`.
    pub fn min_with(&self, other: &Self) -> Self {
        assert_eq!(self.cdf.len(), other.cdf.len(), "grids must match");
        assert!((self.dt - other.dt).abs() < 1e-12, "grid steps must match");
        let cdf = self
            .cdf
            .iter()
            .zip(&other.cdf)
            .map(|(&a, &b)| 1.0 - (1.0 - a) * (1.0 - b))
            .collect();
        Self { cdf, dt: self.dt }
    }

    /// Minimum over a non-empty set of independent delays.
    pub fn min_of(dists: &[Self]) -> Self {
        assert!(!dists.is_empty(), "min_of needs at least one distribution");
        let mut acc = dists[0].clone();
        for d in &dists[1..] {
            acc = acc.min_with(d);
        }
        acc
    }

    /// Expected value, computed as `Σ (1 − F(k·dt)) · dt` (the survival-sum
    /// identity on the grid). Tail mass beyond the horizon contributes as if
    /// it sat exactly at the horizon, so this is a lower bound that becomes
    /// exact as the horizon grows.
    pub fn mean(&self) -> f64 {
        let mut s = 0.0;
        for k in 0..self.cdf.len() - 1 {
            s += (1.0 - self.cdf[k]) * self.dt;
        }
        s
    }

    /// Probability that the delay exceeds the horizon (the implicit tail).
    pub fn tail_mass(&self) -> f64 {
        1.0 - *self.cdf.last().expect("non-empty cdf")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 4000;
    const DT: f64 = 0.01;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn exponential_mean_on_grid() {
        let d = DiscreteDist::exponential(2.0, N, DT);
        close(d.mean(), 0.5, 0.01);
    }

    #[test]
    fn min_of_exponentials_matches_closed_form() {
        // min of Exp(λ1), Exp(λ2) is Exp(λ1+λ2) — the identity Eq. 7 builds on.
        let a = DiscreteDist::exponential(1.0, N, DT);
        let b = DiscreteDist::exponential(3.0, N, DT);
        let m = a.min_with(&b);
        let expect = DiscreteDist::exponential(4.0, N, DT);
        close(m.mean(), expect.mean(), 1e-6);
        close(m.cdf_at(0.5), expect.cdf_at(0.5), 1e-9);
    }

    #[test]
    fn convolution_of_exponentials_is_gamma() {
        // Exp(λ) ⊕ Exp(λ) = Gamma(2, λ): the paper's example for ⊕.
        let e = DiscreteDist::exponential(2.0, N, DT);
        let g = e.convolve(&e);
        close(g.mean(), 1.0, 0.02); // Gamma(2,2) mean = 1
        let g3 = g.convolve(&e);
        close(g3.mean(), 1.5, 0.03); // Gamma(3,2) mean = 1.5
    }

    #[test]
    fn gamma_constructor_matches_convolution() {
        let e = DiscreteDist::exponential(1.5, N, DT);
        let by_conv = e.convolve(&e).convolve(&e);
        let direct = DiscreteDist::gamma(3, 1.5, N, DT);
        for k in (0..=N).step_by(500) {
            close(by_conv.cdf[k], direct.cdf[k], 1e-9);
        }
    }

    #[test]
    fn zero_is_identity_for_convolution() {
        let e = DiscreteDist::exponential(1.0, N, DT);
        let z = DiscreteDist::zero(N, DT);
        let c = e.convolve(&z);
        for k in (0..=N).step_by(400) {
            close(c.cdf[k], e.cdf[k], 1e-12);
        }
    }

    #[test]
    fn never_is_identity_for_min() {
        let e = DiscreteDist::exponential(1.0, N, DT);
        let nv = DiscreteDist::never(N, DT);
        let m = e.min_with(&nv);
        for k in (0..=N).step_by(400) {
            close(m.cdf[k], e.cdf[k], 1e-12);
        }
        close(nv.mean(), N as f64 * DT, 1e-9);
    }

    #[test]
    fn min_commutes() {
        let a = DiscreteDist::exponential(0.7, N, DT);
        let b = DiscreteDist::gamma(2, 1.3, N, DT);
        let ab = a.min_with(&b);
        let ba = b.min_with(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn tail_mass_reported() {
        // Horizon 1.0 with mean 10 exponential: most mass is in the tail.
        let d = DiscreteDist::exponential(0.1, 100, 0.01);
        assert!(d.tail_mass() > 0.85);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_cdf() {
        let _ = DiscreteDist::from_cdf(vec![0.0, 0.5, 0.4], 1.0);
    }

    #[test]
    #[should_panic(expected = "grids must match")]
    fn rejects_mismatched_grids() {
        let a = DiscreteDist::exponential(1.0, 10, 0.1);
        let b = DiscreteDist::exponential(1.0, 20, 0.1);
        let _ = a.min_with(&b);
    }
}
