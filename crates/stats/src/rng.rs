//! Deterministic, labelled RNG streams.
//!
//! Every stochastic component of the reproduction (mobility models, workload
//! generators, protocols that randomize, deployment-noise emulation) draws
//! from its own named stream derived from a single experiment seed. Two
//! components never share a stream, so adding draws to one component cannot
//! perturb another — runs are reproducible bit-for-bit and experiments remain
//! comparable across protocol variants.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent [`StdRng`] streams from a root seed.
///
/// Streams are identified by a string label; the same `(seed, label)` pair
/// always yields the same stream. Labels are hashed with FNV-1a (64-bit),
/// which is stable across platforms and Rust versions (unlike
/// `std::collections` hashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    seed: u64,
}

impl SeedStream {
    /// Creates a stream factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Root seed this factory derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the RNG for `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, fnv1a(label.as_bytes())))
    }

    /// Returns the RNG for `label` specialized by an index (e.g. a day or a
    /// run number), so per-item streams stay independent.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.seed, fnv1a(label.as_bytes())), index))
    }

    /// Derives a sub-factory, useful to hand a component its own seed space.
    pub fn derive(&self, label: &str) -> SeedStream {
        SeedStream {
            seed: mix(self.seed, fnv1a(label.as_bytes())),
        }
    }
}

/// Convenience: one-shot stream for `(seed, label)`.
pub fn stream(seed: u64, label: &str) -> StdRng {
    SeedStream::new(seed).rng(label)
}

/// FNV-1a 64-bit hash; stable and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: mixes two words into a well-distributed seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let s = SeedStream::new(42);
        let a: u64 = s.rng("mobility").gen();
        let b: u64 = s.rng("mobility").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let s = SeedStream::new(42);
        let a: u64 = s.rng("mobility").gen();
        let b: u64 = s.rng("workload").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let a: u64 = stream(1, "x").gen();
        let b: u64 = stream(2, "x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let s = SeedStream::new(7);
        let a: u64 = s.rng_indexed("day", 0).gen();
        let b: u64 = s.rng_indexed("day", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_matches_nested_labels() {
        let s = SeedStream::new(9);
        let d = s.derive("sub");
        // A derived factory must be deterministic as well.
        let a: u64 = d.rng("x").gen();
        let b: u64 = s.derive("sub").rng("x").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
