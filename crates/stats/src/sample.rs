//! Random variate sampling: exponential, gamma, normal, log-normal, Poisson,
//! Pareto.
//!
//! The paper's workloads and mobility models are built from these
//! distributions: exponential inter-meeting and inter-arrival times (§4.1.1,
//! §5.1), gamma delays for multi-meeting delivery (§4.1.1), power-law /
//! heavy-tailed popularity skews (§6.3), and log-normal transfer-opportunity
//! sizes in the DieselNet substitute (bus contact bandwidth is highly
//! variable, §6.2.2). Only `rand`'s uniform source is used underneath.

use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "rate must be positive");
        Self { lambda }
    }

    /// Creates an exponential with the given mean (`1/lambda`).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Self { lambda: 1.0 / mean }
    }

    /// Rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one variate by inverse-CDF: `-ln(U)/λ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `gen::<f64>()` is in [0,1); flip to (0,1] to avoid ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }

    /// CDF `P(X ≤ t) = 1 − e^{−λt}`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * t).exp()
        }
    }
}

/// Gamma distribution with shape `k` and rate `lambda`
/// (mean `k/λ`).
///
/// In Estimate Delay (§4.1.1), the time for a node to meet the destination
/// `⌈b(i)/B⌉` times is gamma with integer shape; the general-shape sampler
/// (Marsaglia–Tsang) is included for the mobility substrates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma with `shape > 0` and `rate > 0`.
    pub fn new(shape: f64, rate: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Self { shape, rate }
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Mean `k/λ`.
    pub fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    /// Draws one variate.
    ///
    /// Integer shapes ≤ 32 use the exact sum-of-exponentials construction
    /// (this is the case Estimate Delay reasons about); otherwise
    /// Marsaglia–Tsang with a boost for shape < 1.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.shape;
        if k.fract() == 0.0 && k <= 32.0 {
            let exp = Exponential::new(self.rate);
            return (0..k as u32).map(|_| exp.sample(rng)).sum();
        }
        if k < 1.0 {
            // Boost: X ~ Gamma(k+1), then X * U^{1/k}.
            let g = Gamma::new(k + 1.0, self.rate).sample(rng);
            let u: f64 = 1.0 - rng.gen::<f64>();
            return g * u.powf(1.0 / k);
        }
        // Marsaglia–Tsang squeeze method.
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard().sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = 1.0 - rng.gen::<f64>();
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v / self.rate;
            }
        }
    }
}

/// Normal distribution (Box–Muller polar sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal with the given mean and standard deviation `sd ≥ 0`.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0 && sd.is_finite(), "sd must be non-negative");
        Self { mean, sd }
    }

    /// Standard normal N(0, 1).
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Draws one variate (Marsaglia polar method; one of the pair is kept).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sd * u * factor;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `mu`, `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with the given *distribution* mean and the given
    /// sigma of the underlying normal; solves `mu = ln(mean) − sigma²/2`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and exponent `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "parameters must be positive");
        Self { x_min, alpha }
    }

    /// Draws one variate by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Poisson distribution with mean `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with mean `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "mean must be positive");
        Self { lambda }
    }

    /// Draws one variate. Knuth's product method for small λ; for λ > 30 a
    /// normal approximation with continuity correction (adequate for
    /// workload counts, which is the only large-λ use here).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 30.0 {
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count
        } else {
            let n = Normal::new(self.lambda, self.lambda.sqrt()).sample(rng);
            n.round().max(0.0) as u64
        }
    }
}

/// Generates the event times of a Poisson process with rate `rate` over
/// `[0, horizon)`, in increasing order.
pub fn poisson_process<R: Rng + ?Sized>(rate: f64, horizon: f64, rng: &mut R) -> Vec<f64> {
    assert!(rate >= 0.0 && horizon >= 0.0);
    let mut events = Vec::new();
    if rate == 0.0 {
        return events;
    }
    let gap = Exponential::new(rate);
    let mut t = gap.sample(rng);
    while t < horizon {
        events.push(t);
        t += gap.sample(rng);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    fn sample_mean(mut f: impl FnMut() -> f64, n: usize) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_and_cdf() {
        let mut rng = stream(1, "exp");
        let d = Exponential::with_mean(5.0);
        let m = sample_mean(|| d.sample(&mut rng), 40_000);
        assert!((m - 5.0).abs() < 0.15, "mean {m}");
        assert!((d.cdf(5.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn gamma_integer_shape_mean() {
        let mut rng = stream(2, "gamma");
        let d = Gamma::new(4.0, 2.0); // mean 2.0
        let m = sample_mean(|| d.sample(&mut rng), 40_000);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn gamma_fractional_shape_mean() {
        let mut rng = stream(3, "gamma2");
        let d = Gamma::new(2.5, 1.0);
        let m = sample_mean(|| d.sample(&mut rng), 60_000);
        assert!((m - 2.5).abs() < 0.12, "mean {m}");
        let d = Gamma::new(0.5, 1.0);
        let m = sample_mean(|| d.sample(&mut rng), 60_000);
        assert!((m - 0.5).abs() < 0.06, "mean {m}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = stream(4, "norm");
        let d = Normal::new(3.0, 2.0);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.08, "mean {m}");
        assert!((v - 4.0).abs() < 0.25, "var {v}");
    }

    #[test]
    fn lognormal_with_mean_hits_mean() {
        let mut rng = stream(5, "logn");
        let d = LogNormal::with_mean(10.0, 0.8);
        let m = sample_mean(|| d.sample(&mut rng), 80_000);
        assert!((m - 10.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = stream(6, "pareto");
        let d = Pareto::new(2.0, 3.0);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
        // mean = alpha*x_min/(alpha-1) = 3.0 for these parameters.
        let m = sample_mean(|| d.sample(&mut rng), 60_000);
        assert!((m - 3.0).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = stream(7, "poisson");
        let d = Poisson::new(3.5);
        let m = sample_mean(|| d.sample(&mut rng) as f64, 40_000);
        assert!((m - 3.5).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_large_mean_uses_normal() {
        let mut rng = stream(8, "poisson-large");
        let d = Poisson::new(200.0);
        let m = sample_mean(|| d.sample(&mut rng) as f64, 20_000);
        assert!((m - 200.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn poisson_process_count_matches_rate() {
        let mut rng = stream(9, "pp");
        let mut total = 0usize;
        for _ in 0..200 {
            let ev = poisson_process(0.5, 100.0, &mut rng);
            assert!(ev.windows(2).all(|w| w[0] <= w[1]));
            assert!(ev.iter().all(|&t| (0.0..100.0).contains(&t)));
            total += ev.len();
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 50.0).abs() < 2.0, "mean count {mean}");
    }

    #[test]
    fn poisson_process_zero_rate_is_empty() {
        let mut rng = stream(10, "pp0");
        assert!(poisson_process(0.0, 100.0, &mut rng).is_empty());
    }
}
