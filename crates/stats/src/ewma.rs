//! Running estimators used by the control plane.
//!
//! §4.2: "Nodes locally compute the expected transfer opportunity with every
//! other node as a moving average of past transfers" and §4.1.2: "every node
//! tabulates the average time to meet every other node based on past meeting
//! times". [`RunningMean`] is the plain average of everything seen;
//! [`Ewma`] is the exponentially-weighted variant offered for the ablation
//! bench on estimator choice.

/// Plain running mean (the paper's "average of past meetings").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    mean: f64,
    count: u64,
}

impl RunningMean {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporates one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
    }

    /// Current estimate, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Current estimate, or `fallback` before any observation.
    pub fn mean_or(&self, fallback: f64) -> f64 {
        self.mean().unwrap_or(fallback)
    }

    /// Number of observations incorporated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw `(mean, count)` state, for snapshot serialization. The raw mean
    /// is meaningful only when `count > 0`.
    pub fn state(&self) -> (f64, u64) {
        (self.mean, self.count)
    }

    /// Rebuilds an estimator from [`RunningMean::state`] output, bit-exact.
    pub fn from_state(mean: f64, count: u64) -> Self {
        Self { mean, count }
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
///
/// `alpha = 1` reproduces "last observation wins"; small `alpha` approaches a
/// long-run average. Initialized from the first observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with `0 < alpha ≤ 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Incorporates one observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current estimate, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate, or `fallback` before any observation.
    pub fn value_or(&self, fallback: f64) -> f64 {
        self.value.unwrap_or(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_matches_arithmetic_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.mean_or(9.0), 9.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.observe(x);
        }
        assert!((m.mean().unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn running_mean_is_order_insensitive() {
        let mut a = RunningMean::new();
        let mut b = RunningMean::new();
        for x in [5.0, 1.0, 3.0] {
            a.observe(x);
        }
        for x in [3.0, 5.0, 1.0] {
            b.observe(x);
        }
        assert!((a.mean().unwrap() - b.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ewma_initializes_from_first_observation() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(0.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    fn ewma_alpha_one_tracks_last() {
        let mut e = Ewma::new(1.0);
        for x in [3.0, 7.0, 2.0] {
            e.observe(x);
        }
        assert_eq!(e.value(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
