//! Statistics substrate for the RAPID DTN reproduction.
//!
//! The paper's evaluation machinery needs a small but complete statistics
//! toolkit: exponential / gamma / Poisson sampling for mobility and workload
//! generation (§4.1.1, §5.1), running means for meeting-time and
//! transfer-size estimation (§4.1.2), confidence intervals for the simulator
//! validation (§5.3, Fig. 3), Jain's fairness index (§6.2.5, Fig. 15), a
//! paired t-test for protocol comparison (§6.2.1), and a discretized
//! distribution calculus (convolution `⊕` and pointwise `min`) for the
//! Appendix-C `dag_delay` reference algorithm.
//!
//! Everything here is implemented from scratch on top of [`rand`]'s uniform
//! source so that the workspace needs no external statistics crates and the
//! numeric behaviour is fully deterministic given a seed.

pub mod dist;
pub mod ewma;
pub mod fairness;
pub mod htest;
pub mod merge;
pub mod rng;
pub mod sample;
pub mod special;
pub mod summary;

pub use dist::DiscreteDist;
pub use ewma::{Ewma, RunningMean};
pub use fairness::jain_index;
pub use htest::{paired_t_test, student_t_cdf, TTestResult};
pub use merge::{Extrema, Mergeable, ShardSlots, StreamingMean};
pub use rng::{stream, SeedStream};
pub use sample::{Exponential, Gamma, LogNormal, Normal, Pareto, Poisson};
pub use summary::{mean_ci95, percentile, Summary};
