//! Special functions: log-gamma and the regularized incomplete beta function.
//!
//! These are the numeric core behind the Student-t CDF used by the paired
//! t-test (§6.2.1 compares RAPID and MaxProp per source–destination pair and
//! reports p < 0.0005). Implementations follow the classic Lanczos and
//! continued-fraction formulations; accuracy is ~1e-10 over the parameter
//! ranges exercised here, verified against known values in the tests.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Valid for `x > 0`. Relative error is below 1e-10 on the tested range.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7 (Numerical Recipes / Boost-style Lanczos).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed with the Lentz continued-fraction expansion, using the symmetry
/// `I_x(a,b) = 1 − I_{1−x}(b,a)` to stay in the rapidly-converging region.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, Abramowitz & Stegun 7.1.26 rational approximation.
///
/// Max absolute error ≈ 1.5e-7, sufficient for workload-shaping uses; the
/// hypothesis tests use [`beta_inc`] rather than `erf`.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            close(ln_gamma(f64::from(n)), fact.ln(), 1e-9);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.0, 0.1, 0.3, 0.5, 0.77, 1.0] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.25), (5.5, 1.5, 0.6), (10.0, 10.0, 0.5)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10);
        }
    }

    #[test]
    fn beta_inc_known_value() {
        // I_0.5(2,2) = 0.5 by symmetry; I_0.25(2,2) = 3x² − 2x³ at x=0.25.
        close(beta_inc(2.0, 2.0, 0.5), 0.5, 1e-12);
        let x: f64 = 0.25;
        close(beta_inc(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-10);
    }

    #[test]
    fn erf_reference_points() {
        close(erf(0.0), 0.0, 1e-6);
        close(erf(1.0), 0.842_700_79, 1e-6);
        close(erf(-1.0), -0.842_700_79, 1e-6);
        close(erf(2.0), 0.995_322_26, 1e-6);
    }
}
