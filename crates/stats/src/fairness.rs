//! Jain's fairness index (§6.2.5, Fig. 15).
//!
//! The paper evaluates whether RAPID's resource allocation is fair to packets
//! created in parallel by computing Jain's index over their delays: an index
//! of 1 means all parallel packets saw identical delay, `1/n` means one
//! packet hogged the allocation.

/// Jain's fairness index: `(Σ xᵢ)² / (n · Σ xᵢ²)`.
///
/// Values lie in `[1/n, 1]`. Returns 1.0 for an all-zero vector (everything
/// is equally — perfectly — served), and panics on an empty slice because an
/// index over no flows is meaningless.
pub fn jain_index(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "fairness index of an empty set");
    assert!(
        values.iter().all(|v| *v >= 0.0 && v.is_finite()),
        "fairness index requires non-negative finite values"
    );
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_perfectly_fair() {
        assert!((jain_index(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_hits_lower_bound() {
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_is_fair() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn scale_invariance() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bounds_hold() {
        let xs = [0.1, 5.0, 2.0, 9.0, 4.4];
        let idx = jain_index(&xs);
        assert!(idx >= 1.0 / xs.len() as f64 && idx <= 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = jain_index(&[]);
    }
}
