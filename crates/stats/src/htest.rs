//! Hypothesis testing: paired t-test and the Student-t distribution.
//!
//! §6.2.1: "we performed a paired t-test to compare the average delay of
//! every source-destination pair using RAPID to the average delay of the same
//! source-destination pair using MaxProp ... we found p-values always less
//! than 0.0005". The experiment harness reproduces that table-side claim, so
//! the test itself is part of the substrate.

use crate::special::beta_inc;

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic (sign follows `a - b`).
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Mean of the pairwise differences `a − b`.
    pub mean_diff: f64,
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// Uses the identity `P(T ≤ t) = 1 − I_x(df/2, 1/2) / 2` for `t ≥ 0` with
/// `x = df / (df + t²)`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Paired t-test over two equally long samples.
///
/// Returns `None` when fewer than two pairs exist or when all differences
/// are identical with zero variance *and* zero mean (no information). When
/// variance is zero but the mean difference is not, the difference is
/// deterministic and the p-value is reported as 0.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired test needs equal-length samples");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n as f64 - 1.0);
    let df = n as f64 - 1.0;
    if var == 0.0 {
        if mean == 0.0 {
            return None;
        }
        return Some(TTestResult {
            t: f64::INFINITY * mean.signum(),
            df,
            p_two_sided: 0.0,
            mean_diff: mean,
        });
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    Some(TTestResult {
        t,
        df,
        p_two_sided: p.clamp(0.0, 1.0),
        mean_diff: mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn t_cdf_symmetry_and_median() {
        close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        for &t in &[0.3, 1.0, 2.5] {
            close(student_t_cdf(t, 7.0) + student_t_cdf(-t, 7.0), 1.0, 1e-10);
        }
    }

    #[test]
    fn t_cdf_reference_values() {
        // Classic table values: t_{0.975, 10} = 2.228, t_{0.975, 1} = 12.706.
        close(student_t_cdf(2.228, 10.0), 0.975, 5e-4);
        close(student_t_cdf(12.706, 1.0), 0.975, 5e-4);
        // Large df approaches the normal: Φ(1.96) ≈ 0.975.
        close(student_t_cdf(1.96, 10_000.0), 0.975, 1e-3);
    }

    #[test]
    fn paired_test_detects_consistent_difference() {
        let a = [10.0, 12.0, 9.0, 11.0, 10.5, 12.5, 9.5, 11.5];
        let b: Vec<f64> = a.iter().map(|x| x - 2.0).collect();
        // Perfectly constant difference: deterministic, p = 0.
        let r = paired_t_test(&a, &b).unwrap();
        assert_eq!(r.p_two_sided, 0.0);
        close(r.mean_diff, 2.0, 1e-12);
    }

    #[test]
    fn paired_test_with_noise() {
        let a = [10.0, 12.0, 9.0, 11.0, 10.5, 12.5, 9.5, 11.5];
        let b = [8.2, 9.7, 7.1, 9.2, 8.6, 10.4, 7.4, 9.8];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.t > 10.0, "t = {}", r.t);
        assert!(r.p_two_sided < 1e-5, "p = {}", r.p_two_sided);
    }

    #[test]
    fn identical_samples_give_no_result() {
        let a = [1.0, 2.0, 3.0];
        assert!(paired_t_test(&a, &a).is_none());
    }

    #[test]
    fn no_difference_is_insignificant() {
        // Differences that fluctuate around zero should not be significant.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.1, 5.9];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_two_sided > 0.5, "p = {}", r.p_two_sided);
    }

    #[test]
    fn too_few_pairs() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
    }
}
