//! Trace record types.

/// One transfer opportunity: nodes `a` and `b` meet at `time_us` into `day`.
///
/// This is the paper's directed-multigraph edge annotated `(t_e, s_e)`
/// (§3.1), generalized with an optional duration: the reproduction stores
/// one record per meeting and expands it to a symmetric opportunity at
/// simulation time, matching the deployment where a discovered connection is
/// merged "into one connection event" (§5).
///
/// * `duration_us == 0` (the default, and the paper's model): the meeting is
///   instantaneous and `bytes` is the whole per-direction opportunity.
/// * `duration_us > 0`: the meeting is a *contact window* open for that many
///   microseconds, and `bytes` is the per-direction link **rate** in
///   bytes/second while the window is open (contact-graph-routing style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContactRecord {
    /// Day index within the trace (the paper treats each day separately).
    pub day: u32,
    /// Microseconds from the start of the day.
    pub time_us: u64,
    /// First endpoint.
    pub a: u32,
    /// Second endpoint (≠ `a`).
    pub b: u32,
    /// Opportunity size in bytes per direction (instantaneous records), or
    /// link rate in bytes/second (durative records).
    pub bytes: u64,
    /// Window length in microseconds; `0` = instantaneous meeting.
    pub duration_us: u64,
}

/// One packet creation: the workload tuple `(u, v, s, t)` of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRecord {
    /// Day index within the trace.
    pub day: u32,
    /// Microseconds from the start of the day.
    pub time_us: u64,
    /// Source node.
    pub src: u32,
    /// Destination node (≠ `src`).
    pub dst: u32,
    /// Packet size in bytes.
    pub bytes: u64,
}

/// A trace record: contact or packet creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Record {
    /// A transfer opportunity.
    Contact(ContactRecord),
    /// A packet creation.
    Packet(PacketRecord),
}

impl Record {
    /// Day of this record.
    pub fn day(&self) -> u32 {
        match self {
            Record::Contact(c) => c.day,
            Record::Packet(p) => p.day,
        }
    }

    /// Time of this record in microseconds from the start of its day.
    pub fn time_us(&self) -> u64 {
        match self {
            Record::Contact(c) => c.time_us,
            Record::Packet(p) => p.time_us,
        }
    }

    /// Sort rank among records with equal timestamps: contacts first.
    pub fn kind_rank(&self) -> u8 {
        match self {
            Record::Contact(_) => 0,
            Record::Packet(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_both_variants() {
        let c = Record::Contact(ContactRecord {
            day: 3,
            time_us: 77,
            a: 1,
            b: 2,
            bytes: 9,
            duration_us: 0,
        });
        let p = Record::Packet(PacketRecord {
            day: 4,
            time_us: 88,
            src: 5,
            dst: 6,
            bytes: 10,
        });
        assert_eq!(c.day(), 3);
        assert_eq!(c.time_us(), 77);
        assert_eq!(p.day(), 4);
        assert_eq!(p.time_us(), 88);
        assert!(c.kind_rank() < p.kind_rank());
    }
}
