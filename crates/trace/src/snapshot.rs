//! `RSNP1` — the versioned run-snapshot container, sibling of the `RPLN1`
//! compressed contact plan.
//!
//! A snapshot is a sequence of *named sections*, each independently
//! length-framed and CRC32-protected:
//!
//! ```text
//! "RSNP1\n"
//! varint(section_count)
//! repeat section_count times:
//!   varint(name_len) name_bytes varint(payload_len) crc32_le payload
//! ```
//!
//! The CRC covers the section *record* — header fields (both varints and
//! the name) plus the payload, everything except the checksum field itself
//! — so a flipped bit anywhere in a section is detected, not just one in
//! the payload. The up-front section count catches the one corruption the
//! per-section framing cannot: a file cut cleanly at a section boundary.
//!
//! The container knows nothing about section contents — `dtn-sim`'s
//! checkpoint module defines the payloads (event queue, buffers, RNG
//! cursors, routing state, …). Keeping the framing here means every
//! corruption mode (truncation, bit flips, a partial write that lost the
//! tail) is detected at load time with an error naming the section and the
//! byte offset, which is what lets a resume loop fall back to the previous
//! snapshot instead of silently resuming from garbage.

use crate::wire::{crc32, write_varint, ByteCursor, WireError};

/// Snapshot-container magic header.
pub const SNAPSHOT_MAGIC: &[u8] = b"RSNP1\n";

/// Builds an `RSNP1` byte stream section by section.
#[derive(Debug, Clone, Default)]
pub struct SnapshotWriter {
    sections: Vec<u8>,
    count: u64,
}

impl SnapshotWriter {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one named section. Names should be short ASCII identifiers;
    /// writing the same name twice is a bug (the reader rejects it).
    pub fn section(&mut self, name: &str, payload: &[u8]) {
        let mut header = Vec::with_capacity(name.len() + 8);
        write_varint(&mut header, name.len() as u64);
        header.extend_from_slice(name.as_bytes());
        write_varint(&mut header, payload.len() as u64);
        let crc = section_crc(&header, payload);
        self.sections.extend_from_slice(&header);
        self.sections.extend_from_slice(&crc.to_le_bytes());
        self.sections.extend_from_slice(payload);
        self.count += 1;
    }

    /// The finished byte stream.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 4 + self.sections.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        write_varint(&mut out, self.count);
        out.extend_from_slice(&self.sections);
        out
    }
}

/// Why an `RSNP1` stream failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The input does not start with the `RSNP1` magic.
    BadMagic,
    /// The input ended mid-section.
    Truncated {
        /// Byte offset where the failed read started.
        offset: usize,
    },
    /// A section name was not valid UTF-8.
    BadSectionName {
        /// Byte offset of the name field.
        offset: usize,
    },
    /// A section's payload failed its CRC32 — a bit flip or partial write.
    BadChecksum {
        /// Name of the damaged section.
        section: String,
        /// Byte offset of the section's payload.
        offset: usize,
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the payload actually present.
        found: u32,
    },
    /// The same section name appeared twice.
    DuplicateSection {
        /// The repeated name.
        section: String,
        /// Byte offset of the second occurrence.
        offset: usize,
    },
    /// Bytes remained after the declared section count.
    TrailingBytes {
        /// Byte offset of the first unexpected byte.
        offset: usize,
    },
    /// A required section is absent (reported by [`SnapshotReader::require`]).
    MissingSection {
        /// The absent name.
        section: String,
    },
}

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDecodeError::BadMagic => write!(f, "missing RSNP1 magic"),
            SnapshotDecodeError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte offset {offset}")
            }
            SnapshotDecodeError::BadSectionName { offset } => {
                write!(f, "non-UTF-8 section name at byte offset {offset}")
            }
            SnapshotDecodeError::BadChecksum {
                section,
                offset,
                expected,
                found,
            } => write!(
                f,
                "section `{section}` checksum mismatch at byte offset {offset}: \
                 recorded {expected:#010x}, computed {found:#010x}"
            ),
            SnapshotDecodeError::DuplicateSection { section, offset } => {
                write!(f, "duplicate section `{section}` at byte offset {offset}")
            }
            SnapshotDecodeError::TrailingBytes { offset } => {
                write!(
                    f,
                    "trailing bytes after last section at byte offset {offset}"
                )
            }
            SnapshotDecodeError::MissingSection { section } => {
                write!(f, "required section `{section}` is missing")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

impl From<WireError> for SnapshotDecodeError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated { offset } | WireError::VarintOverflow { offset } => {
                SnapshotDecodeError::Truncated { offset }
            }
        }
    }
}

/// Parsed view over an `RSNP1` byte stream: every section located and
/// CRC-verified up front, then looked up by name.
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    sections: Vec<(&'a str, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the whole container (magic, framing, every CRC).
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapshotDecodeError> {
        let body = bytes
            .strip_prefix(SNAPSHOT_MAGIC)
            .ok_or(SnapshotDecodeError::BadMagic)?;
        let mut cursor = ByteCursor::new(body);
        let base = SNAPSHOT_MAGIC.len();
        let count = cursor.varint().map_err(at(base))?;
        let mut sections: Vec<(&str, &[u8])> = Vec::new();
        for _ in 0..count {
            let record_start = cursor.offset();
            let name_offset = base + record_start;
            let name_len = cursor.varint().map_err(at(base))? as usize;
            let name =
                std::str::from_utf8(cursor.take(name_len).map_err(at(base))?).map_err(|_| {
                    SnapshotDecodeError::BadSectionName {
                        offset: name_offset,
                    }
                })?;
            let payload_len = cursor.varint().map_err(at(base))? as usize;
            let header = &body[record_start..cursor.offset()];
            let expected = cursor.u32_le().map_err(at(base))?;
            let payload_offset = base + cursor.offset();
            let payload = cursor.take(payload_len).map_err(at(base))?;
            let found = section_crc(header, payload);
            if found != expected {
                return Err(SnapshotDecodeError::BadChecksum {
                    section: name.to_string(),
                    offset: payload_offset,
                    expected,
                    found,
                });
            }
            if sections.iter().any(|&(n, _)| n == name) {
                return Err(SnapshotDecodeError::DuplicateSection {
                    section: name.to_string(),
                    offset: name_offset,
                });
            }
            sections.push((name, payload));
        }
        if !cursor.is_empty() {
            return Err(SnapshotDecodeError::TrailingBytes {
                offset: base + cursor.offset(),
            });
        }
        Ok(Self { sections })
    }

    /// The payload of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, p)| p)
    }

    /// The payload of section `name`, or a [`SnapshotDecodeError::MissingSection`].
    pub fn require(&self, name: &str) -> Result<&'a [u8], SnapshotDecodeError> {
        self.section(name)
            .ok_or_else(|| SnapshotDecodeError::MissingSection {
                section: name.to_string(),
            })
    }

    /// Section names in file order.
    pub fn names(&self) -> impl Iterator<Item = &'a str> + '_ {
        self.sections.iter().map(|&(n, _)| n)
    }
}

/// The section CRC: header fields (name and both length varints) chained
/// with the payload, skipping the checksum field itself.
fn section_crc(header: &[u8], payload: &[u8]) -> u32 {
    let mut joined = Vec::with_capacity(header.len() + payload.len());
    joined.extend_from_slice(header);
    joined.extend_from_slice(payload);
    crc32(&joined)
}

/// Maps a body-relative [`WireError`] to a file-absolute decode error.
fn at(base: usize) -> impl Fn(WireError) -> SnapshotDecodeError {
    move |e| match e {
        WireError::Truncated { offset } | WireError::VarintOverflow { offset } => {
            SnapshotDecodeError::Truncated {
                offset: base + offset,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section("meta", b"\x01\x02\x03");
        w.section("queue", b"");
        w.section("world", &[0xAA; 300]);
        w.finish()
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(r.section("meta"), Some(&b"\x01\x02\x03"[..]));
        assert_eq!(r.section("queue"), Some(&b""[..]));
        assert_eq!(r.require("world").unwrap().len(), 300);
        assert_eq!(
            r.names().collect::<Vec<_>>(),
            vec!["meta", "queue", "world"]
        );
        assert!(r.section("absent").is_none());
        assert!(matches!(
            r.require("absent"),
            Err(SnapshotDecodeError::MissingSection { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            SnapshotReader::new(b"RPLN1\n").err(),
            Some(SnapshotDecodeError::BadMagic)
        );
        assert_eq!(
            SnapshotReader::new(b"").err(),
            Some(SnapshotDecodeError::BadMagic)
        );
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = sample();
        for len in SNAPSHOT_MAGIC.len()..bytes.len() {
            let err = SnapshotReader::new(&bytes[..len]).expect_err("truncated");
            match err {
                SnapshotDecodeError::Truncated { offset } => assert!(offset <= len),
                other => panic!("unexpected error for len {len}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_payload_bit_flip_is_detected() {
        let bytes = sample();
        for i in SNAPSHOT_MAGIC.len()..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            // Any single flipped bit must fail to load — which section of
            // the framing it lands in decides the variant.
            assert!(
                SnapshotReader::new(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn checksum_error_names_section_and_offset() {
        let bytes = sample();
        let payload_start = bytes.len() - 300;
        let mut corrupt = bytes.clone();
        corrupt[payload_start] ^= 0xFF;
        match SnapshotReader::new(&corrupt).expect_err("corrupt payload") {
            SnapshotDecodeError::BadChecksum {
                section, offset, ..
            } => {
                assert_eq!(section, "world");
                assert_eq!(offset, payload_start);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_sections_rejected() {
        let mut w = SnapshotWriter::new();
        w.section("meta", b"a");
        w.section("meta", b"b");
        let bytes = w.finish();
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapshotDecodeError::DuplicateSection { .. })
        ));
    }
}
