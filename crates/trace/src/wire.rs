//! Shared binary-format plumbing: LEB128 varints, CRC32 (IEEE), and a
//! bounds-checked cursor that reports byte offsets on failure.
//!
//! Both on-disk formats in this crate — the `RPLN1` compressed contact plan
//! and the `RSNP1` run snapshot — are built from these primitives, so a
//! truncated or bit-flipped file fails with an error naming the offset
//! instead of panicking (or worse, decoding to garbage).

/// Appends `v` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes` — the
/// same checksum gzip and PNG use, computed with a compile-time table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Why a [`ByteCursor`] read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the read completed; `offset` is where the
    /// read started.
    Truncated {
        /// Byte offset of the failed read.
        offset: usize,
    },
    /// A varint ran past 64 bits; `offset` is where it started.
    VarintOverflow {
        /// Byte offset of the overlong varint.
        offset: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { offset } => {
                write!(f, "input truncated at byte offset {offset}")
            }
            WireError::VarintOverflow { offset } => {
                write!(f, "varint longer than 64 bits at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked reader over a byte slice that tracks its absolute offset,
/// so every decode error can name where in the file it happened.
#[derive(Debug, Clone, Copy)]
pub struct ByteCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current absolute byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(WireError::Truncated { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let start = self.pos;
        let end = start
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Truncated { offset: start })?;
        self.pos = end;
        Ok(&self.bytes[start..end])
    }

    /// Reads a little-endian `u32` (the checksum field width).
    pub fn u32_le(&mut self) -> Result<u32, WireError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self
                .byte()
                .map_err(|_| WireError::Truncated { offset: start })?;
            if shift == 63 && b > 1 {
                return Err(WireError::VarintOverflow { offset: start });
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(WireError::VarintOverflow { offset: start });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut c = ByteCursor::new(&buf);
            assert_eq!(c.varint().unwrap(), v);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncated_reads_name_offsets() {
        let mut c = ByteCursor::new(&[0x80]);
        assert_eq!(c.varint(), Err(WireError::Truncated { offset: 0 }));
        let mut c = ByteCursor::new(&[7, 0x80]);
        c.byte().unwrap();
        assert_eq!(c.varint(), Err(WireError::Truncated { offset: 1 }));
        let mut c = ByteCursor::new(&[1, 2]);
        assert_eq!(c.take(3), Err(WireError::Truncated { offset: 0 }));
    }

    #[test]
    fn overlong_varint_rejected() {
        let mut buf = vec![0xffu8; 10];
        buf.push(0x01);
        let mut c = ByteCursor::new(&buf);
        assert_eq!(c.varint(), Err(WireError::VarintOverflow { offset: 0 }));
    }
}
