//! Compressed contact plans: run-length/delta encoding over contact
//! records, plus a compact binary format.
//!
//! A materialized contact plan spends one full [`ContactRecord`] per
//! meeting even when the plan is mostly *regular* — the same pair meeting
//! again and again with the same opportunity. This module factors that
//! regularity out. A plan is a sequence of [`RecordAtom`]s:
//!
//! * [`RecordAtom::Literal`] — one window, stored verbatim;
//! * [`RecordAtom::Periodic`] — a template window repeated `repeats` times
//!   at a fixed `period_us` (phase = the template's `time_us`, jitter-free,
//!   per-repeat capacity = the template's `bytes`);
//! * [`RecordAtom::DeltaRun`] — a template window plus one start-time
//!   delta per further repeat: the irregular-gap run, still one small
//!   integer per meeting instead of a whole record.
//!
//! [`compress_contacts`] builds a plan from a `(day, time)`-ordered record
//! stream (the order [`crate::stream_records`] yields) and guarantees the
//! **round trip is exact**: [`RecordPlan::expand`] replays the original
//! records byte-for-byte, in the original order, including ties — the
//! encoder refuses to extend a run when doing so would reorder records
//! that share a timestamp, falling back to a fresh atom instead.
//!
//! Expansion order is defined as the stable sort of the concatenated atom
//! expansions by `(day, time_us)`: atoms are kept in first-record order,
//! each atom's own windows are nondecreasing in time, and the lazy cursor
//! in `dtn-sim` heap-merges on `(day, time_us, atom index)` — so lazy and
//! materialized expansion are identical by construction.

use crate::record::ContactRecord;
use std::collections::HashMap;

/// One atom of a compressed contact plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordAtom {
    /// A single literal window.
    Literal(ContactRecord),
    /// `repeats` copies of `template`, the k-th starting at
    /// `template.time_us + k * period_us` (k in `0..repeats`), all within
    /// the template's day. `repeats >= 2`.
    Periodic {
        /// The first window of the train; its `time_us` is the phase.
        template: ContactRecord,
        /// Start-to-start gap between consecutive repeats, microseconds.
        period_us: u64,
        /// Total number of windows, including the template's.
        repeats: u32,
    },
    /// `deltas_us.len() + 1` windows: the template, then one more per
    /// delta, each starting `deltas_us[k]` after its predecessor.
    DeltaRun {
        /// The first window of the run.
        template: ContactRecord,
        /// Consecutive start-to-start gaps, microseconds.
        deltas_us: Vec<u64>,
    },
}

impl RecordAtom {
    /// Day this atom's windows belong to.
    pub fn day(&self) -> u32 {
        self.template().day
    }

    /// Start of the atom's first window, microseconds into its day.
    pub fn first_time_us(&self) -> u64 {
        self.template().time_us
    }

    /// The first window (all repeats share its endpoints, bytes and
    /// duration).
    pub fn template(&self) -> &ContactRecord {
        match self {
            RecordAtom::Literal(t)
            | RecordAtom::Periodic { template: t, .. }
            | RecordAtom::DeltaRun { template: t, .. } => t,
        }
    }

    /// Number of windows this atom expands to.
    pub fn window_count(&self) -> u64 {
        match self {
            RecordAtom::Literal(_) => 1,
            RecordAtom::Periodic { repeats, .. } => u64::from(*repeats),
            RecordAtom::DeltaRun { deltas_us, .. } => deltas_us.len() as u64 + 1,
        }
    }

    /// The start time of repeat `k`, microseconds into the day.
    ///
    /// # Panics
    /// If `k` is out of range.
    pub fn start_of(&self, k: u64) -> u64 {
        match self {
            RecordAtom::Literal(t) => {
                assert_eq!(k, 0, "literal atoms have one window");
                t.time_us
            }
            RecordAtom::Periodic {
                template,
                period_us,
                repeats,
            } => {
                assert!(k < u64::from(*repeats), "repeat out of range");
                template.time_us + period_us * k
            }
            RecordAtom::DeltaRun {
                template,
                deltas_us,
            } => {
                assert!(k <= deltas_us.len() as u64, "repeat out of range");
                template.time_us + deltas_us[..k as usize].iter().sum::<u64>()
            }
        }
    }

    /// Expands this atom into its windows, in time order.
    pub fn expand(&self) -> impl Iterator<Item = ContactRecord> + '_ {
        let template = *self.template();
        (0..self.window_count()).map(move |k| ContactRecord {
            time_us: self.start_of(k),
            ..template
        })
    }
}

/// A compressed contact plan: atoms in `(day, first time)` order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordPlan {
    atoms: Vec<RecordAtom>,
}

impl RecordPlan {
    /// Builds a plan from atoms, stable-sorting them by
    /// `(day, first time)` — the canonical order expansion ties break on.
    pub fn new(mut atoms: Vec<RecordAtom>) -> Self {
        atoms.sort_by_key(|a| (a.day(), a.first_time_us()));
        Self { atoms }
    }

    /// The atoms, in canonical order.
    pub fn atoms(&self) -> &[RecordAtom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Total windows across all atoms.
    pub fn window_count(&self) -> u64 {
        self.atoms.iter().map(RecordAtom::window_count).sum()
    }

    /// Expands the whole plan back to records in `(day, time)` order with
    /// ties broken by atom order — for a plan built by
    /// [`compress_contacts`], exactly the input sequence.
    pub fn expand(&self) -> Vec<ContactRecord> {
        let mut out: Vec<(u32, u64, usize, ContactRecord)> = Vec::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            for r in atom.expand() {
                out.push((r.day, r.time_us, i, r));
            }
        }
        out.sort_by_key(|&(day, t, i, _)| (day, t, i));
        out.into_iter().map(|(_, _, _, r)| r).collect()
    }

    /// Serializes the plan to the compact binary format (`RPLN1`,
    /// LEB128-varint fields).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.atoms.len() * 12);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, self.atoms.len() as u64);
        for atom in &self.atoms {
            let t = atom.template();
            out.push(match atom {
                RecordAtom::Literal(_) => 0,
                RecordAtom::Periodic { .. } => 1,
                RecordAtom::DeltaRun { .. } => 2,
            });
            for field in [
                u64::from(t.day),
                t.time_us,
                u64::from(t.a),
                u64::from(t.b),
                t.bytes,
                t.duration_us,
            ] {
                write_varint(&mut out, field);
            }
            match atom {
                RecordAtom::Literal(_) => {}
                RecordAtom::Periodic {
                    period_us, repeats, ..
                } => {
                    write_varint(&mut out, *period_us);
                    write_varint(&mut out, u64::from(*repeats));
                }
                RecordAtom::DeltaRun { deltas_us, .. } => {
                    write_varint(&mut out, deltas_us.len() as u64);
                    for &d in deltas_us {
                        write_varint(&mut out, d);
                    }
                }
            }
        }
        out
    }

    /// Size of the binary encoding, bytes — the plan-representation size
    /// the compression metrics compare against `window_count() *` the
    /// per-record text/struct cost.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Parses a plan previously written by [`RecordPlan::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PlanDecodeError> {
        let rest = bytes.strip_prefix(MAGIC).ok_or(PlanDecodeError::BadMagic)?;
        let mut cursor = Cursor { rest };
        let count = cursor.varint()?;
        let mut atoms = Vec::new();
        for _ in 0..count {
            let tag = cursor.byte()?;
            let template = ContactRecord {
                day: cursor.varint()? as u32,
                time_us: cursor.varint()?,
                a: cursor.varint()? as u32,
                b: cursor.varint()? as u32,
                bytes: cursor.varint()?,
                duration_us: cursor.varint()?,
            };
            atoms.push(match tag {
                0 => RecordAtom::Literal(template),
                1 => RecordAtom::Periodic {
                    template,
                    period_us: cursor.varint()?,
                    repeats: cursor.varint()? as u32,
                },
                2 => {
                    let n = cursor.varint()? as usize;
                    let mut deltas_us = Vec::with_capacity(n);
                    for _ in 0..n {
                        deltas_us.push(cursor.varint()?);
                    }
                    RecordAtom::DeltaRun {
                        template,
                        deltas_us,
                    }
                }
                t => return Err(PlanDecodeError::BadTag(t)),
            });
        }
        if !cursor.rest.is_empty() {
            return Err(PlanDecodeError::TrailingBytes);
        }
        Ok(Self::new(atoms))
    }
}

/// Binary-plan magic header.
const MAGIC: &[u8] = b"RPLN1\n";

/// Decode failure for the binary plan format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecodeError {
    /// The input does not start with the `RPLN1` magic.
    BadMagic,
    /// An atom tag byte was not 0/1/2.
    BadTag(u8),
    /// A varint or field ran past the end of the input.
    Truncated,
    /// Bytes remained after the declared atom count.
    TrailingBytes,
}

impl std::fmt::Display for PlanDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDecodeError::BadMagic => write!(f, "missing RPLN1 magic"),
            PlanDecodeError::BadTag(t) => write!(f, "unknown atom tag {t}"),
            PlanDecodeError::Truncated => write!(f, "truncated plan"),
            PlanDecodeError::TrailingBytes => write!(f, "trailing bytes after last atom"),
        }
    }
}

impl std::error::Error for PlanDecodeError {}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Cursor<'a> {
    rest: &'a [u8],
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<u8, PlanDecodeError> {
        let (&b, rest) = self.rest.split_first().ok_or(PlanDecodeError::Truncated)?;
        self.rest = rest;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, PlanDecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(PlanDecodeError::Truncated);
            }
        }
    }
}

/// One open run during compression.
struct Run {
    template: ContactRecord,
    last_time_us: u64,
    deltas_us: Vec<u64>,
}

impl Run {
    fn into_atom(self) -> RecordAtom {
        if self.deltas_us.is_empty() {
            return RecordAtom::Literal(self.template);
        }
        let first = self.deltas_us[0];
        if self.deltas_us.iter().all(|&d| d == first) {
            return RecordAtom::Periodic {
                template: self.template,
                period_us: first,
                repeats: self.deltas_us.len() as u32 + 1,
            };
        }
        RecordAtom::DeltaRun {
            template: self.template,
            deltas_us: self.deltas_us,
        }
    }
}

/// Run-length/delta-compresses a `(day, time)`-ordered contact-record
/// sequence (e.g. the contacts of [`crate::stream_records`]) into a
/// [`RecordPlan`] whose expansion replays the input exactly.
///
/// Consecutive windows of the same `(day, a, b, bytes, duration)` key fold
/// into one run; regular gaps become [`RecordAtom::Periodic`], irregular
/// ones [`RecordAtom::DeltaRun`]. Memory while encoding is O(distinct
/// keys) for run bookkeeping plus the output plan itself.
///
/// Ties are handled conservatively: within a group of records sharing one
/// `(day, time)`, runs may only be extended in nondecreasing run-creation
/// order — an extension that would interleave (and therefore reorder the
/// expansion) closes the run and opens a fresh atom instead.
///
/// # Panics
/// If the input is not `(day, time)`-ordered.
pub fn compress_contacts<I: IntoIterator<Item = ContactRecord>>(records: I) -> RecordPlan {
    type Key = (u32, u32, u32, u64, u64);
    let mut runs: Vec<Run> = Vec::new();
    let mut open: HashMap<Key, usize> = HashMap::new();
    let mut last: Option<(u32, u64)> = None;
    // Largest run index extended within the current tie group.
    let mut tie_max: Option<usize> = None;

    for r in records {
        let at = (r.day, r.time_us);
        if let Some(prev) = last {
            assert!(prev <= at, "records must be (day, time) ordered");
            if prev != at {
                tie_max = None;
            }
        }
        last = Some(at);

        let key: Key = (r.day, r.a, r.b, r.bytes, r.duration_us);
        let extendable = open
            .get(&key)
            .copied()
            .filter(|&ri| tie_max.is_none_or(|m| m <= ri));
        match extendable {
            Some(ri) => {
                let run = &mut runs[ri];
                run.deltas_us.push(r.time_us - run.last_time_us);
                run.last_time_us = r.time_us;
                tie_max = Some(ri);
            }
            None => {
                let ri = runs.len();
                runs.push(Run {
                    template: r,
                    last_time_us: r.time_us,
                    deltas_us: Vec::new(),
                });
                open.insert(key, ri);
                tie_max = Some(ri);
            }
        }
    }
    RecordPlan::new(runs.into_iter().map(Run::into_atom).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(day: u32, time_us: u64, a: u32, b: u32, bytes: u64, duration_us: u64) -> ContactRecord {
        ContactRecord {
            day,
            time_us,
            a,
            b,
            bytes,
            duration_us,
        }
    }

    #[test]
    fn periodic_run_compresses_to_one_atom() {
        let input: Vec<_> = (0..100)
            .map(|k| rec(0, 10 + 50 * k, 1, 2, 512, 0))
            .collect();
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.atom_count(), 1);
        assert!(matches!(
            plan.atoms()[0],
            RecordAtom::Periodic {
                period_us: 50,
                repeats: 100,
                ..
            }
        ));
        assert_eq!(plan.window_count(), 100);
        assert_eq!(plan.expand(), input);
        // 100 records compress to a handful of bytes.
        assert!(plan.encoded_len() < 32, "{} bytes", plan.encoded_len());
    }

    #[test]
    fn irregular_run_becomes_delta_atom() {
        let times = [5u64, 9, 20, 21, 100];
        let input: Vec<_> = times.iter().map(|&t| rec(2, t, 3, 4, 64, 1000)).collect();
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.atom_count(), 1);
        match &plan.atoms()[0] {
            RecordAtom::DeltaRun {
                template,
                deltas_us,
            } => {
                assert_eq!(template.time_us, 5);
                assert_eq!(deltas_us, &vec![4, 11, 1, 79]);
            }
            other => panic!("expected delta run, got {other:?}"),
        }
        assert_eq!(plan.expand(), input);
    }

    #[test]
    fn interleaved_pairs_round_trip() {
        let input = vec![
            rec(0, 0, 1, 2, 10, 0),
            rec(0, 3, 3, 4, 20, 0),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 8, 3, 4, 20, 0),
            rec(0, 10, 1, 2, 10, 0),
            rec(1, 1, 1, 2, 10, 0),
        ];
        let plan = compress_contacts(input.clone());
        // Pair (1,2) day 0 is periodic; (3,4) periodic; day 1 separate.
        assert_eq!(plan.atom_count(), 3);
        assert_eq!(plan.expand(), input);
    }

    #[test]
    fn ties_never_reorder() {
        // Run A opens at t=0; at t=5 the order is B then A — extending A
        // after B would emit A's repeat before B's window on expansion, so
        // the encoder must break A's run.
        let input = vec![
            rec(0, 0, 1, 2, 10, 0),
            rec(0, 5, 3, 4, 20, 0),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 9, 3, 4, 20, 0),
        ];
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.expand(), input);
    }

    #[test]
    fn same_instant_same_key_repeats_stay_one_run() {
        let input = vec![
            rec(0, 7, 1, 2, 10, 0),
            rec(0, 7, 1, 2, 10, 0),
            rec(0, 7, 1, 2, 10, 0),
        ];
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.atom_count(), 1);
        assert!(matches!(
            plan.atoms()[0],
            RecordAtom::Periodic {
                period_us: 0,
                repeats: 3,
                ..
            }
        ));
        assert_eq!(plan.expand(), input);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn out_of_order_input_panics() {
        compress_contacts(vec![rec(0, 9, 1, 2, 1, 0), rec(0, 3, 1, 2, 1, 0)]);
    }

    #[test]
    fn binary_round_trip() {
        let input = vec![
            rec(0, 0, 1, 2, 10, 0),
            rec(0, 3, 3, 4, u64::MAX, 5_000_000),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 7, 5, 6, 1, 0),
            rec(0, 10, 1, 2, 10, 0),
            rec(0, 11, 3, 4, u64::MAX, 5_000_000),
            rec(0, 30, 1, 2, 10, 0),
        ];
        let plan = compress_contacts(input.clone());
        let bytes = plan.to_bytes();
        assert_eq!(bytes.len(), plan.encoded_len());
        let back = RecordPlan::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, plan);
        assert_eq!(back.expand(), input);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            RecordPlan::from_bytes(b"nope"),
            Err(PlanDecodeError::BadMagic)
        );
        let mut bytes = compress_contacts(vec![rec(0, 1, 1, 2, 3, 0)]).to_bytes();
        bytes.push(0);
        assert_eq!(
            RecordPlan::from_bytes(&bytes),
            Err(PlanDecodeError::TrailingBytes)
        );
        bytes.pop();
        bytes.pop();
        assert_eq!(
            RecordPlan::from_bytes(&bytes),
            Err(PlanDecodeError::Truncated)
        );
    }

    #[test]
    fn empty_plan_is_fine() {
        let plan = compress_contacts(Vec::new());
        assert_eq!(plan.atom_count(), 0);
        assert_eq!(plan.window_count(), 0);
        assert!(plan.expand().is_empty());
        let back = RecordPlan::from_bytes(&plan.to_bytes()).unwrap();
        assert_eq!(back, plan);
    }
}
