//! Compressed contact plans: run-length/delta encoding over contact
//! records, plus a compact binary format.
//!
//! A materialized contact plan spends one full [`ContactRecord`] per
//! meeting even when the plan is mostly *regular* — the same pair meeting
//! again and again with the same opportunity. This module factors that
//! regularity out. A plan is a sequence of [`RecordAtom`]s:
//!
//! * [`RecordAtom::Literal`] — one window, stored verbatim;
//! * [`RecordAtom::Periodic`] — a template window repeated `repeats` times
//!   at a fixed `period_us` (phase = the template's `time_us`, jitter-free,
//!   per-repeat capacity = the template's `bytes`);
//! * [`RecordAtom::DeltaRun`] — a template window plus one start-time
//!   delta per further repeat: the irregular-gap run, still one small
//!   integer per meeting instead of a whole record.
//!
//! [`compress_contacts`] builds a plan from a `(day, time)`-ordered record
//! stream (the order [`crate::stream_records`] yields) and guarantees the
//! **round trip is exact**: [`RecordPlan::expand`] replays the original
//! records byte-for-byte, in the original order, including ties — the
//! encoder refuses to extend a run when doing so would reorder records
//! that share a timestamp, falling back to a fresh atom instead.
//!
//! Expansion order is defined as the stable sort of the concatenated atom
//! expansions by `(day, time_us)`: atoms are kept in first-record order,
//! each atom's own windows are nondecreasing in time, and the lazy cursor
//! in `dtn-sim` heap-merges on `(day, time_us, atom index)` — so lazy and
//! materialized expansion are identical by construction.

use crate::record::ContactRecord;
use crate::wire::{crc32, write_varint, ByteCursor, WireError};
use std::collections::HashMap;

/// One atom of a compressed contact plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordAtom {
    /// A single literal window.
    Literal(ContactRecord),
    /// `repeats` copies of `template`, the k-th starting at
    /// `template.time_us + k * period_us` (k in `0..repeats`), all within
    /// the template's day. `repeats >= 2`.
    Periodic {
        /// The first window of the train; its `time_us` is the phase.
        template: ContactRecord,
        /// Start-to-start gap between consecutive repeats, microseconds.
        period_us: u64,
        /// Total number of windows, including the template's.
        repeats: u32,
    },
    /// `deltas_us.len() + 1` windows: the template, then one more per
    /// delta, each starting `deltas_us[k]` after its predecessor.
    DeltaRun {
        /// The first window of the run.
        template: ContactRecord,
        /// Consecutive start-to-start gaps, microseconds.
        deltas_us: Vec<u64>,
    },
}

impl RecordAtom {
    /// Day this atom's windows belong to.
    pub fn day(&self) -> u32 {
        self.template().day
    }

    /// Start of the atom's first window, microseconds into its day.
    pub fn first_time_us(&self) -> u64 {
        self.template().time_us
    }

    /// The first window (all repeats share its endpoints, bytes and
    /// duration).
    pub fn template(&self) -> &ContactRecord {
        match self {
            RecordAtom::Literal(t)
            | RecordAtom::Periodic { template: t, .. }
            | RecordAtom::DeltaRun { template: t, .. } => t,
        }
    }

    /// Number of windows this atom expands to.
    pub fn window_count(&self) -> u64 {
        match self {
            RecordAtom::Literal(_) => 1,
            RecordAtom::Periodic { repeats, .. } => u64::from(*repeats),
            RecordAtom::DeltaRun { deltas_us, .. } => deltas_us.len() as u64 + 1,
        }
    }

    /// The start time of repeat `k`, microseconds into the day.
    ///
    /// # Panics
    /// If `k` is out of range.
    pub fn start_of(&self, k: u64) -> u64 {
        match self {
            RecordAtom::Literal(t) => {
                assert_eq!(k, 0, "literal atoms have one window");
                t.time_us
            }
            RecordAtom::Periodic {
                template,
                period_us,
                repeats,
            } => {
                assert!(k < u64::from(*repeats), "repeat out of range");
                template.time_us + period_us * k
            }
            RecordAtom::DeltaRun {
                template,
                deltas_us,
            } => {
                assert!(k <= deltas_us.len() as u64, "repeat out of range");
                template.time_us + deltas_us[..k as usize].iter().sum::<u64>()
            }
        }
    }

    /// Expands this atom into its windows, in time order.
    pub fn expand(&self) -> impl Iterator<Item = ContactRecord> + '_ {
        let template = *self.template();
        (0..self.window_count()).map(move |k| ContactRecord {
            time_us: self.start_of(k),
            ..template
        })
    }
}

/// A compressed contact plan: atoms in `(day, first time)` order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordPlan {
    atoms: Vec<RecordAtom>,
}

impl RecordPlan {
    /// Builds a plan from atoms, stable-sorting them by
    /// `(day, first time)` — the canonical order expansion ties break on.
    pub fn new(mut atoms: Vec<RecordAtom>) -> Self {
        atoms.sort_by_key(|a| (a.day(), a.first_time_us()));
        Self { atoms }
    }

    /// The atoms, in canonical order.
    pub fn atoms(&self) -> &[RecordAtom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Total windows across all atoms.
    pub fn window_count(&self) -> u64 {
        self.atoms.iter().map(RecordAtom::window_count).sum()
    }

    /// Expands the whole plan back to records in `(day, time)` order with
    /// ties broken by atom order — for a plan built by
    /// [`compress_contacts`], exactly the input sequence.
    pub fn expand(&self) -> Vec<ContactRecord> {
        let mut out: Vec<(u32, u64, usize, ContactRecord)> = Vec::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            for r in atom.expand() {
                out.push((r.day, r.time_us, i, r));
            }
        }
        out.sort_by_key(|&(day, t, i, _)| (day, t, i));
        out.into_iter().map(|(_, _, _, r)| r).collect()
    }

    /// Serializes the plan to the compact binary format: the `RPLN1` magic,
    /// then a varint body length and a CRC32 of the body, then the body
    /// (varint atom count followed by the atoms). The length framing and
    /// checksum let [`RecordPlan::from_bytes`] reject truncated or
    /// bit-flipped files with an error naming the byte offset instead of
    /// decoding garbage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(8 + self.atoms.len() * 12);
        write_varint(&mut body, self.atoms.len() as u64);
        for atom in &self.atoms {
            let t = atom.template();
            body.push(match atom {
                RecordAtom::Literal(_) => 0,
                RecordAtom::Periodic { .. } => 1,
                RecordAtom::DeltaRun { .. } => 2,
            });
            for field in [
                u64::from(t.day),
                t.time_us,
                u64::from(t.a),
                u64::from(t.b),
                t.bytes,
                t.duration_us,
            ] {
                write_varint(&mut body, field);
            }
            match atom {
                RecordAtom::Literal(_) => {}
                RecordAtom::Periodic {
                    period_us, repeats, ..
                } => {
                    write_varint(&mut body, *period_us);
                    write_varint(&mut body, u64::from(*repeats));
                }
                RecordAtom::DeltaRun { deltas_us, .. } => {
                    write_varint(&mut body, deltas_us.len() as u64);
                    for &d in deltas_us {
                        write_varint(&mut body, d);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(MAGIC.len() + 8 + body.len());
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Size of the binary encoding, bytes — the plan-representation size
    /// the compression metrics compare against `window_count() *` the
    /// per-record text/struct cost.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Parses a plan previously written by [`RecordPlan::to_bytes`].
    ///
    /// Every failure mode — missing magic, a truncated file, a length that
    /// disagrees with the bytes present, a checksum mismatch from a flipped
    /// bit, a malformed atom — returns a descriptive [`PlanDecodeError`]
    /// naming the byte offset; nothing panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PlanDecodeError> {
        let framed = bytes.strip_prefix(MAGIC).ok_or(PlanDecodeError::BadMagic)?;
        let base = MAGIC.len();
        let mut framing = ByteCursor::new(framed);
        let declared = framing.varint().map_err(wire_at(base))?;
        let expected = framing.u32_le().map_err(wire_at(base))?;
        let body_offset = base + framing.offset();
        if u64::try_from(framing.remaining()).expect("usize fits u64") < declared {
            return Err(PlanDecodeError::BadLength {
                declared,
                available: framing.remaining(),
                offset: body_offset,
            });
        }
        let body = framing
            .take(declared as usize)
            .expect("length checked above");
        if !framing.is_empty() {
            return Err(PlanDecodeError::TrailingBytes {
                offset: base + framing.offset(),
            });
        }
        let found = crc32(body);
        if found != expected {
            return Err(PlanDecodeError::BadChecksum {
                expected,
                found,
                offset: body_offset,
            });
        }

        let mut cursor = ByteCursor::new(body);
        let at = wire_at(body_offset);
        let count = cursor.varint().map_err(at)?;
        let mut atoms = Vec::new();
        for _ in 0..count {
            let tag_offset = body_offset + cursor.offset();
            let tag = cursor.byte().map_err(at)?;
            let template = ContactRecord {
                day: cursor.varint().map_err(at)? as u32,
                time_us: cursor.varint().map_err(at)?,
                a: cursor.varint().map_err(at)? as u32,
                b: cursor.varint().map_err(at)? as u32,
                bytes: cursor.varint().map_err(at)?,
                duration_us: cursor.varint().map_err(at)?,
            };
            atoms.push(match tag {
                0 => RecordAtom::Literal(template),
                1 => RecordAtom::Periodic {
                    template,
                    period_us: cursor.varint().map_err(at)?,
                    repeats: cursor.varint().map_err(at)? as u32,
                },
                2 => {
                    let n = cursor.varint().map_err(at)? as usize;
                    let mut deltas_us = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        deltas_us.push(cursor.varint().map_err(at)?);
                    }
                    RecordAtom::DeltaRun {
                        template,
                        deltas_us,
                    }
                }
                tag => {
                    return Err(PlanDecodeError::BadTag {
                        tag,
                        offset: tag_offset,
                    })
                }
            });
        }
        if !cursor.is_empty() {
            return Err(PlanDecodeError::TrailingBytes {
                offset: body_offset + cursor.offset(),
            });
        }
        Ok(Self::new(atoms))
    }
}

/// Maps a region-relative [`WireError`] to a file-absolute decode error.
fn wire_at(base: usize) -> impl Fn(WireError) -> PlanDecodeError + Copy {
    move |e| match e {
        WireError::Truncated { offset } | WireError::VarintOverflow { offset } => {
            PlanDecodeError::Truncated {
                offset: base + offset,
            }
        }
    }
}

/// Binary-plan magic header.
const MAGIC: &[u8] = b"RPLN1\n";

/// Decode failure for the binary plan format. Every variant except
/// [`PlanDecodeError::BadMagic`] names the byte offset at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecodeError {
    /// The input does not start with the `RPLN1` magic.
    BadMagic,
    /// An atom tag byte was not 0/1/2.
    BadTag {
        /// The unrecognized tag value.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A varint or field ran past the end of the input.
    Truncated {
        /// Byte offset where the failed read started.
        offset: usize,
    },
    /// Bytes remained after the framed body or the declared atom count.
    TrailingBytes {
        /// Byte offset of the first unexpected byte.
        offset: usize,
    },
    /// The header's declared body length exceeds the bytes present — the
    /// signature of a truncated file.
    BadLength {
        /// Body length the header promises.
        declared: u64,
        /// Bytes actually available after the header.
        available: usize,
        /// Byte offset where the body starts.
        offset: usize,
    },
    /// The body failed its CRC32 — a bit flip or partial overwrite.
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the body actually present.
        found: u32,
        /// Byte offset where the body starts.
        offset: usize,
    },
}

impl std::fmt::Display for PlanDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDecodeError::BadMagic => write!(f, "missing RPLN1 magic"),
            PlanDecodeError::BadTag { tag, offset } => {
                write!(f, "unknown atom tag {tag} at byte offset {offset}")
            }
            PlanDecodeError::Truncated { offset } => {
                write!(f, "plan truncated at byte offset {offset}")
            }
            PlanDecodeError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after plan body at byte offset {offset}")
            }
            PlanDecodeError::BadLength {
                declared,
                available,
                offset,
            } => write!(
                f,
                "plan body at byte offset {offset} declares {declared} bytes \
                 but only {available} are present (truncated file?)"
            ),
            PlanDecodeError::BadChecksum {
                expected,
                found,
                offset,
            } => write!(
                f,
                "plan body at byte offset {offset} fails its checksum: \
                 recorded {expected:#010x}, computed {found:#010x} (corrupted file?)"
            ),
        }
    }
}

impl std::error::Error for PlanDecodeError {}

/// One open run during compression.
struct Run {
    template: ContactRecord,
    last_time_us: u64,
    deltas_us: Vec<u64>,
}

impl Run {
    fn into_atom(self) -> RecordAtom {
        if self.deltas_us.is_empty() {
            return RecordAtom::Literal(self.template);
        }
        let first = self.deltas_us[0];
        if self.deltas_us.iter().all(|&d| d == first) {
            return RecordAtom::Periodic {
                template: self.template,
                period_us: first,
                repeats: self.deltas_us.len() as u32 + 1,
            };
        }
        RecordAtom::DeltaRun {
            template: self.template,
            deltas_us: self.deltas_us,
        }
    }
}

/// Run-length/delta-compresses a `(day, time)`-ordered contact-record
/// sequence (e.g. the contacts of [`crate::stream_records`]) into a
/// [`RecordPlan`] whose expansion replays the input exactly.
///
/// Consecutive windows of the same `(day, a, b, bytes, duration)` key fold
/// into one run; regular gaps become [`RecordAtom::Periodic`], irregular
/// ones [`RecordAtom::DeltaRun`]. Memory while encoding is O(distinct
/// keys) for run bookkeeping plus the output plan itself.
///
/// Ties are handled conservatively: within a group of records sharing one
/// `(day, time)`, runs may only be extended in nondecreasing run-creation
/// order — an extension that would interleave (and therefore reorder the
/// expansion) closes the run and opens a fresh atom instead.
///
/// # Panics
/// If the input is not `(day, time)`-ordered.
pub fn compress_contacts<I: IntoIterator<Item = ContactRecord>>(records: I) -> RecordPlan {
    type Key = (u32, u32, u32, u64, u64);
    let mut runs: Vec<Run> = Vec::new();
    let mut open: HashMap<Key, usize> = HashMap::new();
    let mut last: Option<(u32, u64)> = None;
    // Largest run index extended within the current tie group.
    let mut tie_max: Option<usize> = None;

    for r in records {
        let at = (r.day, r.time_us);
        if let Some(prev) = last {
            assert!(prev <= at, "records must be (day, time) ordered");
            if prev != at {
                tie_max = None;
            }
        }
        last = Some(at);

        let key: Key = (r.day, r.a, r.b, r.bytes, r.duration_us);
        let extendable = open
            .get(&key)
            .copied()
            .filter(|&ri| tie_max.is_none_or(|m| m <= ri));
        match extendable {
            Some(ri) => {
                let run = &mut runs[ri];
                run.deltas_us.push(r.time_us - run.last_time_us);
                run.last_time_us = r.time_us;
                tie_max = Some(ri);
            }
            None => {
                let ri = runs.len();
                runs.push(Run {
                    template: r,
                    last_time_us: r.time_us,
                    deltas_us: Vec::new(),
                });
                open.insert(key, ri);
                tie_max = Some(ri);
            }
        }
    }
    RecordPlan::new(runs.into_iter().map(Run::into_atom).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(day: u32, time_us: u64, a: u32, b: u32, bytes: u64, duration_us: u64) -> ContactRecord {
        ContactRecord {
            day,
            time_us,
            a,
            b,
            bytes,
            duration_us,
        }
    }

    #[test]
    fn periodic_run_compresses_to_one_atom() {
        let input: Vec<_> = (0..100)
            .map(|k| rec(0, 10 + 50 * k, 1, 2, 512, 0))
            .collect();
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.atom_count(), 1);
        assert!(matches!(
            plan.atoms()[0],
            RecordAtom::Periodic {
                period_us: 50,
                repeats: 100,
                ..
            }
        ));
        assert_eq!(plan.window_count(), 100);
        assert_eq!(plan.expand(), input);
        // 100 records compress to a handful of bytes.
        assert!(plan.encoded_len() < 32, "{} bytes", plan.encoded_len());
    }

    #[test]
    fn irregular_run_becomes_delta_atom() {
        let times = [5u64, 9, 20, 21, 100];
        let input: Vec<_> = times.iter().map(|&t| rec(2, t, 3, 4, 64, 1000)).collect();
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.atom_count(), 1);
        match &plan.atoms()[0] {
            RecordAtom::DeltaRun {
                template,
                deltas_us,
            } => {
                assert_eq!(template.time_us, 5);
                assert_eq!(deltas_us, &vec![4, 11, 1, 79]);
            }
            other => panic!("expected delta run, got {other:?}"),
        }
        assert_eq!(plan.expand(), input);
    }

    #[test]
    fn interleaved_pairs_round_trip() {
        let input = vec![
            rec(0, 0, 1, 2, 10, 0),
            rec(0, 3, 3, 4, 20, 0),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 8, 3, 4, 20, 0),
            rec(0, 10, 1, 2, 10, 0),
            rec(1, 1, 1, 2, 10, 0),
        ];
        let plan = compress_contacts(input.clone());
        // Pair (1,2) day 0 is periodic; (3,4) periodic; day 1 separate.
        assert_eq!(plan.atom_count(), 3);
        assert_eq!(plan.expand(), input);
    }

    #[test]
    fn ties_never_reorder() {
        // Run A opens at t=0; at t=5 the order is B then A — extending A
        // after B would emit A's repeat before B's window on expansion, so
        // the encoder must break A's run.
        let input = vec![
            rec(0, 0, 1, 2, 10, 0),
            rec(0, 5, 3, 4, 20, 0),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 9, 3, 4, 20, 0),
        ];
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.expand(), input);
    }

    #[test]
    fn same_instant_same_key_repeats_stay_one_run() {
        let input = vec![
            rec(0, 7, 1, 2, 10, 0),
            rec(0, 7, 1, 2, 10, 0),
            rec(0, 7, 1, 2, 10, 0),
        ];
        let plan = compress_contacts(input.clone());
        assert_eq!(plan.atom_count(), 1);
        assert!(matches!(
            plan.atoms()[0],
            RecordAtom::Periodic {
                period_us: 0,
                repeats: 3,
                ..
            }
        ));
        assert_eq!(plan.expand(), input);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn out_of_order_input_panics() {
        compress_contacts(vec![rec(0, 9, 1, 2, 1, 0), rec(0, 3, 1, 2, 1, 0)]);
    }

    #[test]
    fn binary_round_trip() {
        let input = vec![
            rec(0, 0, 1, 2, 10, 0),
            rec(0, 3, 3, 4, u64::MAX, 5_000_000),
            rec(0, 5, 1, 2, 10, 0),
            rec(0, 7, 5, 6, 1, 0),
            rec(0, 10, 1, 2, 10, 0),
            rec(0, 11, 3, 4, u64::MAX, 5_000_000),
            rec(0, 30, 1, 2, 10, 0),
        ];
        let plan = compress_contacts(input.clone());
        let bytes = plan.to_bytes();
        assert_eq!(bytes.len(), plan.encoded_len());
        let back = RecordPlan::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, plan);
        assert_eq!(back.expand(), input);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            RecordPlan::from_bytes(b"nope"),
            Err(PlanDecodeError::BadMagic)
        );
        let bytes = compress_contacts(vec![rec(0, 1, 1, 2, 3, 0)]).to_bytes();

        // Appended bytes: the framing pins the body length, so the extras
        // are trailing and named by offset.
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            RecordPlan::from_bytes(&extended),
            Err(PlanDecodeError::TrailingBytes {
                offset: bytes.len()
            })
        );

        // Dropped bytes: the declared length no longer fits.
        let mut truncated = bytes.clone();
        truncated.pop();
        truncated.pop();
        match RecordPlan::from_bytes(&truncated) {
            Err(PlanDecodeError::BadLength {
                declared,
                available,
                ..
            }) => assert_eq!(available as u64 + 2, declared),
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_rejected_with_an_offset() {
        let bytes = compress_contacts(vec![
            rec(0, 1, 1, 2, 3, 0),
            rec(0, 5, 1, 2, 3, 0),
            rec(0, 20, 1, 2, 3, 0),
            rec(0, 21, 3, 4, 9, 7),
        ])
        .to_bytes();
        for len in 0..bytes.len() {
            let err = RecordPlan::from_bytes(&bytes[..len]).expect_err("truncated");
            match err {
                PlanDecodeError::BadMagic
                | PlanDecodeError::Truncated { .. }
                | PlanDecodeError::BadLength { .. } => {}
                other => panic!("unexpected error for len {len}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let plan = compress_contacts(vec![
            rec(0, 1, 1, 2, 3, 0),
            rec(0, 5, 1, 2, 3, 0),
            rec(0, 20, 1, 2, 3, 0),
        ]);
        let bytes = plan.to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    RecordPlan::from_bytes(&corrupt) != Ok(plan.clone()),
                    "flip of bit {bit} at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn bad_tag_names_its_offset() {
        // Build a framed body by hand: one atom with tag 9.
        let mut body = Vec::new();
        crate::wire::write_varint(&mut body, 1); // atom count
        body.push(9); // bogus tag
        body.extend_from_slice(&[0u8; 6]); // template fields
        let mut bytes = b"RPLN1\n".to_vec();
        crate::wire::write_varint(&mut bytes, body.len() as u64);
        bytes.extend_from_slice(&crate::wire::crc32(&body).to_le_bytes());
        let tag_offset = bytes.len() + 1; // after the atom count varint
        bytes.extend_from_slice(&body);
        assert_eq!(
            RecordPlan::from_bytes(&bytes),
            Err(PlanDecodeError::BadTag {
                tag: 9,
                offset: tag_offset
            })
        );
    }

    #[test]
    fn empty_plan_is_fine() {
        let plan = compress_contacts(Vec::new());
        assert_eq!(plan.atom_count(), 0);
        assert_eq!(plan.window_count(), 0);
        assert!(plan.expand().is_empty());
        let back = RecordPlan::from_bytes(&plan.to_bytes()).unwrap();
        assert_eq!(back, plan);
    }
}
