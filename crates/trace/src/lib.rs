//! Contact and workload trace formats for the RAPID DTN reproduction.
//!
//! The paper drives its simulator from logs collected on the DieselNet
//! testbed: per-meeting records of "bus-to-bus meeting duration and
//! bandwidth" plus packet-generation logs (§5.1, §5.3). This crate defines
//! the equivalent on-disk representation so traces — whether produced by the
//! synthetic DieselNet generator or written by hand — can be saved, shared
//! and replayed deterministically.
//!
//! # Format
//!
//! A trace file is line-oriented UTF-8 text:
//!
//! ```text
//! RAPIDTRACE v1
//! # comment lines and blank lines are ignored
//! C <day> <time_us> <node_a> <node_b> <bytes> [duration_us]
//! P <day> <time_us> <src> <dst> <bytes>
//! ```
//!
//! `C` records a transfer opportunity: at `time_us` microseconds into `day`,
//! nodes `a` and `b` meet. Without the optional sixth field (or with
//! `duration_us = 0`) the meeting is instantaneous and `bytes` is the whole
//! per-direction opportunity — the paper's edge annotation `(t_e, s_e)`
//! (§3.1). With a positive `duration_us` the record is a *contact window*
//! open for that long, and `bytes` is the per-direction link rate in
//! bytes/second (contact-graph-routing style). Serialization omits the sixth
//! field for instantaneous records, so traces written before windows existed
//! round-trip byte-identically. `P` records a packet creation (the workload
//! tuple `(u, v, s, t)`). Records within a day must be time-ordered;
//! [`parse`] verifies this and rejects malformed input with a line-precise
//! error.

pub mod plan;
pub mod record;
pub mod snapshot;
pub mod wire;

pub use plan::{compress_contacts, PlanDecodeError, RecordAtom, RecordPlan};
pub use record::{ContactRecord, PacketRecord, Record};
pub use snapshot::{SnapshotDecodeError, SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC};
pub use wire::{crc32, write_varint, ByteCursor, WireError};

use std::fmt;

/// Magic header expected on the first non-blank line of a trace file.
pub const HEADER: &str = "RAPIDTRACE v1";

/// A parsed trace: all records, plus derived per-day indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All records in `(day, time)` order.
    pub records: Vec<Record>,
}

impl Trace {
    /// Builds a trace from records, sorting them by `(day, time)` with
    /// contacts before packets at equal timestamps (a packet created at the
    /// exact instant of a meeting does not ride that same meeting — the
    /// paper's contacts are instantaneous events).
    pub fn new(mut records: Vec<Record>) -> Self {
        records.sort_by_key(|r| (r.day(), r.time_us(), r.kind_rank()));
        Self { records }
    }

    /// Days present in this trace, ascending and deduplicated.
    pub fn days(&self) -> Vec<u32> {
        let mut days: Vec<u32> = self.records.iter().map(Record::day).collect();
        days.sort_unstable();
        days.dedup();
        days
    }

    /// All contact records for `day`, in time order.
    pub fn contacts_on(&self, day: u32) -> Vec<ContactRecord> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Contact(c) if c.day == day => Some(*c),
                _ => None,
            })
            .collect()
    }

    /// All packet records for `day`, in time order.
    pub fn packets_on(&self, day: u32) -> Vec<PacketRecord> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Packet(p) if p.day == day => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// The set of node ids appearing anywhere in the trace, ascending.
    pub fn node_ids(&self) -> Vec<u32> {
        let mut ids = Vec::new();
        for r in &self.records {
            match r {
                Record::Contact(c) => {
                    ids.push(c.a);
                    ids.push(c.b);
                }
                Record::Packet(p) => {
                    ids.push(p.src);
                    ids.push(p.dst);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Serializes the trace to the text format, including the header.
    pub fn to_string_format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.records.len() * 32 + 32);
        out.push_str(HEADER);
        out.push('\n');
        for r in &self.records {
            match r {
                Record::Contact(c) if c.duration_us > 0 => {
                    writeln!(
                        out,
                        "C {} {} {} {} {} {}",
                        c.day, c.time_us, c.a, c.b, c.bytes, c.duration_us
                    )
                    .expect("writing to String cannot fail");
                }
                Record::Contact(c) => {
                    writeln!(out, "C {} {} {} {} {}", c.day, c.time_us, c.a, c.b, c.bytes)
                        .expect("writing to String cannot fail");
                }
                Record::Packet(p) => {
                    writeln!(
                        out,
                        "P {} {} {} {} {}",
                        p.day, p.time_us, p.src, p.dst, p.bytes
                    )
                    .expect("writing to String cannot fail");
                }
            }
        }
        out
    }
}

/// Error produced by [`parse`], carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 = file-level problem).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The specific reason a trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The `RAPIDTRACE v1` header is missing or wrong.
    BadHeader,
    /// The record tag was not `C` or `P`.
    UnknownTag(String),
    /// A record had the wrong number of fields.
    FieldCount {
        /// Fields the record type requires.
        expected: usize,
        /// Fields actually present.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A contact connects a node to itself.
    SelfContact,
    /// A packet is addressed to its own source.
    SelfPacket,
    /// Records were not in non-decreasing `(day, time)` order.
    OutOfOrder,
    /// The underlying reader failed (streaming parse only).
    Io(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::BadHeader => {
                write!(f, "line {}: expected header `{HEADER}`", self.line)
            }
            ParseErrorKind::UnknownTag(t) => {
                write!(f, "line {}: unknown record tag `{t}`", self.line)
            }
            ParseErrorKind::FieldCount { expected, found } => write!(
                f,
                "line {}: expected {expected} fields, found {found}",
                self.line
            ),
            ParseErrorKind::BadNumber(s) => {
                write!(f, "line {}: invalid number `{s}`", self.line)
            }
            ParseErrorKind::SelfContact => {
                write!(f, "line {}: contact connects a node to itself", self.line)
            }
            ParseErrorKind::SelfPacket => {
                write!(f, "line {}: packet addressed to its source", self.line)
            }
            ParseErrorKind::OutOfOrder => write!(
                f,
                "line {}: records out of time order within a day",
                self.line
            ),
            ParseErrorKind::Io(e) => write!(f, "line {}: read failed: {e}", self.line),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses trace text into a [`Trace`].
pub fn parse(text: &str) -> Result<Trace, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    match lines.next() {
        Some((_, l)) if l == HEADER => {}
        Some((n, _)) => {
            return Err(ParseError {
                line: n,
                kind: ParseErrorKind::BadHeader,
            })
        }
        None => {
            return Err(ParseError {
                line: 0,
                kind: ParseErrorKind::BadHeader,
            })
        }
    }

    let mut records = Vec::new();
    let mut last_seen: Option<(u32, u64)> = None;
    for (line_no, line) in lines {
        let record = parse_record_line(line, line_no)?;
        check_order(&record, &mut last_seen, line_no)?;
        records.push(record);
    }
    Ok(Trace { records })
}

/// Parses one non-blank, non-comment record line.
fn parse_record_line(line: &str, line_no: usize) -> Result<Record, ParseError> {
    let mut fields = line.split_ascii_whitespace();
    let tag = fields.next().expect("non-empty line has a first token");
    let rest: Vec<&str> = fields.collect();
    match tag {
        "C" => {
            // 5 fields = instantaneous; 6 adds the window duration.
            let expected = if rest.len() == 6 { 6 } else { 5 };
            let v = parse_numbers(&rest, expected, line_no)?;
            if v[2] == v[3] {
                return Err(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::SelfContact,
                });
            }
            Ok(Record::Contact(ContactRecord {
                day: v[0] as u32,
                time_us: v[1],
                a: v[2] as u32,
                b: v[3] as u32,
                bytes: v[4],
                duration_us: v.get(5).copied().unwrap_or(0),
            }))
        }
        "P" => {
            let v = parse_numbers(&rest, 5, line_no)?;
            if v[2] == v[3] {
                return Err(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::SelfPacket,
                });
            }
            Ok(Record::Packet(PacketRecord {
                day: v[0] as u32,
                time_us: v[1],
                src: v[2] as u32,
                dst: v[3] as u32,
                bytes: v[4],
            }))
        }
        other => Err(ParseError {
            line: line_no,
            kind: ParseErrorKind::UnknownTag(other.to_string()),
        }),
    }
}

/// Enforces non-decreasing `(day, time)` order across records.
fn check_order(
    record: &Record,
    last_seen: &mut Option<(u32, u64)>,
    line_no: usize,
) -> Result<(), ParseError> {
    let key = (record.day(), record.time_us());
    if let Some(prev) = *last_seen {
        if key < prev {
            return Err(ParseError {
                line: line_no,
                kind: ParseErrorKind::OutOfOrder,
            });
        }
    }
    *last_seen = Some(key);
    Ok(())
}

/// Streams records from a reader one line at a time — the trace is never
/// materialized, so replaying a multi-gigabyte contact plan needs only the
/// reader's buffer. Yields records in file order after validating the
/// header, field syntax and `(day, time)` ordering exactly like [`parse`];
/// the first error ends the stream.
pub fn stream_records<R: std::io::BufRead>(reader: R) -> RecordStream<R> {
    RecordStream {
        lines: reader.lines(),
        line_no: 0,
        header_seen: false,
        last_seen: None,
        failed: false,
    }
}

/// Lazy record iterator built by [`stream_records`].
#[derive(Debug)]
pub struct RecordStream<R: std::io::BufRead> {
    lines: std::io::Lines<R>,
    line_no: usize,
    header_seen: bool,
    last_seen: Option<(u32, u64)>,
    failed: bool,
}

impl<R: std::io::BufRead> Iterator for RecordStream<R> {
    type Item = Result<Record, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            let line = match self.lines.next() {
                None if self.header_seen => return None,
                None => {
                    self.failed = true;
                    return Some(Err(ParseError {
                        line: 0,
                        kind: ParseErrorKind::BadHeader,
                    }));
                }
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(ParseError {
                        line: self.line_no + 1,
                        kind: ParseErrorKind::Io(e.to_string()),
                    }));
                }
                Some(Ok(line)) => line,
            };
            self.line_no += 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !self.header_seen {
                if line == HEADER {
                    self.header_seen = true;
                    continue;
                }
                self.failed = true;
                return Some(Err(ParseError {
                    line: self.line_no,
                    kind: ParseErrorKind::BadHeader,
                }));
            }
            let result = parse_record_line(line, self.line_no)
                .and_then(|r| check_order(&r, &mut self.last_seen, self.line_no).map(|()| r));
            if result.is_err() {
                self.failed = true;
            }
            return Some(result);
        }
    }
}

fn parse_numbers(fields: &[&str], expected: usize, line_no: usize) -> Result<Vec<u64>, ParseError> {
    if fields.len() != expected {
        return Err(ParseError {
            line: line_no,
            kind: ParseErrorKind::FieldCount {
                expected,
                found: fields.len(),
            },
        });
    }
    fields
        .iter()
        .map(|s| {
            s.parse::<u64>().map_err(|_| ParseError {
                line: line_no,
                kind: ParseErrorKind::BadNumber((*s).to_string()),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            Record::Packet(PacketRecord {
                day: 0,
                time_us: 50,
                src: 1,
                dst: 2,
                bytes: 1024,
            }),
            Record::Contact(ContactRecord {
                day: 0,
                time_us: 100,
                a: 1,
                b: 2,
                bytes: 4096,
                duration_us: 0,
            }),
            Record::Contact(ContactRecord {
                day: 1,
                time_us: 10,
                a: 2,
                b: 3,
                bytes: 2048,
                duration_us: 0,
            }),
        ])
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let text = t.to_string_format();
        let back = parse(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn new_sorts_records() {
        let t = Trace::new(vec![
            Record::Contact(ContactRecord {
                day: 1,
                time_us: 5,
                a: 1,
                b: 2,
                bytes: 1,
                duration_us: 0,
            }),
            Record::Contact(ContactRecord {
                day: 0,
                time_us: 9,
                a: 1,
                b: 2,
                bytes: 1,
                duration_us: 0,
            }),
        ]);
        assert_eq!(t.records[0].day(), 0);
    }

    #[test]
    fn contacts_sort_before_packets_at_same_instant() {
        let t = Trace::new(vec![
            Record::Packet(PacketRecord {
                day: 0,
                time_us: 5,
                src: 1,
                dst: 2,
                bytes: 1,
            }),
            Record::Contact(ContactRecord {
                day: 0,
                time_us: 5,
                a: 1,
                b: 2,
                bytes: 1,
                duration_us: 0,
            }),
        ]);
        assert!(matches!(t.records[0], Record::Contact(_)));
    }

    #[test]
    fn day_and_node_indices() {
        let t = sample();
        assert_eq!(t.days(), vec![0, 1]);
        assert_eq!(t.node_ids(), vec![1, 2, 3]);
        assert_eq!(t.contacts_on(0).len(), 1);
        assert_eq!(t.packets_on(0).len(), 1);
        assert_eq!(t.packets_on(1).len(), 0);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("\n# hi\n{HEADER}\n\n# mid\nC 0 1 1 2 10\n");
        let t = parse(&text).unwrap();
        assert_eq!(t.records.len(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse("C 0 1 1 2 10\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadHeader);
        let err = parse("").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadHeader);
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = parse(&format!("{HEADER}\nX 0 1 1 2 10\n")).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnknownTag("X".into()));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn field_count_enforced() {
        let err = parse(&format!("{HEADER}\nC 0 1 1 2\n")).unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::FieldCount {
                expected: 5,
                found: 4
            }
        );
    }

    #[test]
    fn bad_number_reported() {
        let err = parse(&format!("{HEADER}\nC 0 x 1 2 10\n")).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadNumber("x".into()));
    }

    #[test]
    fn self_contact_and_self_packet_rejected() {
        let err = parse(&format!("{HEADER}\nC 0 1 2 2 10\n")).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::SelfContact);
        let err = parse(&format!("{HEADER}\nP 0 1 2 2 10\n")).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::SelfPacket);
    }

    #[test]
    fn out_of_order_rejected() {
        let err = parse(&format!("{HEADER}\nC 0 10 1 2 5\nC 0 4 1 2 5\n")).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::OutOfOrder);
        let err = parse(&format!("{HEADER}\nC 1 10 1 2 5\nC 0 40 1 2 5\n")).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::OutOfOrder);
    }

    #[test]
    fn windowed_contact_round_trip() {
        let t = Trace::new(vec![Record::Contact(ContactRecord {
            day: 2,
            time_us: 10,
            a: 4,
            b: 5,
            bytes: 2048, // bytes/sec while the window is open
            duration_us: 3_000_000,
        })]);
        let text = t.to_string_format();
        assert!(text.contains("C 2 10 4 5 2048 3000000"), "{text}");
        assert_eq!(parse(&text).unwrap(), t);
    }

    #[test]
    fn five_field_contact_parses_as_instantaneous() {
        let t = parse(&format!("{HEADER}\nC 0 1 1 2 10\n")).unwrap();
        match t.records[0] {
            Record::Contact(c) => assert_eq!(c.duration_us, 0),
            _ => panic!("expected contact"),
        }
        // And serializing it back omits the sixth field.
        assert!(t.to_string_format().contains("C 0 1 1 2 10\n"));
    }

    #[test]
    fn seven_field_contact_rejected() {
        let err = parse(&format!("{HEADER}\nC 0 1 1 2 10 5 9\n")).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::FieldCount { .. }));
    }

    #[test]
    fn stream_records_matches_parse() {
        let text = sample().to_string_format();
        let streamed: Vec<Record> = stream_records(text.as_bytes())
            .map(|r| r.expect("valid trace"))
            .collect();
        assert_eq!(streamed, parse(&text).unwrap().records);
    }

    #[test]
    fn stream_records_reports_errors_and_stops() {
        let text = format!("{HEADER}\nC 0 10 1 2 5\nC 0 4 1 2 5\nC 0 20 1 2 5\n");
        let mut s = stream_records(text.as_bytes());
        assert!(s.next().unwrap().is_ok());
        let err = s.next().unwrap().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::OutOfOrder);
        assert_eq!(err.line, 3);
        assert!(s.next().is_none(), "stream is fused after an error");
    }

    #[test]
    fn stream_records_requires_header() {
        let mut s = stream_records("C 0 1 1 2 10\n".as_bytes());
        assert_eq!(
            s.next().unwrap().unwrap_err().kind,
            ParseErrorKind::BadHeader
        );
        let mut empty = stream_records("".as_bytes());
        assert_eq!(
            empty.next().unwrap().unwrap_err().kind,
            ParseErrorKind::BadHeader
        );
    }

    #[test]
    fn display_messages_are_line_precise() {
        let err = parse(&format!("{HEADER}\nC 0 1 1 2\n")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }
}
