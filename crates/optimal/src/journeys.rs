//! Time-respecting journeys over a contact schedule.
//!
//! A *journey* for a packet is an increasing sequence of contacts that
//! carries it from its source to its destination, respecting the engine's
//! event semantics: a packet created at time `t` cannot ride a contact at
//! exactly `t` (contacts precede creations at equal instants), while a
//! packet received in contact `k` can ride a later-ordered contact at the
//! same instant (the engine processes contacts in schedule order).

use dtn_sim::{NodeId, Schedule, Time};

/// A position in the day's event order: `(time, contact index)`.
/// A creation at time `t` sits after every contact at `t`
/// (`index = usize::MAX`).
pub type EventPos = (Time, usize);

/// The event position of a packet creation.
pub fn creation_pos(created_at: Time) -> EventPos {
    (created_at, usize::MAX)
}

/// One journey: indices into the schedule's contact list, strictly
/// increasing, such that consecutive contacts share the relay node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey {
    /// Contact indices, in order of traversal.
    pub contacts: Vec<usize>,
    /// Delivery time (time of the last contact).
    pub arrival: Time,
}

/// Earliest arrival of a packet created at `src` at `created_at`, at every
/// node, ignoring capacities — the per-packet lower bound the exact solver
/// prunes with. Entries are `None` for unreachable nodes.
pub fn earliest_arrivals(
    schedule: &Schedule,
    nodes: usize,
    src: NodeId,
    created_at: Time,
) -> Vec<Option<EventPos>> {
    let mut arrival: Vec<Option<EventPos>> = vec![None; nodes];
    arrival[src.index()] = Some(creation_pos(created_at));
    for (idx, c) in schedule.windows().iter().enumerate() {
        let pos = (c.start, idx);
        let a_ok = arrival[c.a.index()].is_some_and(|p| p < pos);
        let b_ok = arrival[c.b.index()].is_some_and(|p| p < pos);
        if a_ok {
            let slot = &mut arrival[c.b.index()];
            if slot.is_none_or(|p| pos < p) {
                *slot = Some(pos);
            }
        }
        if b_ok {
            let slot = &mut arrival[c.a.index()];
            if slot.is_none_or(|p| pos < p) {
                *slot = Some(pos);
            }
        }
    }
    arrival
}

/// Enumerates every journey from `src` (created at `created_at`) to `dst`
/// with at most `max_hops` contacts, up to `max_journeys` of them.
///
/// Journeys never revisit a node (a revisit is never useful under the
/// delay objective). Returns `None` if the enumeration would exceed
/// `max_journeys` — the caller's instance is too large for exact solving.
pub fn enumerate_journeys(
    schedule: &Schedule,
    src: NodeId,
    dst: NodeId,
    created_at: Time,
    max_hops: usize,
    max_journeys: usize,
) -> Option<Vec<Journey>> {
    assert_ne!(src, dst, "src and dst must differ");
    let contacts = schedule.windows();
    let mut out: Vec<Journey> = Vec::new();
    // DFS stack: (current node, event position, path, visited).
    let mut path: Vec<usize> = Vec::new();
    let mut visited: Vec<NodeId> = vec![src];
    if !dfs(
        contacts,
        src,
        creation_pos(created_at),
        dst,
        max_hops,
        max_journeys,
        &mut path,
        &mut visited,
        &mut out,
    ) {
        return None;
    }
    // Sort by arrival, then lexicographically — deterministic order for
    // the branch and bound.
    out.sort_by(|x, y| x.arrival.cmp(&y.arrival).then(x.contacts.cmp(&y.contacts)));
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    contacts: &[dtn_sim::ContactWindow],
    at: NodeId,
    pos: EventPos,
    dst: NodeId,
    hops_left: usize,
    max_journeys: usize,
    path: &mut Vec<usize>,
    visited: &mut Vec<NodeId>,
    out: &mut Vec<Journey>,
) -> bool {
    if hops_left == 0 {
        return true;
    }
    // Scan contacts strictly after `pos` that touch `at`.
    let start = contacts.partition_point(|c| (c.start, usize::MAX) < (pos.0, 0));
    for (off, c) in contacts[start..].iter().enumerate() {
        let idx = start + off;
        if (c.start, idx) <= pos {
            continue;
        }
        let next = if c.a == at {
            c.b
        } else if c.b == at {
            c.a
        } else {
            continue;
        };
        if visited.contains(&next) {
            continue;
        }
        path.push(idx);
        if next == dst {
            if out.len() >= max_journeys {
                path.pop();
                return false;
            }
            out.push(Journey {
                contacts: path.clone(),
                arrival: c.start,
            });
        } else {
            visited.push(next);
            let ok = dfs(
                contacts,
                next,
                (c.start, idx),
                dst,
                hops_left - 1,
                max_journeys,
                path,
                visited,
                out,
            );
            visited.pop();
            if !ok {
                path.pop();
                return false;
            }
        }
        path.pop();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::Contact;

    fn contact(t: u64, a: u32, b: u32) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), 1024)
    }

    fn schedule(cs: Vec<Contact>) -> Schedule {
        Schedule::new(cs)
    }

    #[test]
    fn earliest_arrival_chain() {
        let s = schedule(vec![
            contact(10, 0, 1),
            contact(20, 1, 2),
            contact(30, 2, 3),
        ]);
        let arr = earliest_arrivals(&s, 4, NodeId(0), Time::from_secs(0));
        assert_eq!(arr[0].unwrap().0, Time::from_secs(0));
        assert_eq!(arr[1].unwrap().0, Time::from_secs(10));
        assert_eq!(arr[2].unwrap().0, Time::from_secs(20));
        assert_eq!(arr[3].unwrap().0, Time::from_secs(30));
    }

    #[test]
    fn creation_after_contact_at_same_instant() {
        // Contact at t=10, packet created at t=10: unusable.
        let s = schedule(vec![contact(10, 0, 1)]);
        let arr = earliest_arrivals(&s, 2, NodeId(0), Time::from_secs(10));
        assert!(arr[1].is_none());
    }

    #[test]
    fn same_instant_relay_respects_schedule_order() {
        // Two contacts at t=10 in order (0,1) then (1,2): relay possible.
        let s = schedule(vec![contact(10, 0, 1), contact(10, 1, 2)]);
        let arr = earliest_arrivals(&s, 3, NodeId(0), Time::from_secs(0));
        assert_eq!(arr[2].unwrap().0, Time::from_secs(10));
        // In the opposite order the relay is impossible.
        let s2 = schedule(vec![contact(9, 1, 2), contact(10, 0, 1)]);
        let arr2 = earliest_arrivals(&s2, 3, NodeId(0), Time::from_secs(0));
        assert!(arr2[2].is_none());
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let s = schedule(vec![contact(10, 0, 1)]);
        let arr = earliest_arrivals(&s, 4, NodeId(0), Time::from_secs(0));
        assert!(arr[2].is_none());
        assert!(arr[3].is_none());
    }

    #[test]
    fn enumerate_direct_and_relayed() {
        let s = schedule(vec![
            contact(10, 0, 1),
            contact(20, 1, 2),
            contact(30, 0, 2),
        ]);
        let js = enumerate_journeys(&s, NodeId(0), NodeId(2), Time::from_secs(0), 4, 100).unwrap();
        // Two journeys: 0→1→2 arriving 20, and direct 0→2 arriving 30.
        assert_eq!(js.len(), 2);
        assert_eq!(js[0].arrival, Time::from_secs(20));
        assert_eq!(js[0].contacts, vec![0, 1]);
        assert_eq!(js[1].arrival, Time::from_secs(30));
        assert_eq!(js[1].contacts, vec![2]);
    }

    #[test]
    fn hop_limit_prunes() {
        let s = schedule(vec![
            contact(10, 0, 1),
            contact(20, 1, 2),
            contact(30, 2, 3),
        ]);
        let none =
            enumerate_journeys(&s, NodeId(0), NodeId(3), Time::from_secs(0), 2, 100).unwrap();
        assert!(none.is_empty());
        let some =
            enumerate_journeys(&s, NodeId(0), NodeId(3), Time::from_secs(0), 3, 100).unwrap();
        assert_eq!(some.len(), 1);
    }

    #[test]
    fn journey_budget_overflow_reports_none() {
        // A dense meeting schedule with many alternative journeys.
        let mut cs = Vec::new();
        for t in 1..30u64 {
            cs.push(contact(t, 0, 1));
            cs.push(contact(t, 1, 2));
        }
        let r = enumerate_journeys(&s_of(cs), NodeId(0), NodeId(2), Time::from_secs(0), 4, 5);
        assert!(r.is_none());
    }

    fn s_of(cs: Vec<Contact>) -> Schedule {
        Schedule::new(cs)
    }

    #[test]
    fn earliest_arrival_matches_best_journey() {
        let s = schedule(vec![
            contact(5, 0, 3),
            contact(10, 0, 1),
            contact(12, 3, 1),
            contact(20, 1, 2),
            contact(40, 0, 2),
        ]);
        let arr = earliest_arrivals(&s, 4, NodeId(0), Time::from_secs(0));
        let js = enumerate_journeys(&s, NodeId(0), NodeId(2), Time::from_secs(0), 4, 1000).unwrap();
        assert_eq!(arr[2].unwrap().0, js[0].arrival);
    }
}
