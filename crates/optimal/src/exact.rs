//! Exact optimal routing for small instances — the CPLEX stand-in.
//!
//! Solves the Appendix-D ILP for unit-size packets by branch and bound over
//! per-packet journey assignments: each packet either takes one journey
//! (consuming one capacity unit on each of its contacts) or stays
//! undelivered (charged `horizon − created`, the paper's objective for
//! undelivered packets). The conservation constraint of the ILP makes the
//! optimum a forwarding schedule, so journeys are the complete decision
//! space; with full journey enumeration the branch and bound is exact.
//!
//! Exponential in the worst case — exactly what Theorem 2 licenses — so
//! instance size is guarded by [`ExactLimits`].

use crate::journeys::{earliest_arrivals, enumerate_journeys, Journey};
use dtn_sim::workload::Workload;
use dtn_sim::{Schedule, Time};

/// Size guards for the exact solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactLimits {
    /// Maximum journeys enumerated per packet.
    pub max_journeys_per_packet: usize,
    /// Maximum hops per journey.
    pub max_hops: usize,
    /// Maximum packets.
    pub max_packets: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        Self {
            max_journeys_per_packet: 2_000,
            max_hops: 5,
            max_packets: 64,
        }
    }
}

/// The exact solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// Per packet: the chosen journey (`None` = undelivered).
    pub assignment: Vec<Option<Journey>>,
    /// Total delay objective, seconds (undelivered charged to horizon).
    pub total_delay_secs: f64,
    /// Number of packets delivered.
    pub delivered: usize,
    /// Average delay including undelivered (the Fig. 13 y-axis), seconds.
    pub avg_delay_secs: f64,
}

/// Solves the instance exactly.
///
/// Capacities are in whole packets per contact *direction-agnostic*: the
/// Appendix-D ILP's bandwidth constraint bounds the packets per edge; a
/// contact with `s` bytes carries `⌊s / packet_size⌋` packets each way, and
/// a journey uses one unit in one direction, so each contact contributes
/// that many units per direction. All packets must share one size.
///
/// Returns `None` when the instance exceeds `limits` (too many packets or
/// journeys) — callers fall back to [`crate::optimal::solve_bounded`].
pub fn solve_exact(
    schedule: &Schedule,
    workload: &Workload,
    horizon: Time,
    limits: ExactLimits,
) -> Option<ExactSolution> {
    let specs = workload.specs();
    if specs.is_empty() {
        return Some(ExactSolution {
            assignment: Vec::new(),
            total_delay_secs: 0.0,
            delivered: 0,
            avg_delay_secs: 0.0,
        });
    }
    if specs.len() > limits.max_packets {
        return None;
    }
    let size = specs[0].size_bytes;
    assert!(
        specs.iter().all(|s| s.size_bytes == size),
        "exact solver requires unit-size packets (Theorems hold for unit sizes)"
    );
    let nodes = schedule.node_count_hint().max(
        specs
            .iter()
            .map(|s| s.src.index().max(s.dst.index()) + 1)
            .max()
            .unwrap_or(0),
    );

    // Per-direction capacity in packets for each contact; a journey uses
    // one unit of the contact in its traversal direction. Directions do
    // not contend in the engine, and the dominant error of merging them
    // would be understating capacity, so track both directions as one pool
    // of 2·⌊s/size⌋ only when... — be faithful: two pools per contact.
    // Journey direction: determined while enumerating (from → to). For
    // simplicity and exactness we track per (contact, direction).
    let per_dir: Vec<u64> = schedule
        .windows()
        .iter()
        .map(|c| c.capacity() / size)
        .collect();

    // Enumerate journeys per packet.
    let mut journeys: Vec<Vec<Journey>> = Vec::with_capacity(specs.len());
    for s in specs {
        let js = enumerate_journeys(
            schedule,
            s.src,
            s.dst,
            s.time,
            limits.max_hops,
            limits.max_journeys_per_packet,
        )?;
        journeys.push(js);
    }

    // Per-packet costs.
    let undelivered_cost: Vec<f64> = specs
        .iter()
        .map(|s| horizon.since(s.time).as_secs_f64())
        .collect();
    let lower_bound: Vec<f64> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let arr = earliest_arrivals(schedule, nodes, s.src, s.time);
            match arr[s.dst.index()] {
                // Dropping is always available, so the bound is the better
                // of earliest delivery and the undelivered charge.
                Some((t, _)) => t.since(s.time).as_secs_f64().min(undelivered_cost[i]),
                None => undelivered_cost[i],
            }
        })
        .collect();

    // Branch order: fewest options first (most constrained).
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| journeys[i].len());
    // Suffix sums of lower bounds in branch order, for pruning.
    let mut suffix_lb = vec![0.0f64; order.len() + 1];
    for k in (0..order.len()).rev() {
        suffix_lb[k] = suffix_lb[k + 1] + lower_bound[order[k]];
    }

    // Greedy feasible solution as the incumbent.
    let mut caps: Vec<(u64, u64)> = per_dir.iter().map(|&c| (c, c)).collect();
    let mut incumbent: Vec<Option<usize>> = vec![None; specs.len()];
    let mut incumbent_cost = 0.0;
    for &i in &order {
        let mut chosen = None;
        for (j, journey) in journeys[i].iter().enumerate() {
            if journey.arrival.since(specs[i].time).as_secs_f64() >= undelivered_cost[i] {
                break; // dropping is cheaper than this and later journeys
            }
            if journey_fits(journey, specs[i].src, schedule, &caps) {
                chosen = Some(j);
                break;
            }
        }
        match chosen {
            Some(j) => {
                apply_journey(&journeys[i][j], specs[i].src, schedule, &mut caps, true);
                incumbent[i] = Some(j);
                incumbent_cost += journeys[i][j].arrival.since(specs[i].time).as_secs_f64();
            }
            None => incumbent_cost += undelivered_cost[i],
        }
    }

    // Branch and bound.
    let mut best = incumbent_cost;
    let mut best_assign = incumbent;
    let mut caps: Vec<(u64, u64)> = per_dir.iter().map(|&c| (c, c)).collect();
    let mut current: Vec<Option<usize>> = vec![None; specs.len()];
    bnb(
        0,
        0.0,
        &order,
        &journeys,
        specs,
        schedule,
        &undelivered_cost,
        &suffix_lb,
        &mut caps,
        &mut current,
        &mut best,
        &mut best_assign,
    );

    let assignment: Vec<Option<Journey>> = best_assign
        .iter()
        .enumerate()
        .map(|(i, j)| j.map(|j| journeys[i][j].clone()))
        .collect();
    let delivered = assignment.iter().filter(|a| a.is_some()).count();
    Some(ExactSolution {
        total_delay_secs: best,
        delivered,
        avg_delay_secs: best / specs.len() as f64,
        assignment,
    })
}

/// Walks a journey from `src`, yielding `(contact index, direction)` where
/// direction 0 = a→b, 1 = b→a.
fn journey_dirs<'a>(
    journey: &'a Journey,
    src: dtn_sim::NodeId,
    schedule: &'a Schedule,
) -> impl Iterator<Item = (usize, usize)> + 'a {
    let mut at = src;
    journey.contacts.iter().map(move |&idx| {
        let c = schedule.windows()[idx];
        let dir = if c.a == at { 0 } else { 1 };
        at = if c.a == at { c.b } else { c.a };
        (idx, dir)
    })
}

fn journey_fits(
    journey: &Journey,
    src: dtn_sim::NodeId,
    schedule: &Schedule,
    caps: &[(u64, u64)],
) -> bool {
    journey_dirs(journey, src, schedule).all(|(idx, dir)| {
        let (ab, ba) = caps[idx];
        if dir == 0 {
            ab > 0
        } else {
            ba > 0
        }
    })
}

fn apply_journey(
    journey: &Journey,
    src: dtn_sim::NodeId,
    schedule: &Schedule,
    caps: &mut [(u64, u64)],
    take: bool,
) {
    for (idx, dir) in journey_dirs(journey, src, schedule) {
        let slot = if dir == 0 {
            &mut caps[idx].0
        } else {
            &mut caps[idx].1
        };
        if take {
            *slot -= 1;
        } else {
            *slot += 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn bnb(
    k: usize,
    cost: f64,
    order: &[usize],
    journeys: &[Vec<Journey>],
    specs: &[dtn_sim::workload::PacketSpec],
    schedule: &Schedule,
    undelivered_cost: &[f64],
    suffix_lb: &[f64],
    caps: &mut [(u64, u64)],
    current: &mut [Option<usize>],
    best: &mut f64,
    best_assign: &mut Vec<Option<usize>>,
) {
    if cost + suffix_lb[k] >= *best - 1e-9 {
        return;
    }
    if k == order.len() {
        *best = cost;
        best_assign.clone_from(&current.to_vec());
        return;
    }
    let i = order[k];
    // Options cheapest-first: journeys (sorted by arrival), then drop.
    for (j, journey) in journeys[i].iter().enumerate() {
        let delay = journey.arrival.since(specs[i].time).as_secs_f64();
        if delay >= undelivered_cost[i] {
            break; // journeys sorted by arrival: rest are no better than dropping
        }
        if !journey_fits(journey, specs[i].src, schedule, caps) {
            continue;
        }
        apply_journey(journey, specs[i].src, schedule, caps, true);
        current[i] = Some(j);
        bnb(
            k + 1,
            cost + delay,
            order,
            journeys,
            specs,
            schedule,
            undelivered_cost,
            suffix_lb,
            caps,
            current,
            best,
            best_assign,
        );
        current[i] = None;
        apply_journey(journey, specs[i].src, schedule, caps, false);
    }
    // Undelivered option.
    bnb(
        k + 1,
        cost + undelivered_cost[i],
        order,
        journeys,
        specs,
        schedule,
        undelivered_cost,
        suffix_lb,
        caps,
        current,
        best,
        best_assign,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::PacketSpec;
    use dtn_sim::{Contact, NodeId};

    fn contact(t: u64, a: u32, b: u32, bytes: u64) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), bytes)
    }

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn solve(contacts: Vec<Contact>, specs: Vec<PacketSpec>, horizon: u64) -> ExactSolution {
        solve_exact(
            &Schedule::new(contacts),
            &Workload::new(specs),
            Time::from_secs(horizon),
            ExactLimits::default(),
        )
        .expect("instance within limits")
    }

    #[test]
    fn single_packet_takes_earliest_journey() {
        let sol = solve(
            vec![
                contact(10, 0, 1, 1024),
                contact(20, 1, 2, 1024),
                contact(50, 0, 2, 1024),
            ],
            vec![spec(0, 0, 2)],
            100,
        );
        assert_eq!(sol.delivered, 1);
        assert!((sol.total_delay_secs - 20.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_conflict_resolved_optimally() {
        // Two packets want the relay 1→2 at t=20 (capacity 1). One must use
        // the slower direct contact at t=60. Optimal total = 20 + 60 = 80;
        // a greedy that gives the early relay to packet 1 also yields 80
        // here, so check the exact split.
        let sol = solve(
            vec![
                contact(10, 0, 1, 2048), // both can reach the relay
                contact(20, 1, 2, 1024), // capacity: ONE packet
                contact(60, 0, 2, 2048),
            ],
            vec![spec(0, 0, 2), spec(0, 0, 2)],
            100,
        );
        assert_eq!(sol.delivered, 2);
        assert!((sol.total_delay_secs - 80.0).abs() < 1e-9);
    }

    #[test]
    fn undelivered_charged_to_horizon() {
        let sol = solve(
            vec![contact(10, 0, 1, 1024)],
            vec![spec(0, 0, 2)], // node 2 never reachable
            100,
        );
        assert_eq!(sol.delivered, 0);
        assert!((sol.total_delay_secs - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dropping_beats_a_very_late_journey() {
        // Journey arrives at t=90, horizon is 50: infeasible input guard —
        // horizon must exceed arrival for delivery to count. Use horizon
        // 80: delivery delay 90 > undelivered cost 80 → optimal drops.
        let sol = solve(vec![contact(90, 0, 1, 1024)], vec![spec(0, 0, 1)], 80);
        assert_eq!(sol.delivered, 0);
        assert!((sol.total_delay_secs - 80.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_deliveries_that_minimize_total_delay() {
        // Three packets, shared bottleneck of capacity 2: the two early
        // ones ride it; the third is undelivered (cost 100) vs... direct
        // late contact (delay 70) → delivers all three.
        let sol = solve(
            vec![
                contact(5, 0, 1, 4096),
                contact(10, 1, 2, 2048),
                contact(70, 0, 2, 1024),
            ],
            vec![spec(0, 0, 2), spec(0, 0, 2), spec(0, 0, 2)],
            100,
        );
        assert_eq!(sol.delivered, 3);
        assert!((sol.total_delay_secs - (10.0 + 10.0 + 70.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_workload() {
        let sol = solve(vec![contact(10, 0, 1, 1024)], vec![], 100);
        assert_eq!(sol.delivered, 0);
        assert_eq!(sol.total_delay_secs, 0.0);
    }

    #[test]
    fn too_many_packets_rejected() {
        let specs: Vec<PacketSpec> = (0..100).map(|i| spec(i, 0, 2)).collect();
        let r = solve_exact(
            &Schedule::new(vec![contact(10, 0, 2, 1 << 20)]),
            &Workload::new(specs),
            Time::from_secs(100),
            ExactLimits {
                max_packets: 10,
                ..ExactLimits::default()
            },
        );
        assert!(r.is_none());
    }
}
