//! Optimal DTN routing and the paper's hardness constructions.
//!
//! Three pieces back the paper's theory-side claims:
//!
//! * [`journeys`] — time-respecting paths over a contact schedule:
//!   uncapacitated earliest-arrival (a per-packet lower bound on delay) and
//!   bounded journey enumeration.
//! * [`exact`] — an exact branch-and-bound solver equivalent to the
//!   Appendix-D ILP for unit-size packets: minimizes total delay (with
//!   undelivered packets charged their time in the system) subject to
//!   per-contact capacities. Used for the Fig. 13 Optimal line. Exponential
//!   in the worst case — as Theorem 2 proves any exact method must be — so
//!   [`optimal::solve_bounded`] additionally provides a scalable
//!   lower-bound / feasible-upper-bound pair whose gap is reported.
//! * [`adversary`] / [`edp`] — executable versions of the Appendix-A
//!   competitive-hardness constructions (Theorems 1a, 1b) and the
//!   Appendix-B reduction from edge-disjoint paths (Theorem 2).
//!
//! The solver works offline on `(Schedule, Workload)` — it is the
//! omniscient comparator, not a [`dtn_sim::Routing`] implementation.
//! Replication cannot help an omniscient scheduler under this objective
//! (any delivery achieved by a replica is achieved by routing the single
//! copy along the successful journey), so the optimum over forwarding
//! schedules — which is what the Appendix-D ILP encodes with its
//! conservation constraint — equals the optimum over replication schedules.

pub mod adversary;
pub mod edp;
pub mod exact;
pub mod journeys;
pub mod optimal;

pub use adversary::{alg_deliveries, generate_y, theorem1a_instance, BasicGadget, GadgetChoice};
pub use edp::{reduce_edp_to_dtn, DagEdp};
pub use exact::{solve_exact, ExactLimits, ExactSolution};
pub use journeys::{earliest_arrivals, enumerate_journeys, Journey};
pub use optimal::{solve_bounded, OptimalReport};
