//! The Appendix-B reduction: edge-disjoint paths (EDP) in a DAG to DTN
//! routing (Theorem 2).
//!
//! Given a DAG and source–destination pairs, edges are labelled along a
//! topological order so labels increase along every path; each edge becomes
//! a unit-capacity contact at its label's time, each pair a unit packet at
//! time 0. A feasible DTN schedule delivering `k` packets is exactly a set
//! of `k` edge-disjoint paths and vice versa — the L-reduction that imports
//! EDP's NP-hardness and `Ω(n^{1/2−ε})` inapproximability to DTN routing.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{Contact, NodeId, Schedule, Time};

/// An edge-disjoint-paths instance on a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagEdp {
    /// Number of vertices.
    pub vertices: usize,
    /// Directed edges `(u, v)`; must form a DAG.
    pub edges: Vec<(usize, usize)>,
    /// Source–destination pairs.
    pub pairs: Vec<(usize, usize)>,
}

impl DagEdp {
    /// Topological order of the vertices.
    ///
    /// # Panics
    /// If the graph has a cycle (it is not a DAG).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.vertices];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.vertices];
        for &(u, v) in &self.edges {
            assert!(u < self.vertices && v < self.vertices, "edge out of range");
            indeg[v] += 1;
            adj[u].push(v);
        }
        let mut queue: Vec<usize> = (0..self.vertices).filter(|&v| indeg[v] == 0).collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(self.vertices);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(order.len(), self.vertices, "graph has a cycle — not a DAG");
        order
    }

    /// Labels every edge with a time such that labels strictly increase
    /// along any path (the paper's labelling `l`): edges are numbered
    /// grouped by their source vertex in increasing topological order.
    pub fn edge_labels(&self) -> Vec<u64> {
        let order = self.topological_order();
        let mut rank = vec![0usize; self.vertices];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r;
        }
        // Sort edge indices by source rank, then by target rank for
        // determinism; assign labels 1, 2, ...
        let mut idx: Vec<usize> = (0..self.edges.len()).collect();
        idx.sort_by_key(|&e| (rank[self.edges[e].0], rank[self.edges[e].1], e));
        let mut labels = vec![0u64; self.edges.len()];
        for (label, &e) in idx.iter().enumerate() {
            labels[e] = label as u64 + 1;
        }
        labels
    }
}

/// The reduction: one unit-capacity contact per edge at its label's time,
/// one unit packet per pair at time 0. Returns the DTN instance and a
/// horizon safely past every contact.
pub fn reduce_edp_to_dtn(edp: &DagEdp) -> (Schedule, Workload, Time) {
    let labels = edp.edge_labels();
    let contacts: Vec<Contact> = edp
        .edges
        .iter()
        .zip(&labels)
        .map(|(&(u, v), &l)| {
            Contact::new(
                Time::from_secs(l),
                NodeId(u as u32),
                NodeId(v as u32),
                1, // unit size: one unit packet per edge
            )
        })
        .collect();
    let specs: Vec<PacketSpec> = edp
        .pairs
        .iter()
        .map(|&(s, t)| {
            assert_ne!(s, t, "pair endpoints must differ");
            PacketSpec {
                time: Time::ZERO,
                src: NodeId(s as u32),
                dst: NodeId(t as u32),
                size_bytes: 1,
            }
        })
        .collect();
    let horizon = Time::from_secs(edp.edges.len() as u64 + 1);
    (Schedule::new(contacts), Workload::new(specs), horizon)
}

/// Checks that a set of paths (vertex sequences) solves the EDP instance:
/// each path connects its pair and no edge repeats across paths.
pub fn verify_edge_disjoint(edp: &DagEdp, paths: &[Vec<usize>]) -> bool {
    let mut used: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let edge_set: std::collections::HashSet<(usize, usize)> = edp.edges.iter().copied().collect();
    for (k, path) in paths.iter().enumerate() {
        if path.len() < 2 {
            return false;
        }
        let (s, t) = edp.pairs[k];
        if path[0] != s || *path.last().expect("non-empty") != t {
            return false;
        }
        for w in path.windows(2) {
            let e = (w[0], w[1]);
            if !edge_set.contains(&e) || !used.insert(e) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact, ExactLimits};

    /// Diamond DAG: 0→1→3, 0→2→3; two pairs (0,3): both routable
    /// edge-disjointly.
    fn diamond() -> DagEdp {
        DagEdp {
            vertices: 4,
            edges: vec![(0, 1), (1, 3), (0, 2), (2, 3)],
            pairs: vec![(0, 3), (0, 3)],
        }
    }

    #[test]
    fn labels_increase_along_paths() {
        let edp = diamond();
        let labels = edp.edge_labels();
        // Edge (0,1) before (1,3); (0,2) before (2,3).
        assert!(labels[0] < labels[1]);
        assert!(labels[2] < labels[3]);
        // Labels are a permutation of 1..=m.
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
    }

    #[test]
    fn diamond_supports_two_disjoint_paths() {
        let edp = diamond();
        let (schedule, workload, horizon) = reduce_edp_to_dtn(&edp);
        let sol = solve_exact(&schedule, &workload, horizon, ExactLimits::default())
            .expect("small instance");
        assert_eq!(sol.delivered, 2, "two edge-disjoint 0→3 paths exist");
    }

    #[test]
    fn bottleneck_limits_paths() {
        // 0→1→2 only; two pairs (0,2): a single shared edge chain.
        let edp = DagEdp {
            vertices: 3,
            edges: vec![(0, 1), (1, 2)],
            pairs: vec![(0, 2), (0, 2)],
        };
        let (schedule, workload, horizon) = reduce_edp_to_dtn(&edp);
        let sol = solve_exact(&schedule, &workload, horizon, ExactLimits::default())
            .expect("small instance");
        assert_eq!(sol.delivered, 1, "unit capacities allow one path");
    }

    #[test]
    fn dtn_solution_maps_back_to_disjoint_paths() {
        let edp = diamond();
        let (schedule, workload, horizon) = reduce_edp_to_dtn(&edp);
        let sol = solve_exact(&schedule, &workload, horizon, ExactLimits::default())
            .expect("small instance");
        // Convert journeys back to vertex paths.
        let mut paths = Vec::new();
        for (k, assign) in sol.assignment.iter().enumerate() {
            let journey = assign.as_ref().expect("both delivered");
            let mut at = workload.specs()[k].src;
            let mut path = vec![at.index()];
            for &ci in &journey.contacts {
                let c = schedule.windows()[ci];
                at = if c.a == at { c.b } else { c.a };
                path.push(at.index());
            }
            paths.push(path);
        }
        assert!(verify_edge_disjoint(&edp, &paths));
    }

    #[test]
    fn mismatched_paths_fail_verification() {
        let edp = diamond();
        // Both paths share edge (0,1).
        let bad = vec![vec![0, 1, 3], vec![0, 1, 3]];
        assert!(!verify_edge_disjoint(&edp, &bad));
        // Wrong endpoints.
        let bad2 = vec![vec![0, 1, 3], vec![0, 2]];
        assert!(!verify_edge_disjoint(&edp, &bad2));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_graph_rejected() {
        let edp = DagEdp {
            vertices: 2,
            edges: vec![(0, 1), (1, 0)],
            pairs: vec![],
        };
        let _ = edp.topological_order();
    }
}
