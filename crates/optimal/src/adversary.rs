//! Executable versions of the Appendix-A hardness constructions.
//!
//! **Theorem 1(a)** — no meeting knowledge: an offline adversary watches
//! which intermediates a deterministic online algorithm replicates each
//! packet to (the map `X`), then picks the intermediate→destination
//! bijection `Y` with procedure `Generate Y(X)` so that at most one packet
//! sits at an intermediate that will meet its destination. The adversary
//! itself, knowing `Y`, routes every packet through `Y⁻¹(v_i)` and delivers
//! all `n`.
//!
//! **Theorem 1(b)** — no workload knowledge: the basic gadget (Fig. 26a)
//! forces any online algorithm to drop half the packets; composing gadgets
//! to depth `i` bounds its delivery rate by `i / (3i − 1) → 1/3`.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{Contact, NodeId, Schedule, Time};

/// Procedure `Generate Y(X)` from the Appendix.
///
/// `x[i][j]` = true iff the online algorithm replicated packet `i` to
/// intermediate `j` (both in `0..n`). Returns `y` where `y[j]` is the index
/// of the destination assigned to intermediate `j` — a permutation of
/// `0..n` constructed so that the algorithm can deliver at most one packet.
pub fn generate_y(x: &[Vec<bool>]) -> Vec<usize> {
    let n = x.len();
    assert!(x.iter().all(|row| row.len() == n), "X must be n×n");
    let mut y: Vec<Option<usize>> = vec![None; n];
    for (i, row) in x.iter().enumerate() {
        // Line 3: an unmapped intermediate the packet was NOT copied to.
        if let Some(j) = (0..n).find(|&j| !row[j] && y[j].is_none()) {
            y[j] = Some(i);
        } else {
            // Line 6: any unmapped intermediate (provably executed ≤ once).
            let j = (0..n)
                .find(|&j| y[j].is_none())
                .expect("a free intermediate always exists");
            y[j] = Some(i);
        }
    }
    y.into_iter().map(|v| v.expect("bijective")).collect()
}

/// Number of packets the online algorithm delivers under `x` and the
/// adversarial `y`: packet `i` is delivered iff some intermediate holding
/// it is mapped to destination `i`.
pub fn alg_deliveries(x: &[Vec<bool>], y: &[usize]) -> usize {
    (0..x.len())
        .filter(|&i| (0..x.len()).any(|j| x[i][j] && y[j] == i))
        .count()
}

/// Builds the concrete DTN instance of Fig. 25 for a given `X` and its
/// adversarial `Y`: node 0 is the source `A`; nodes `1..=n` the
/// intermediates; nodes `n+1..=2n` the destinations. All opportunities and
/// packets are unit sized (`1` byte). Phase 1 meetings happen at `t = 1`,
/// phase 2 at `t = 2`.
pub fn theorem1a_instance(n: usize, y: &[usize]) -> (Schedule, Workload, usize) {
    assert_eq!(y.len(), n);
    let source = NodeId(0);
    let inter = |j: usize| NodeId(1 + j as u32);
    let dest = |i: usize| NodeId(1 + n as u32 + i as u32);
    let mut contacts = Vec::new();
    for j in 0..n {
        contacts.push(Contact::new(Time::from_secs(1), source, inter(j), 1));
    }
    for (j, &yj) in y.iter().enumerate() {
        contacts.push(Contact::new(Time::from_secs(2), inter(j), dest(yj), 1));
    }
    let specs = (0..n)
        .map(|i| PacketSpec {
            time: Time::ZERO,
            src: source,
            dst: dest(i),
            size_bytes: 1,
        })
        .collect();
    (Schedule::new(contacts), Workload::new(specs), 1 + 2 * n)
}

/// The basic gadget of Theorem 1(b) and its composition bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicGadget;

impl BasicGadget {
    /// Delivery-rate upper bound for an online algorithm against a depth-`d`
    /// composition: `d / (3d − 1)`. Depth 1 is the basic gadget (1/2);
    /// the limit is 1/3 — Theorem 1(b)'s "at most a third".
    pub fn bound(depth: usize) -> f64 {
        assert!(depth >= 1, "depth starts at 1");
        depth as f64 / (3.0 * depth as f64 - 1.0)
    }

    /// Outcome of the basic gadget for each possible online choice:
    /// `(alg_delivered, adv_delivered, total_packets)` per Lemma 4.
    ///
    /// * `Split`: the algorithm forwards one packet to each intermediate —
    ///   the adversary injects the crossing pair and the algorithm drops
    ///   one packet at each intermediate (unit buffers): 2 of 4.
    /// * `ReplicateOne`: the algorithm replicates one packet to both
    ///   intermediates, dropping the other at the source: the adversary
    ///   simply delivers both originals; the algorithm has abandoned one
    ///   of 2.
    pub fn outcome(choice: GadgetChoice) -> (usize, usize, usize) {
        match choice {
            GadgetChoice::Split => (2, 4, 4),
            GadgetChoice::ReplicateOne => (1, 2, 2),
        }
    }
}

/// The online algorithm's options at the basic gadget's first step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetChoice {
    /// One packet to each intermediate (either pairing — the adversary is
    /// adaptive, so both pairings are equivalent).
    Split,
    /// Replicate one packet to both intermediates.
    ReplicateOne,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact, ExactLimits};

    /// Every deterministic replication pattern X (one row per packet,
    /// column j = copied to intermediate j).
    fn x_from_rows(rows: &[&[usize]], n: usize) -> Vec<Vec<bool>> {
        rows.iter()
            .map(|r| {
                let mut row = vec![false; n];
                for &j in r.iter() {
                    row[j] = true;
                }
                row
            })
            .collect()
    }

    #[test]
    fn y_is_a_permutation() {
        let x = x_from_rows(&[&[0], &[1], &[2]], 3);
        let y = generate_y(&x);
        let mut sorted = y.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn identity_forwarding_delivers_at_most_one() {
        // ALG sends p_i to u_i (single-copy forwarding).
        let x = x_from_rows(&[&[0], &[1], &[2], &[3]], 4);
        let y = generate_y(&x);
        assert!(alg_deliveries(&x, &y) <= 1);
    }

    #[test]
    fn heavy_replication_still_bounded() {
        // ALG floods p_0 to every intermediate and starves the others
        // (each meeting carries one packet, so n meetings n copies).
        let x = x_from_rows(&[&[0, 1, 2, 3], &[], &[], &[]], 4);
        let y = generate_y(&x);
        assert!(alg_deliveries(&x, &y) <= 1);
    }

    #[test]
    fn exhaustive_single_copy_strategies_n3() {
        // Every function from packets to intermediates (ALG sends each
        // packet to exactly one intermediate): 27 strategies, all ≤ 1.
        let n = 3;
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let x = x_from_rows(&[&[a], &[b], &[c]], n);
                    let y = generate_y(&x);
                    assert!(
                        alg_deliveries(&x, &y) <= 1,
                        "strategy ({a},{b},{c}) delivered more than 1"
                    );
                }
            }
        }
    }

    #[test]
    fn adversary_instance_delivers_all_by_optimal() {
        // The adversary's own schedule admits delivery of all n packets:
        // verified with the exact solver on the constructed instance.
        let n = 3;
        let x = x_from_rows(&[&[0], &[1], &[2]], n);
        let y = generate_y(&x);
        let (schedule, workload, _) = theorem1a_instance(n, &y);
        let sol = solve_exact(
            &schedule,
            &workload,
            Time::from_secs(10),
            ExactLimits::default(),
        )
        .expect("small instance");
        assert_eq!(sol.delivered, n, "ADV delivers all packets");
    }

    #[test]
    fn gadget_bound_converges_to_one_third() {
        assert!((BasicGadget::bound(1) - 0.5).abs() < 1e-12);
        assert!((BasicGadget::bound(2) - 0.4).abs() < 1e-12);
        assert!((BasicGadget::bound(1000) - 1.0 / 3.0).abs() < 1e-3);
        // Monotone decreasing.
        for d in 1..50 {
            assert!(BasicGadget::bound(d) > BasicGadget::bound(d + 1));
        }
    }

    #[test]
    fn gadget_outcomes_match_lemma4() {
        let (alg, adv, total) = BasicGadget::outcome(GadgetChoice::Split);
        assert_eq!((alg, adv, total), (2, 4, 4));
        assert!(alg * 2 <= adv);
        let (alg, adv, total) = BasicGadget::outcome(GadgetChoice::ReplicateOne);
        assert_eq!((alg, adv, total), (1, 2, 2));
        assert!(alg * 2 <= adv);
    }
}
