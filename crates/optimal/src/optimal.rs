//! Scalable optimal bounds for realistic instance sizes.
//!
//! The exact solver ([`crate::exact`]) is exponential; Fig. 13's workloads
//! (hundreds to thousands of packets per day) need the scalable pair:
//!
//! * **Lower bound**: per-packet uncapacitated earliest-arrival delay —
//!   no feasible schedule beats it.
//! * **Feasible upper bound**: greedy capacity-respecting assignment of
//!   earliest journeys, packets in creation order.
//!
//! At small loads the network is uncongested and the two coincide
//! (`gap == 0` certifies the greedy is optimal); at higher loads the gap is
//! reported so Fig. 13's "Optimal" line carries its own error bar. This
//! substitution for CPLEX is recorded in DESIGN.md.

use crate::journeys::{creation_pos, EventPos};
use dtn_sim::workload::Workload;
use dtn_sim::{Schedule, Time};

/// Bounds on the optimal objective for one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalReport {
    /// Packets in the workload.
    pub packets: usize,
    /// Lower bound: average delay (undelivered charged to horizon), secs.
    pub lower_bound_avg_delay_secs: f64,
    /// Feasible schedule: average delay, secs.
    pub feasible_avg_delay_secs: f64,
    /// Deliveries in the lower bound (uncapacitated reachability).
    pub lower_bound_delivered: usize,
    /// Deliveries achieved by the feasible schedule.
    pub feasible_delivered: usize,
}

impl OptimalReport {
    /// Relative gap between the bounds (0 = certified optimal).
    pub fn gap(&self) -> f64 {
        if self.lower_bound_avg_delay_secs == 0.0 {
            return 0.0;
        }
        (self.feasible_avg_delay_secs - self.lower_bound_avg_delay_secs)
            / self.lower_bound_avg_delay_secs
    }
}

/// Computes the bound pair for an instance.
///
/// The greedy pass processes packets in creation order; for each it runs a
/// capacity-aware earliest-arrival scan (per-direction contact capacities
/// in packets of that packet's size) and commits the winning journey.
pub fn solve_bounded(schedule: &Schedule, workload: &Workload, horizon: Time) -> OptimalReport {
    let specs = workload.specs();
    let nodes = schedule.node_count_hint().max(
        specs
            .iter()
            .map(|s| s.src.index().max(s.dst.index()) + 1)
            .max()
            .unwrap_or(0),
    );
    let contacts = schedule.windows();

    // Remaining per-direction capacity, in bytes.
    let mut cap: Vec<(u64, u64)> = contacts
        .iter()
        .map(|c| (c.capacity(), c.capacity()))
        .collect();

    let mut lb_total = 0.0;
    let mut lb_delivered = 0usize;
    let mut fs_total = 0.0;
    let mut fs_delivered = 0usize;

    for s in specs {
        let undelivered = horizon.since(s.time).as_secs_f64();

        // Lower bound: uncapacitated earliest arrival.
        let lb = crate::journeys::earliest_arrivals(schedule, nodes, s.src, s.time)[s.dst.index()]
            .map(|(t, _)| t.since(s.time).as_secs_f64());
        match lb {
            Some(d) if d <= undelivered => {
                lb_total += d;
                lb_delivered += 1;
            }
            _ => lb_total += undelivered,
        }

        // Feasible: capacity-aware earliest arrival with predecessor
        // tracking, then commit the journey.
        let mut arrival: Vec<Option<EventPos>> = vec![None; nodes];
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; nodes]; // (contact, dir)
        arrival[s.src.index()] = Some(creation_pos(s.time));
        for (idx, c) in contacts.iter().enumerate() {
            let pos = (c.start, idx);
            let (ab, ba) = cap[idx];
            let a_ok = ab >= s.size_bytes && arrival[c.a.index()].is_some_and(|p| p < pos);
            let b_ok = ba >= s.size_bytes && arrival[c.b.index()].is_some_and(|p| p < pos);
            if a_ok && arrival[c.b.index()].is_none_or(|p| pos < p) {
                arrival[c.b.index()] = Some(pos);
                pred[c.b.index()] = Some((idx, 0));
            }
            if b_ok && arrival[c.a.index()].is_none_or(|p| pos < p) {
                arrival[c.a.index()] = Some(pos);
                pred[c.a.index()] = Some((idx, 1));
            }
        }
        let feasible = arrival[s.dst.index()]
            .map(|(t, _)| t.since(s.time).as_secs_f64())
            .filter(|&d| d <= undelivered);
        match feasible {
            Some(d) => {
                fs_total += d;
                fs_delivered += 1;
                // Commit capacity along the journey (walk predecessors back
                // from dst).
                let mut node = s.dst;
                while node != s.src {
                    let (idx, dir) = pred[node.index()].expect("reachable ⇒ predecessor");
                    let slot = if dir == 0 {
                        &mut cap[idx].0
                    } else {
                        &mut cap[idx].1
                    };
                    *slot -= s.size_bytes;
                    let c = contacts[idx];
                    node = if dir == 0 { c.a } else { c.b };
                }
            }
            None => fs_total += undelivered,
        }
    }

    let n = specs.len().max(1) as f64;
    OptimalReport {
        packets: specs.len(),
        lower_bound_avg_delay_secs: lb_total / n,
        feasible_avg_delay_secs: fs_total / n,
        lower_bound_delivered: lb_delivered,
        feasible_delivered: fs_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact, ExactLimits};
    use dtn_sim::workload::PacketSpec;
    use dtn_sim::{Contact, NodeId};

    fn contact(t: u64, a: u32, b: u32, bytes: u64) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), bytes)
    }

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    #[test]
    fn uncongested_bounds_coincide() {
        let r = solve_bounded(
            &Schedule::new(vec![contact(10, 0, 1, 1 << 20), contact(20, 1, 2, 1 << 20)]),
            &Workload::new(vec![spec(0, 0, 2), spec(5, 0, 1)]),
            Time::from_secs(100),
        );
        assert_eq!(r.feasible_delivered, 2);
        assert!((r.gap()).abs() < 1e-12, "no congestion ⇒ certified optimal");
        // Delays: p0 = 20 (relay at t=20), p1 = 10 − 5 = 5 → avg 12.5.
        assert!((r.feasible_avg_delay_secs - 12.5).abs() < 1e-9);
    }

    #[test]
    fn congestion_creates_gap_and_feasibility_holds() {
        // Capacity 1 packet on the only useful relay: one packet diverts.
        let r = solve_bounded(
            &Schedule::new(vec![
                contact(10, 0, 1, 4096),
                contact(20, 1, 2, 1024),
                contact(60, 0, 2, 4096),
            ]),
            &Workload::new(vec![spec(0, 0, 2), spec(0, 0, 2)]),
            Time::from_secs(100),
        );
        assert_eq!(r.feasible_delivered, 2);
        assert!(r.feasible_avg_delay_secs >= r.lower_bound_avg_delay_secs);
        assert!(r.gap() > 0.0, "contention must show up in the gap");
        // Feasible: 20 + 60 → avg 40. Lower bound: 20 + 20 → avg 20.
        assert!((r.feasible_avg_delay_secs - 40.0).abs() < 1e-9);
        assert!((r.lower_bound_avg_delay_secs - 20.0).abs() < 1e-9);
    }

    #[test]
    fn feasible_matches_exact_on_small_instances() {
        // Cross-validate greedy-feasible against the exact solver: greedy
        // must never beat exact, and the lower bound never exceeds it.
        let schedule = Schedule::new(vec![
            contact(5, 0, 1, 2048),
            contact(12, 1, 3, 1024),
            contact(18, 0, 2, 1024),
            contact(25, 2, 3, 2048),
            contact(40, 0, 3, 1024),
        ]);
        let workload = Workload::new(vec![spec(0, 0, 3), spec(1, 0, 3), spec(2, 0, 2)]);
        let horizon = Time::from_secs(120);
        let bounds = solve_bounded(&schedule, &workload, horizon);
        let exact = solve_exact(&schedule, &workload, horizon, ExactLimits::default())
            .expect("small instance");
        let n = workload.len() as f64;
        assert!(
            bounds.lower_bound_avg_delay_secs <= exact.avg_delay_secs + 1e-9,
            "lb {} vs exact {}",
            bounds.lower_bound_avg_delay_secs,
            exact.avg_delay_secs
        );
        assert!(
            exact.avg_delay_secs <= bounds.feasible_avg_delay_secs + 1e-9,
            "exact {} vs feasible {}",
            exact.avg_delay_secs,
            bounds.feasible_avg_delay_secs
        );
        assert!(exact.total_delay_secs <= bounds.feasible_avg_delay_secs * n + 1e-9);
    }

    #[test]
    fn empty_workload_is_zero() {
        let r = solve_bounded(
            &Schedule::default(),
            &Workload::default(),
            Time::from_secs(10),
        );
        assert_eq!(r.packets, 0);
        assert_eq!(r.feasible_avg_delay_secs, 0.0);
        assert_eq!(r.gap(), 0.0);
    }

    #[test]
    fn unreachable_charged_to_horizon_in_both_bounds() {
        let r = solve_bounded(
            &Schedule::new(vec![contact(10, 0, 1, 1024)]),
            &Workload::new(vec![spec(0, 0, 3)]),
            Time::from_secs(50),
        );
        assert_eq!(r.feasible_delivered, 0);
        assert_eq!(r.lower_bound_delivered, 0);
        assert!((r.feasible_avg_delay_secs - 50.0).abs() < 1e-9);
        assert!((r.lower_bound_avg_delay_secs - 50.0).abs() < 1e-9);
    }
}
