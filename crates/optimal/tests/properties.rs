//! Property tests for the optimal-routing substrate and the Theorem 1(a)
//! adversary.

use dtn_optimal::{
    alg_deliveries, earliest_arrivals, enumerate_journeys, generate_y, solve_bounded,
};
use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{Contact, NodeId, Schedule, Time};
use proptest::prelude::*;

const NODES: usize = 6;

fn arb_contacts() -> impl Strategy<Value = Vec<Contact>> {
    prop::collection::vec(
        (0u64..500, 0u32..NODES as u32, 0u32..NODES as u32, 1u64..4)
            .prop_filter("distinct", |(_, a, b, _)| a != b)
            .prop_map(|(t, a, b, kb)| {
                Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), kb * 1024)
            }),
        1..30,
    )
}

proptest! {
    #[test]
    fn journeys_agree_with_earliest_arrival(contacts in arb_contacts(), t0 in 0u64..200) {
        let schedule = Schedule::new(contacts);
        let created = Time::from_secs(t0);
        let arr = earliest_arrivals(&schedule, NODES, NodeId(0), created);
        if let Some(journeys) =
            enumerate_journeys(&schedule, NodeId(0), NodeId(1), created, 4, 20_000)
        {
            match arr[1] {
                Some((best, _)) => {
                    // With enough hops allowed, the best journey matches the
                    // earliest arrival (earliest-arrival paths in a ≤6-node
                    // graph with simple journeys need < 6 hops... only when
                    // within the hop limit, so assert one direction only).
                    if let Some(first) = journeys.first() {
                        prop_assert!(first.arrival >= best);
                    }
                }
                None => prop_assert!(journeys.is_empty(), "unreachable ⇒ no journeys"),
            }
            // Every journey is time-respecting and ends at the destination.
            for j in &journeys {
                let mut at = NodeId(0);
                let mut pos = (created, usize::MAX);
                for &ci in &j.contacts {
                    let c = schedule.windows()[ci];
                    prop_assert!((c.start, ci) > pos, "journey must move forward in time");
                    prop_assert!(c.a == at || c.b == at, "journey must be connected");
                    at = if c.a == at { c.b } else { c.a };
                    pos = (c.start, ci);
                }
                prop_assert_eq!(at, NodeId(1));
            }
        }
    }

    #[test]
    fn earliest_arrival_monotone_in_creation_time(
        contacts in arb_contacts(),
        t0 in 0u64..200,
        dt in 1u64..100,
    ) {
        let schedule = Schedule::new(contacts);
        let early = earliest_arrivals(&schedule, NODES, NodeId(0), Time::from_secs(t0));
        let late = earliest_arrivals(&schedule, NODES, NodeId(0), Time::from_secs(t0 + dt));
        for z in 0..NODES {
            match (early[z], late[z]) {
                (None, Some(_)) => prop_assert!(false, "later creation cannot reach more"),
                (Some(e), Some(l)) => prop_assert!(l >= e.min(l)), // arrival can't precede earlier-creation arrival... trivially l >= e when both defined? No: l >= e holds.
                _ => {}
            }
        }
        for z in 0..NODES {
            if let (Some(e), Some(l)) = (early[z], late[z]) {
                prop_assert!(l.0 >= e.0, "later creation ⇒ no earlier arrival");
            }
        }
    }

    #[test]
    fn bounded_solver_invariants(
        contacts in arb_contacts(),
        specs in prop::collection::vec(
            (0u64..300, 0u32..NODES as u32, 0u32..NODES as u32)
                .prop_filter("distinct", |(_, s, d)| s != d)
                .prop_map(|(t, s, d)| PacketSpec {
                    time: Time::from_secs(t),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: 1024,
                }),
            1..15,
        ),
    ) {
        let schedule = Schedule::new(contacts);
        let workload = Workload::new(specs);
        let horizon = Time::from_secs(600);
        let r = solve_bounded(&schedule, &workload, horizon);
        prop_assert!(r.lower_bound_avg_delay_secs <= r.feasible_avg_delay_secs + 1e-9);
        prop_assert!(r.feasible_delivered <= r.lower_bound_delivered);
        prop_assert!(r.gap() >= -1e-12);
    }

    #[test]
    fn theorem_1a_holds_for_random_strategies(
        n in 2usize..7,
        columns in prop::collection::vec(prop::option::of(0usize..7), 7),
    ) {
        // Feasible X: each intermediate receives at most ONE packet (the
        // construction's meetings are unit-sized), chosen arbitrarily —
        // this ranges over every deterministic online algorithm's
        // possible behaviour at step 2.
        let mut x = vec![vec![false; n]; n];
        for (j, held) in columns.iter().take(n).enumerate() {
            if let Some(i) = held {
                if *i < n {
                    x[*i][j] = true;
                }
            }
        }
        let y = generate_y(&x);
        // Y is a permutation.
        let mut sorted = y.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // The algorithm delivers at most one packet.
        prop_assert!(alg_deliveries(&x, &y) <= 1, "Ω(n)-competitive bound violated");
    }
}
