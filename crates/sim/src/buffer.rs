//! Per-node in-transit storage with a byte capacity (§3.1: "There is limited
//! storage ... available to nodes. Destination nodes are assumed to have
//! sufficient capacity to store delivered packets, so only storage for
//! in-transit data is limited").
//!
//! The buffer is deliberately policy-free: *which* packet to evict on
//! overflow is a routing-protocol decision (§3.4: RAPID deletes lowest
//! utility; MaxProp deletes the most-replicated; Spray and Wait and Random
//! delete randomly — §6.3.2). Iteration order is `PacketId` order
//! (`BTreeMap`), so every protocol sees a deterministic view.

use crate::time::Time;
use crate::types::PacketId;
use std::collections::BTreeMap;

/// A node's in-transit packet store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBuffer {
    capacity: u64,
    used: u64,
    stored: BTreeMap<PacketId, StoredMeta>,
}

/// Per-replica bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredMeta {
    /// When this node received the replica.
    pub stored_at: Time,
    /// Size of the packet in bytes (denormalized to keep accounting local).
    pub size_bytes: u64,
}

impl NodeBuffer {
    /// Creates a buffer with the given capacity in bytes
    /// (`u64::MAX` = effectively unlimited, the paper's 40 GB bus storage).
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            stored: BTreeMap::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of stored replicas.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Whether a replica of `id` is present.
    pub fn contains(&self, id: PacketId) -> bool {
        self.stored.contains_key(&id)
    }

    /// Metadata for a stored replica.
    pub fn meta(&self, id: PacketId) -> Option<StoredMeta> {
        self.stored.get(&id).copied()
    }

    /// Inserts a replica. Returns `false` (and stores nothing) if there is
    /// not enough free space or the replica is already present.
    pub fn insert(&mut self, id: PacketId, size_bytes: u64, now: Time) -> bool {
        if self.stored.contains_key(&id) || size_bytes > self.free_bytes() {
            return false;
        }
        self.stored.insert(
            id,
            StoredMeta {
                stored_at: now,
                size_bytes,
            },
        );
        self.used += size_bytes;
        true
    }

    /// Removes a replica, returning whether it was present.
    pub fn remove(&mut self, id: PacketId) -> bool {
        match self.stored.remove(&id) {
            Some(meta) => {
                self.used -= meta.size_bytes;
                true
            }
            None => false,
        }
    }

    /// Iterates stored replicas in `PacketId` order.
    pub fn iter(&self) -> impl Iterator<Item = (PacketId, StoredMeta)> + '_ {
        self.stored.iter().map(|(&id, &meta)| (id, meta))
    }

    /// The stored packet ids in `PacketId` order.
    pub fn ids(&self) -> Vec<PacketId> {
        self.stored.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_accounting() {
        let mut b = NodeBuffer::new(100);
        assert!(b.insert(PacketId(1), 60, Time::ZERO));
        assert_eq!(b.used_bytes(), 60);
        assert_eq!(b.free_bytes(), 40);
        assert!(b.contains(PacketId(1)));
        assert!(!b.insert(PacketId(2), 50, Time::ZERO), "over capacity");
        assert!(b.insert(PacketId(2), 40, Time::ZERO));
        assert_eq!(b.free_bytes(), 0);
        assert!(b.remove(PacketId(1)));
        assert_eq!(b.free_bytes(), 60);
        assert!(!b.remove(PacketId(1)), "double remove");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut b = NodeBuffer::new(100);
        assert!(b.insert(PacketId(1), 10, Time::ZERO));
        assert!(!b.insert(PacketId(1), 10, Time::ZERO));
        assert_eq!(b.used_bytes(), 10);
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut b = NodeBuffer::new(1000);
        for id in [5u32, 1, 9, 3] {
            assert!(b.insert(PacketId(id), 1, Time(id as u64)));
        }
        let ids: Vec<u32> = b.ids().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn meta_records_arrival_time_and_size() {
        let mut b = NodeBuffer::new(100);
        b.insert(PacketId(4), 25, Time::from_secs(9));
        let m = b.meta(PacketId(4)).unwrap();
        assert_eq!(m.stored_at, Time::from_secs(9));
        assert_eq!(m.size_bytes, 25);
        assert!(b.meta(PacketId(5)).is_none());
    }

    #[test]
    fn unlimited_buffer() {
        let mut b = NodeBuffer::new(u64::MAX);
        assert!(b.insert(PacketId(0), u64::MAX / 2, Time::ZERO));
        assert!(b.free_bytes() > 0);
    }
}
