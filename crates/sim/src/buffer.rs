//! Per-node in-transit storage with a byte capacity (§3.1: "There is limited
//! storage ... available to nodes. Destination nodes are assumed to have
//! sufficient capacity to store delivered packets, so only storage for
//! in-transit data is limited").
//!
//! The buffer is deliberately policy-free: *which* packet to evict on
//! overflow is a routing-protocol decision (§3.4: RAPID deletes lowest
//! utility; MaxProp deletes the most-replicated; Spray and Wait and Random
//! delete randomly — §6.3.2). Iteration order is `PacketId` order, so every
//! protocol sees a deterministic view.
//!
//! Internally every structure is sized by what the buffer *stores*, never
//! by the global id space — a node that holds 50 packets costs 50 packets'
//! worth of state even in a 100 000-node, million-packet streamed run.
//! Membership and metadata go through a sorted-by-id index (binary search;
//! ascending-id iteration falls out for free), replica metadata lives in a
//! swap-removed slab, and replicas are additionally threaded onto
//! **per-destination delivery-order queues** (the paper's Fig. 1 ordering:
//! oldest creation first, id tie-break) with running prefix byte sums.
//! That makes `b(i)` — the bytes queued ahead of a packet for its
//! destination, the input to Estimate Delay's Eq. 5 — an O(log n) query
//! ([`NodeBuffer::bytes_ahead`]) instead of a scan, and lets protocol-side
//! queue snapshots be built in O(n) without re-sorting.

use crate::time::Time;
use crate::types::{NodeId, Packet, PacketId};

/// A node's in-transit packet store.
#[derive(Debug, Clone)]
pub struct NodeBuffer {
    capacity: u64,
    used: u64,
    /// Sorted-by-id membership index: `(id, slab position)`. Binary
    /// searched for membership/metadata; walked for ascending-id
    /// iteration. O(stored), unlike a bitset over the packet arena.
    index: Vec<(PacketId, u32)>,
    /// Replica slab; compacted by swap-remove (order is irrelevant, the
    /// index provides iteration order).
    slots: Vec<Slot>,
    /// Destinations seen by this buffer, in first-seen order (their
    /// position is the queue index — the stable interning order).
    dsts: Vec<NodeId>,
    /// Sorted-by-id lookup: `(dst, queue index)`.
    dst_index: Vec<(NodeId, u32)>,
    /// Per-destination delivery-order queues, parallel to `dsts`.
    queues: Vec<Vec<QueueEntry>>,
}

/// Per-replica bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredMeta {
    /// When this node received the replica.
    pub stored_at: Time,
    /// Size of the packet in bytes (denormalized to keep accounting local).
    pub size_bytes: u64,
}

/// One slab entry: the replica plus the keys needed to unthread it from its
/// destination queue on removal.
#[derive(Debug, Clone, Copy)]
struct Slot {
    id: PacketId,
    meta: StoredMeta,
    dst: NodeId,
    created_at: Time,
}

/// One position in a per-destination delivery-order queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// Creation time of the packet (delivery order is oldest-first).
    pub created_at: Time,
    /// The packet.
    pub id: PacketId,
    /// Its size in bytes.
    pub size_bytes: u64,
    /// Bytes queued strictly ahead of this packet (running prefix sum).
    pub bytes_ahead: u64,
}

/// The `b(i)` queries over one `(created_at, id)`-ordered queue slice with
/// exact prefix sums. These free functions are the *single* implementation
/// of the prefix-sum arithmetic: [`NodeBuffer`] delegates for its live
/// queues and protocol-side snapshots delegate for their copies, so the
/// two can never drift apart — which is what keeps snapshot-vs-live
/// equivalence arguments (and cached-vs-fresh bitwise oracles downstream)
/// sound.
pub mod queue_slice {
    use super::QueueEntry;
    use crate::time::Time;
    use crate::types::{NodeId, PacketId};

    /// Bytes queued ahead of a *stored* packet.
    ///
    /// # Panics
    /// If the packet is not in the queue with that creation time.
    pub fn bytes_ahead(q: &[QueueEntry], dst: NodeId, id: PacketId, created_at: Time) -> u64 {
        let pos = q
            .binary_search_by_key(&(created_at, id), |e| (e.created_at, e.id))
            .unwrap_or_else(|_| panic!("{id} not in queue for {dst}"));
        q[pos].bytes_ahead
    }

    /// Bytes that would be queued ahead of a *hypothetical* packet with
    /// the given age: strictly older packets go first.
    pub fn bytes_ahead_if_inserted(q: &[QueueEntry], created_at: Time) -> u64 {
        let pos = q.partition_point(|e| e.created_at < created_at);
        ahead_of_slot(q, pos)
    }

    /// Total queued bytes.
    pub fn total_bytes(q: &[QueueEntry]) -> u64 {
        ahead_of_slot(q, q.len())
    }

    /// Bytes ahead of (hypothetical) slot `pos` — everything before it.
    pub fn ahead_of_slot(q: &[QueueEntry], pos: usize) -> u64 {
        if pos == 0 {
            0
        } else {
            q[pos - 1].bytes_ahead + q[pos - 1].size_bytes
        }
    }
}

impl NodeBuffer {
    /// Creates a buffer with the given capacity in bytes
    /// (`u64::MAX` = effectively unlimited, the paper's 40 GB bus storage).
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            index: Vec::new(),
            slots: Vec::new(),
            dsts: Vec::new(),
            dst_index: Vec::new(),
            queues: Vec::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of stored replicas.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether a replica of `id` is present.
    pub fn contains(&self, id: PacketId) -> bool {
        self.index.binary_search_by_key(&id, |e| e.0).is_ok()
    }

    /// Metadata for a stored replica.
    pub fn meta(&self, id: PacketId) -> Option<StoredMeta> {
        self.slot(id).map(|s| self.slots[s].meta)
    }

    fn slot(&self, id: PacketId) -> Option<usize> {
        self.index
            .binary_search_by_key(&id, |e| e.0)
            .ok()
            .map(|pos| self.index[pos].1 as usize)
    }

    /// Repoints the membership index entry for `id` at slab position
    /// `slot` (after a swap-remove moved it).
    fn repoint(&mut self, id: PacketId, slot: u32) {
        let pos = self
            .index
            .binary_search_by_key(&id, |e| e.0)
            .expect("slab entry is indexed");
        self.index[pos].1 = slot;
    }

    /// The queue index for `dst`, assigning the next one (first-seen
    /// order) on first sight.
    fn intern_dst(&mut self, dst: NodeId) -> usize {
        match self.dst_index.binary_search_by_key(&dst, |e| e.0) {
            Ok(pos) => self.dst_index[pos].1 as usize,
            Err(pos) => {
                let di = self.dsts.len();
                self.dsts.push(dst);
                self.queues.push(Vec::new());
                self.dst_index.insert(pos, (dst, di as u32));
                di
            }
        }
    }

    fn dst_queue(&self, dst: NodeId) -> Option<usize> {
        self.dst_index
            .binary_search_by_key(&dst, |e| e.0)
            .ok()
            .map(|pos| self.dst_index[pos].1 as usize)
    }

    /// Inserts a replica of `packet`. Returns `false` (and stores nothing)
    /// if there is not enough free space or the replica is already present.
    pub fn insert(&mut self, packet: &Packet, now: Time) -> bool {
        let size_bytes = packet.size_bytes;
        let index_pos = match self.index.binary_search_by_key(&packet.id, |e| e.0) {
            Ok(_) => return false, // already present
            Err(pos) => pos,
        };
        if size_bytes > self.free_bytes() {
            return false;
        }
        self.slots.push(Slot {
            id: packet.id,
            meta: StoredMeta {
                stored_at: now,
                size_bytes,
            },
            dst: packet.dst,
            created_at: packet.created_at,
        });
        self.index
            .insert(index_pos, (packet.id, self.slots.len() as u32 - 1));

        let di = self.intern_dst(packet.dst);
        let q = &mut self.queues[di];
        let key = (packet.created_at, packet.id);
        let pos = q.partition_point(|e| (e.created_at, e.id) < key);
        let bytes_ahead = if pos == 0 {
            0
        } else {
            q[pos - 1].bytes_ahead + q[pos - 1].size_bytes
        };
        q.insert(
            pos,
            QueueEntry {
                created_at: packet.created_at,
                id: packet.id,
                size_bytes,
                bytes_ahead,
            },
        );
        for e in &mut q[pos + 1..] {
            e.bytes_ahead += size_bytes;
        }

        self.used += size_bytes;
        true
    }

    /// Removes a replica, returning whether it was present.
    pub fn remove(&mut self, id: PacketId) -> bool {
        let Ok(index_pos) = self.index.binary_search_by_key(&id, |e| e.0) else {
            return false;
        };
        let slot = self.index[index_pos].1 as usize;
        let Slot {
            meta,
            dst,
            created_at,
            ..
        } = self.slots[slot];
        self.index.remove(index_pos);
        self.slots.swap_remove(slot);
        if slot < self.slots.len() {
            let moved = self.slots[slot].id;
            self.repoint(moved, slot as u32);
        }

        let di = self.dst_queue(dst).expect("stored replica has a queue");
        let q = &mut self.queues[di];
        let key = (created_at, id);
        let pos = q
            .binary_search_by_key(&key, |e| (e.created_at, e.id))
            .expect("stored replica is on its destination queue");
        q.remove(pos);
        for e in &mut q[pos..] {
            e.bytes_ahead -= meta.size_bytes;
        }
        if q.is_empty() {
            // Release the queue's heap allocation (the interned slot stays,
            // so indices are stable). Buffers drain constantly in long
            // streamed runs; without this, every (node, destination) pair
            // ever seen keeps a queue allocation forever, and at 100k nodes
            // that lingering capacity — not live replicas — dominates RSS.
            q.shrink_to_fit();
        }

        self.used -= meta.size_bytes;
        true
    }

    /// Iterates stored replicas in `PacketId` order.
    pub fn iter(&self) -> impl Iterator<Item = (PacketId, StoredMeta)> + '_ {
        self.index
            .iter()
            .map(|&(id, s)| (id, self.slots[s as usize].meta))
    }

    /// The stored packet ids in `PacketId` order, as an owned snapshot.
    ///
    /// Prefer [`NodeBuffer::iter`] when only traversing; use this where a
    /// snapshot is semantically required — typically because the buffer
    /// will be mutated (transfers, evictions) while walking the ids.
    pub fn ids(&self) -> Vec<PacketId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// The delivery-order queue for `dst` (Fig. 1): entries sorted by
    /// `(created_at, id)` with running prefix byte sums. Empty if this
    /// buffer holds nothing for `dst`.
    pub fn queue(&self, dst: NodeId) -> &[QueueEntry] {
        match self.dst_queue(dst) {
            Some(di) => &self.queues[di],
            None => &[],
        }
    }

    /// The destinations with non-empty queues, in first-seen order, with
    /// their queues. Protocol-side snapshots are built from this in O(n).
    pub fn queues(&self) -> impl Iterator<Item = (NodeId, &[QueueEntry])> + '_ {
        self.dsts
            .iter()
            .zip(&self.queues)
            .filter(|(_, q)| !q.is_empty())
            .map(|(&dst, q)| (dst, q.as_slice()))
    }

    /// Every destination ever interned, in first-seen order — including
    /// destinations whose queues have since drained. The intern order is
    /// protocol-observable ([`NodeBuffer::queues`] iterates it), so a
    /// checkpoint must capture and restore it exactly; rebuilding it from
    /// live replicas alone would renumber the queues.
    pub fn interned_dsts(&self) -> &[NodeId] {
        &self.dsts
    }

    /// Re-interns destinations in the given first-seen order — the restore
    /// path paired with [`NodeBuffer::interned_dsts`]. Must run on a fresh
    /// buffer, before replicas are re-inserted.
    pub fn restore_interned_dsts(&mut self, dsts: &[NodeId]) {
        assert!(
            self.slots.is_empty() && self.dsts.is_empty(),
            "interned destinations must be restored into a fresh buffer"
        );
        for &dst in dsts {
            self.intern_dst(dst);
        }
    }

    /// Bytes queued ahead of a *stored* packet in the `dst` delivery queue
    /// (Estimate Delay's `b(i)`, Eq. 5).
    ///
    /// # Panics
    /// If the packet is not stored with that destination and creation time.
    pub fn bytes_ahead(&self, dst: NodeId, id: PacketId, created_at: Time) -> u64 {
        queue_slice::bytes_ahead(self.queue(dst), dst, id, created_at)
    }

    /// Bytes that would be queued ahead of a *hypothetical* packet with the
    /// given age, were it inserted for `dst` (evaluating a replication onto
    /// this node: strictly older packets with the same destination go
    /// first).
    pub fn bytes_ahead_if_inserted(&self, dst: NodeId, created_at: Time) -> u64 {
        queue_slice::bytes_ahead_if_inserted(self.queue(dst), created_at)
    }

    /// Total queued bytes for `dst`.
    pub fn total_bytes(&self, dst: NodeId) -> u64 {
        queue_slice::total_bytes(self.queue(dst))
    }
}

impl PartialEq for NodeBuffer {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.used == other.used
            && self.len() == other.len()
            && self.iter().eq(other.iter())
    }
}

impl Eq for NodeBuffer {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    fn pkt(id: u32, dst: u32, size: u64, created_secs: u64) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(0),
            dst: NodeId(dst),
            size_bytes: size,
            created_at: Time::from_secs(created_secs),
        }
    }

    #[test]
    fn insert_remove_accounting() {
        let mut b = NodeBuffer::new(100);
        assert!(b.insert(&pkt(1, 9, 60, 0), Time::ZERO));
        assert_eq!(b.used_bytes(), 60);
        assert_eq!(b.free_bytes(), 40);
        assert!(b.contains(PacketId(1)));
        assert!(!b.insert(&pkt(2, 9, 50, 0), Time::ZERO), "over capacity");
        assert!(b.insert(&pkt(2, 9, 40, 0), Time::ZERO));
        assert_eq!(b.free_bytes(), 0);
        assert!(b.remove(PacketId(1)));
        assert_eq!(b.free_bytes(), 60);
        assert!(!b.remove(PacketId(1)), "double remove");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut b = NodeBuffer::new(100);
        assert!(b.insert(&pkt(1, 2, 10, 0), Time::ZERO));
        assert!(!b.insert(&pkt(1, 2, 10, 0), Time::ZERO));
        assert_eq!(b.used_bytes(), 10);
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut b = NodeBuffer::new(1000);
        for id in [5u32, 1, 9, 3] {
            assert!(b.insert(&pkt(id, 7, 1, u64::from(id)), Time(u64::from(id))));
        }
        let ids: Vec<u32> = b.ids().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn meta_records_arrival_time_and_size() {
        let mut b = NodeBuffer::new(100);
        b.insert(&pkt(4, 1, 25, 2), Time::from_secs(9));
        let m = b.meta(PacketId(4)).unwrap();
        assert_eq!(m.stored_at, Time::from_secs(9));
        assert_eq!(m.size_bytes, 25);
        assert!(b.meta(PacketId(5)).is_none());
    }

    #[test]
    fn unlimited_buffer() {
        let mut b = NodeBuffer::new(u64::MAX);
        assert!(b.insert(&pkt(0, 1, u64::MAX / 2, 0), Time::ZERO));
        assert!(b.free_bytes() > 0);
    }

    #[test]
    fn delivery_queues_are_oldest_first_with_prefix_sums() {
        let mut b = NodeBuffer::new(10_000);
        // Same destination, out-of-order creation times.
        b.insert(&pkt(0, 9, 1000, 50), Time::ZERO); // newest
        b.insert(&pkt(1, 9, 1000, 10), Time::ZERO); // oldest → head
        b.insert(&pkt(2, 9, 1000, 30), Time::ZERO);
        b.insert(&pkt(3, 8, 500, 5), Time::ZERO); // other destination
        let dst = NodeId(9);
        assert_eq!(b.bytes_ahead(dst, PacketId(1), Time::from_secs(10)), 0);
        assert_eq!(b.bytes_ahead(dst, PacketId(2), Time::from_secs(30)), 1000);
        assert_eq!(b.bytes_ahead(dst, PacketId(0), Time::from_secs(50)), 2000);
        assert_eq!(b.bytes_ahead(NodeId(8), PacketId(3), Time::from_secs(5)), 0);
        assert_eq!(b.total_bytes(dst), 3000);
        assert_eq!(b.total_bytes(NodeId(7)), 0);
        // Removal re-knits the prefix sums.
        b.remove(PacketId(2));
        assert_eq!(b.bytes_ahead(dst, PacketId(0), Time::from_secs(50)), 1000);
        assert_eq!(b.total_bytes(dst), 2000);
        let q: Vec<u32> = b.queue(dst).iter().map(|e| e.id.0).collect();
        assert_eq!(q, vec![1, 0]);
    }

    #[test]
    fn hypothetical_insertion_position() {
        let mut b = NodeBuffer::new(10_000);
        b.insert(&pkt(0, 9, 1000, 10), Time::ZERO);
        b.insert(&pkt(1, 9, 1000, 30), Time::ZERO);
        let dst = NodeId(9);
        // Older than everything → head.
        assert_eq!(b.bytes_ahead_if_inserted(dst, Time::from_secs(5)), 0);
        // Between the two.
        assert_eq!(b.bytes_ahead_if_inserted(dst, Time::from_secs(20)), 1000);
        // Newest → tail.
        assert_eq!(b.bytes_ahead_if_inserted(dst, Time::from_secs(99)), 2000);
        // Unknown destination → empty queue.
        assert_eq!(b.bytes_ahead_if_inserted(NodeId(1), Time::from_secs(1)), 0);
    }

    #[test]
    fn equal_creation_times_tie_break_by_id() {
        let mut b = NodeBuffer::new(10_000);
        b.insert(&pkt(5, 9, 100, 10), Time::ZERO);
        b.insert(&pkt(2, 9, 100, 10), Time::ZERO);
        let dst = NodeId(9);
        assert_eq!(b.bytes_ahead(dst, PacketId(2), Time::from_secs(10)), 0);
        assert_eq!(b.bytes_ahead(dst, PacketId(5), Time::from_secs(10)), 100);
    }

    #[test]
    fn queues_iterator_lists_nonempty_destinations() {
        let mut b = NodeBuffer::new(10_000);
        b.insert(&pkt(0, 3, 10, 1), Time::ZERO);
        b.insert(&pkt(1, 7, 10, 2), Time::ZERO);
        b.insert(&pkt(2, 3, 10, 3), Time::ZERO);
        let listed: Vec<(u32, usize)> = b.queues().map(|(d, q)| (d.0, q.len())).collect();
        assert_eq!(listed, vec![(3, 2), (7, 1)]);
        b.remove(PacketId(1));
        let listed: Vec<(u32, usize)> = b.queues().map(|(d, q)| (d.0, q.len())).collect();
        assert_eq!(listed, vec![(3, 2)], "emptied queues are skipped");
    }
}
