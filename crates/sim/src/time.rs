//! Integer simulation time.
//!
//! All event ordering in the simulator is integer microseconds, so runs are
//! bit-for-bit reproducible: there is no floating-point comparison anywhere
//! on the event path. Conversions to/from `f64` seconds exist only at the
//! statistics boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant, in microseconds since the start of the simulated day/run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds (rounds to the grid).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "time must be non-negative");
        Time((s * 1e6).round() as u64)
    }

    /// Builds an instant from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        Time(m * 60 * 1_000_000)
    }

    /// Builds an instant from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        Time(h * 3600 * 1_000_000)
    }

    /// This instant in seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(&self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }
}

impl TimeDelta {
    /// The zero span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000)
    }

    /// Builds a span from fractional seconds (rounds to the grid).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
        TimeDelta((s * 1e6).round() as u64)
    }

    /// Builds a span from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        TimeDelta(m * 60 * 1_000_000)
    }

    /// Builds a span from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        TimeDelta(h * 3600 * 1_000_000)
    }

    /// This span in seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span in minutes.
    pub fn as_mins_f64(&self) -> f64 {
        self.0 as f64 / 60e6
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    fn sub(self, rhs: Time) -> TimeDelta {
        assert!(self.0 >= rhs.0, "time subtraction would underflow");
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_secs(2).0, 2_000_000);
        assert_eq!(Time::from_mins(3), Time::from_secs(180));
        assert_eq!(Time::from_hours(1), Time::from_secs(3600));
        assert!((Time::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((TimeDelta::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-9);
        assert!((TimeDelta::from_mins(2).as_mins_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(10) + TimeDelta::from_secs(5);
        assert_eq!(t, Time::from_secs(15));
        assert_eq!(t - Time::from_secs(10), TimeDelta::from_secs(5));
        assert_eq!(
            Time::from_secs(3).since(Time::from_secs(10)),
            TimeDelta::ZERO
        );
        let mut u = Time::ZERO;
        u += TimeDelta::from_secs(7);
        assert_eq!(u, Time::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Time::from_secs(1) - Time::from_secs(2);
    }

    #[test]
    fn ordering_is_integer_exact() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time(5).since(Time(2)), TimeDelta(3));
    }
}
