//! Transfer opportunities and meeting schedules.
//!
//! §3.1: "Each directed edge e between two nodes represents a meeting between
//! them, and it is annotated with a tuple (t_e, s_e)". The reproduction
//! stores one [`Contact`] per meeting and treats the opportunity as
//! symmetric: each endpoint may send up to `bytes` to the other, mirroring
//! the deployment where the two discovered directed connections are merged
//! into one connection event (§5).

use crate::time::Time;
use crate::types::NodeId;
use dtn_trace::ContactRecord;

/// One transfer opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    /// Instant of the meeting.
    pub time: Time,
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Opportunity size in bytes, per direction.
    pub bytes: u64,
}

impl Contact {
    /// Builds a contact; endpoints must differ.
    pub fn new(time: Time, a: NodeId, b: NodeId, bytes: u64) -> Self {
        assert_ne!(a, b, "a node cannot meet itself");
        Self { time, a, b, bytes }
    }

    /// The peer of `node` in this contact.
    ///
    /// # Panics
    /// If `node` is not an endpoint.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not an endpoint of this contact");
        }
    }
}

impl From<ContactRecord> for Contact {
    fn from(r: ContactRecord) -> Self {
        Contact::new(Time(r.time_us), NodeId(r.a), NodeId(r.b), r.bytes)
    }
}

/// A time-ordered meeting schedule for one simulation run (one day).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    contacts: Vec<Contact>,
}

impl Schedule {
    /// Builds a schedule, sorting contacts by time (stable, so equal-time
    /// contacts keep their given order — which makes trace replay exact).
    pub fn new(mut contacts: Vec<Contact>) -> Self {
        contacts.sort_by_key(|c| c.time);
        Self { contacts }
    }

    /// Builds a schedule from trace records (a single day's worth).
    pub fn from_records(records: &[ContactRecord]) -> Self {
        Self::new(records.iter().map(|&r| Contact::from(r)).collect())
    }

    /// The contacts in time order.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Number of contacts.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// Time of the last contact, or `Time::ZERO` when empty.
    pub fn end_time(&self) -> Time {
        self.contacts.last().map_or(Time::ZERO, |c| c.time)
    }

    /// Total offered capacity in bytes (both directions of every contact).
    pub fn offered_bytes(&self) -> u64 {
        self.contacts.iter().map(|c| 2 * c.bytes).sum()
    }

    /// Largest node index mentioned, plus one (0 when empty). Useful for
    /// sizing arenas.
    pub fn node_count_hint(&self) -> usize {
        self.contacts
            .iter()
            .map(|c| c.a.0.max(c.b.0) as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_time() {
        let s = Schedule::new(vec![
            Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 10),
            Contact::new(Time::from_secs(1), NodeId(1), NodeId(2), 10),
        ]);
        assert_eq!(s.contacts()[0].time, Time::from_secs(1));
        assert_eq!(s.end_time(), Time::from_secs(5));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn peer_of_both_sides() {
        let c = Contact::new(Time::ZERO, NodeId(3), NodeId(7), 1);
        assert_eq!(c.peer_of(NodeId(3)), NodeId(7));
        assert_eq!(c.peer_of(NodeId(7)), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_stranger_panics() {
        let c = Contact::new(Time::ZERO, NodeId(3), NodeId(7), 1);
        let _ = c.peer_of(NodeId(1));
    }

    #[test]
    #[should_panic(expected = "meet itself")]
    fn self_contact_panics() {
        let _ = Contact::new(Time::ZERO, NodeId(3), NodeId(3), 1);
    }

    #[test]
    fn offered_bytes_counts_both_directions() {
        let s = Schedule::new(vec![
            Contact::new(Time::ZERO, NodeId(0), NodeId(1), 10),
            Contact::new(Time::ZERO, NodeId(1), NodeId(2), 5),
        ]);
        assert_eq!(s.offered_bytes(), 30);
        assert_eq!(s.node_count_hint(), 3);
    }

    #[test]
    fn from_records() {
        let s = Schedule::from_records(&[ContactRecord {
            day: 0,
            time_us: 42,
            a: 1,
            b: 2,
            bytes: 99,
        }]);
        assert_eq!(s.contacts()[0].time, Time(42));
        assert_eq!(s.contacts()[0].bytes, 99);
    }
}
