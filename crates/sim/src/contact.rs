//! Transfer opportunities: durative contact windows and meeting schedules.
//!
//! §3.1: "Each directed edge e between two nodes represents a meeting between
//! them, and it is annotated with a tuple (t_e, s_e)". The reproduction
//! generalizes the paper's instantaneous meetings to *contact windows* in the
//! style of contact-graph routing: a window is open over `[start, end]` with
//! a per-direction link rate, so the usable opportunity grows as the window
//! stays open (and shrinks when churn interrupts it). The paper's
//! instantaneous meeting is the degenerate zero-duration window, whose whole
//! opportunity is a lump available at `start` — the engine reproduces the
//! seed behaviour byte-for-byte for such schedules.
//!
//! Opportunities are symmetric: each endpoint may send up to the window
//! capacity to the other, mirroring the deployment where the two discovered
//! directed connections are merged into one connection event (§5).

use crate::time::{Time, TimeDelta};
use crate::types::NodeId;
use dtn_trace::ContactRecord;

/// One instantaneous transfer opportunity — the paper's `(t_e, s_e)` edge.
///
/// Kept as the convenience constructor for the common case; it converts into
/// the degenerate zero-duration [`ContactWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    /// Instant of the meeting.
    pub time: Time,
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Opportunity size in bytes, per direction.
    pub bytes: u64,
}

impl Contact {
    /// Builds a contact; endpoints must differ.
    pub fn new(time: Time, a: NodeId, b: NodeId, bytes: u64) -> Self {
        assert_ne!(a, b, "a node cannot meet itself");
        Self { time, a, b, bytes }
    }

    /// The peer of `node` in this contact.
    ///
    /// # Panics
    /// If `node` is not an endpoint.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not an endpoint of this contact");
        }
    }
}

/// A durative transfer opportunity: the link between `a` and `b` is up over
/// `[start, end]` at `bytes_per_sec` per direction, plus an optional
/// `lump_bytes` granted immediately at `start`.
///
/// Two shapes matter in practice:
///
/// * **Instantaneous** (`start == end`, built by [`ContactWindow::instant`]
///   or converted from a [`Contact`]): the whole opportunity is the lump —
///   exactly the paper's `(t_e, s_e)` meeting.
/// * **Durative** (built by [`ContactWindow::new`]): capacity accrues at the
///   link rate while the window is open; an interruption (node churn) caps
///   the accrual at the interruption instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactWindow {
    /// When the window opens.
    pub start: Time,
    /// When the window closes (`start == end` ⇒ instantaneous).
    pub end: Time,
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Link rate while open, bytes per second per direction.
    pub bytes_per_sec: u64,
    /// Bytes granted at `start` regardless of duration (the degenerate
    /// zero-duration window carries its whole opportunity here).
    pub lump_bytes: u64,
}

impl ContactWindow {
    /// Builds a durative window; endpoints must differ and `end >= start`.
    pub fn new(start: Time, end: Time, a: NodeId, b: NodeId, bytes_per_sec: u64) -> Self {
        assert_ne!(a, b, "a node cannot meet itself");
        assert!(end >= start, "window must not end before it starts");
        Self {
            start,
            end,
            a,
            b,
            bytes_per_sec,
            lump_bytes: 0,
        }
    }

    /// Builds the degenerate zero-duration window: the whole opportunity is
    /// a lump at `time` (the paper's instantaneous meeting).
    pub fn instant(time: Time, a: NodeId, b: NodeId, bytes: u64) -> Self {
        assert_ne!(a, b, "a node cannot meet itself");
        Self {
            start: time,
            end: time,
            a,
            b,
            bytes_per_sec: 0,
            lump_bytes: bytes,
        }
    }

    /// Window length.
    pub fn duration(&self) -> TimeDelta {
        self.end.since(self.start)
    }

    /// Whether this is a zero-duration (lump) window.
    pub fn is_instantaneous(&self) -> bool {
        self.start == self.end
    }

    /// Per-direction bytes accrued if the window runs from `start` until
    /// `until` (clamped to `[start, end]`): `lump + rate × elapsed`.
    /// Integer microsecond math — no floating point on the event path.
    pub fn capacity_until(&self, until: Time) -> u64 {
        let until = until.clamp(self.start, self.end);
        let elapsed_us = until.since(self.start).0;
        let accrued = (u128::from(self.bytes_per_sec) * u128::from(elapsed_us)) / 1_000_000;
        self.lump_bytes
            .saturating_add(u64::try_from(accrued).unwrap_or(u64::MAX))
    }

    /// Per-direction bytes offered by the full, uninterrupted window.
    pub fn capacity(&self) -> u64 {
        self.capacity_until(self.end)
    }

    /// This window shifted later by `offset` (warm-up prefix assembly).
    pub fn shifted(&self, offset: TimeDelta) -> Self {
        Self {
            start: self.start + offset,
            end: self.end + offset,
            ..*self
        }
    }

    /// Whether `node` is one of the endpoints.
    pub fn involves(&self, node: NodeId) -> bool {
        node == self.a || node == self.b
    }

    /// The peer of `node` in this window.
    ///
    /// # Panics
    /// If `node` is not an endpoint.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not an endpoint of this contact");
        }
    }
}

impl From<Contact> for ContactWindow {
    fn from(c: Contact) -> Self {
        ContactWindow::instant(c.time, c.a, c.b, c.bytes)
    }
}

impl From<ContactRecord> for ContactWindow {
    /// Trace semantics: `duration_us == 0` means an instantaneous record
    /// whose `bytes` is the lump opportunity; `duration_us > 0` means a
    /// window whose `bytes` is the link rate in bytes/sec.
    fn from(r: ContactRecord) -> Self {
        if r.duration_us == 0 {
            ContactWindow::instant(Time(r.time_us), NodeId(r.a), NodeId(r.b), r.bytes)
        } else {
            // Saturating: a (nonsensical but parseable) record near the
            // u64 end of time yields a window pinned at the time ceiling
            // rather than a wrap-around panic.
            ContactWindow::new(
                Time(r.time_us),
                Time(r.time_us.saturating_add(r.duration_us)),
                NodeId(r.a),
                NodeId(r.b),
                r.bytes,
            )
        }
    }
}

impl From<ContactWindow> for ContactRecord {
    fn from(w: ContactWindow) -> Self {
        if w.is_instantaneous() {
            ContactRecord {
                day: 0,
                time_us: w.start.0,
                a: w.a.0,
                b: w.b.0,
                bytes: w.lump_bytes,
                duration_us: 0,
            }
        } else {
            ContactRecord {
                day: 0,
                time_us: w.start.0,
                a: w.a.0,
                b: w.b.0,
                bytes: w.bytes_per_sec,
                duration_us: w.duration().0,
            }
        }
    }
}

/// A time-ordered schedule of contact windows for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    windows: Vec<ContactWindow>,
}

impl Schedule {
    /// Builds a schedule, sorting windows by start time (stable, so
    /// equal-time windows keep their given order — which makes trace replay
    /// exact). Accepts [`Contact`]s, [`ContactWindow`]s or anything else
    /// convertible to a window.
    pub fn new<C: Into<ContactWindow>>(items: Vec<C>) -> Self {
        let mut windows: Vec<ContactWindow> = items.into_iter().map(Into::into).collect();
        windows.sort_by_key(|w| w.start);
        Self { windows }
    }

    /// Builds a schedule from trace records (a single day's worth).
    pub fn from_records(records: &[ContactRecord]) -> Self {
        Self::new(
            records
                .iter()
                .map(|&r| ContactWindow::from(r))
                .collect::<Vec<_>>(),
        )
    }

    /// The windows in start-time order.
    pub fn windows(&self) -> &[ContactWindow] {
        &self.windows
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Latest window end (equals the last meeting time for instantaneous
    /// schedules), or `Time::ZERO` when empty.
    pub fn end_time(&self) -> Time {
        self.windows
            .iter()
            .map(|w| w.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total offered capacity in bytes (both directions of every window,
    /// assuming no interruptions).
    pub fn offered_bytes(&self) -> u64 {
        self.windows.iter().map(|w| 2 * w.capacity()).sum()
    }

    /// Largest node index mentioned, plus one (0 when empty). Useful for
    /// sizing arenas.
    pub fn node_count_hint(&self) -> usize {
        self.windows
            .iter()
            .map(|w| w.a.0.max(w.b.0) as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_time() {
        let s = Schedule::new(vec![
            Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 10),
            Contact::new(Time::from_secs(1), NodeId(1), NodeId(2), 10),
        ]);
        assert_eq!(s.windows()[0].start, Time::from_secs(1));
        assert_eq!(s.end_time(), Time::from_secs(5));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn peer_of_both_sides() {
        let c = Contact::new(Time::ZERO, NodeId(3), NodeId(7), 1);
        assert_eq!(c.peer_of(NodeId(3)), NodeId(7));
        assert_eq!(c.peer_of(NodeId(7)), NodeId(3));
        let w = ContactWindow::from(c);
        assert_eq!(w.peer_of(NodeId(3)), NodeId(7));
        assert!(w.involves(NodeId(7)) && !w.involves(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_stranger_panics() {
        let c = Contact::new(Time::ZERO, NodeId(3), NodeId(7), 1);
        let _ = c.peer_of(NodeId(1));
    }

    #[test]
    #[should_panic(expected = "meet itself")]
    fn self_contact_panics() {
        let _ = Contact::new(Time::ZERO, NodeId(3), NodeId(3), 1);
    }

    #[test]
    #[should_panic(expected = "meet itself")]
    fn self_window_panics() {
        let _ = ContactWindow::new(Time::ZERO, Time::from_secs(1), NodeId(3), NodeId(3), 1);
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn backwards_window_panics() {
        let _ = ContactWindow::new(
            Time::from_secs(2),
            Time::from_secs(1),
            NodeId(0),
            NodeId(1),
            1,
        );
    }

    #[test]
    fn instant_window_is_a_lump() {
        let w = ContactWindow::instant(Time::from_secs(3), NodeId(0), NodeId(1), 4096);
        assert!(w.is_instantaneous());
        assert_eq!(w.duration(), TimeDelta::ZERO);
        assert_eq!(w.capacity(), 4096);
        assert_eq!(w.capacity_until(Time::from_secs(3)), 4096);
        // Clamping: querying before/after the window is well defined.
        assert_eq!(w.capacity_until(Time::ZERO), 4096);
        assert_eq!(w.capacity_until(Time::from_secs(99)), 4096);
    }

    #[test]
    fn durative_window_accrues_linearly() {
        let w = ContactWindow::new(
            Time::from_secs(10),
            Time::from_secs(20),
            NodeId(0),
            NodeId(1),
            100, // bytes/sec
        );
        assert!(!w.is_instantaneous());
        assert_eq!(w.duration(), TimeDelta::from_secs(10));
        assert_eq!(w.capacity(), 1000);
        assert_eq!(w.capacity_until(Time::from_secs(10)), 0);
        assert_eq!(w.capacity_until(Time::from_secs(15)), 500);
        // Sub-second accrual uses integer microsecond math.
        assert_eq!(w.capacity_until(Time(10_500_000)), 50);
        // Clamped outside the window.
        assert_eq!(w.capacity_until(Time::from_secs(25)), 1000);
    }

    #[test]
    fn shifted_moves_both_ends() {
        let w = ContactWindow::new(
            Time::from_secs(1),
            Time::from_secs(2),
            NodeId(0),
            NodeId(1),
            7,
        );
        let s = w.shifted(TimeDelta::from_secs(10));
        assert_eq!(s.start, Time::from_secs(11));
        assert_eq!(s.end, Time::from_secs(12));
        assert_eq!(s.bytes_per_sec, 7);
    }

    #[test]
    fn offered_bytes_counts_both_directions() {
        let s = Schedule::new(vec![
            Contact::new(Time::ZERO, NodeId(0), NodeId(1), 10),
            Contact::new(Time::ZERO, NodeId(1), NodeId(2), 5),
        ]);
        assert_eq!(s.offered_bytes(), 30);
        assert_eq!(s.node_count_hint(), 3);
    }

    #[test]
    fn from_records_instant_and_windowed() {
        let s = Schedule::from_records(&[
            ContactRecord {
                day: 0,
                time_us: 42,
                a: 1,
                b: 2,
                bytes: 99,
                duration_us: 0,
            },
            ContactRecord {
                day: 0,
                time_us: 100,
                a: 2,
                b: 3,
                bytes: 1_000_000, // bytes/sec while open
                duration_us: 2_000_000,
            },
        ]);
        assert_eq!(s.windows()[0].start, Time(42));
        assert_eq!(s.windows()[0].capacity(), 99);
        assert!(s.windows()[0].is_instantaneous());
        let w = s.windows()[1];
        assert_eq!(w.end, Time(2_000_100));
        assert_eq!(w.capacity(), 2_000_000);
        assert_eq!(s.end_time(), Time(2_000_100));
    }

    #[test]
    fn window_record_round_trip() {
        for w in [
            ContactWindow::instant(Time(5), NodeId(1), NodeId(2), 77),
            ContactWindow::new(Time(5), Time(4_000_005), NodeId(1), NodeId(2), 512),
        ] {
            let r = ContactRecord::from(w);
            assert_eq!(ContactWindow::from(r), w);
        }
    }
}
