//! Core identifiers and the packet type (the paper's §3.1 system model).

use crate::time::Time;
use std::fmt;

/// Identifier of a DTN node (a bus, in DieselNet terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an array index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a packet; an index into the simulator's packet arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The id as an array index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A packet: the workload tuple `(u_i, v_i, s_i, t_i)` of §3.1.
///
/// Packets may not be fragmented (§3.1); a transfer either moves the whole
/// `size_bytes` within the remaining opportunity or does not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Arena id.
    pub id: PacketId,
    /// Source node (creator).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Creation time at the source.
    pub created_at: Time,
}

impl Packet {
    /// Time since creation — the paper's `T(i)`.
    pub fn age_at(&self, now: Time) -> crate::time::TimeDelta {
        now.since(self.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(PacketId(9).to_string(), "p9");
    }

    #[test]
    fn age_is_saturating() {
        let p = Packet {
            id: PacketId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 1024,
            created_at: Time::from_secs(10),
        };
        assert_eq!(p.age_at(Time::from_secs(12)), TimeDelta::from_secs(2));
        assert_eq!(p.age_at(Time::from_secs(5)), TimeDelta::ZERO);
    }
}
