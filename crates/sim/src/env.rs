//! Strict environment-knob parsing, shared by every crate in the
//! workspace.
//!
//! Every `RAPID_*` knob goes through this module: an unset knob yields
//! its documented default, a *malformed* one aborts with a message
//! naming the knob and the offending value. The strictness is
//! deliberate — a typo'd `RAPID_SHARDS=fou` must not silently fall back
//! to the serial engine and quietly invalidate a scaling measurement.
//!
//! The per-crate copies this module replaces (`par::jobs_from_env`,
//! `Lookahead::from_env`, `Kernel::from_env`, the bench crate's lenient
//! `env_u64`) now delegate here, so the parse-and-abort behaviour is
//! identical across knobs:
//!
//! * `RAPID_JOBS` / `RAPID_INTRA_JOBS` / `RAPID_SHARDS` — worker and
//!   shard counts, positive integers ([`jobs_from_env`]).
//! * `RAPID_LOOKAHEAD` — the batch scheduler's policy
//!   ([`crate::par::Lookahead::from_env`]).
//! * `RAPID_KERNEL` — the estimate-kernel selector (parsed by
//!   `rapid-core`, read through [`from_env_or`]).
//! * Generic counters and factors — [`u64_from_env`] / [`f64_from_env`].

/// Reads a knob and runs `parse` over it: an unset knob yields
/// `default`, a present one must parse or the process aborts with the
/// parser's message. The single strict read-and-abort path every typed
/// knob shares.
pub fn from_env_or<T>(name: &str, default: T, parse: impl FnOnce(&str) -> Result<T, String>) -> T {
    match std::env::var(name) {
        Ok(v) => parse(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => default,
    }
}

/// Parses a worker-count value: a positive integer, nothing else. `0`
/// and non-numeric values are errors — a typo'd jobs knob must abort,
/// not silently run serial.
pub fn parse_jobs(name: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(v) if v >= 1 => Ok(v),
        Ok(_) => Err(format!(
            "invalid {name} value {value:?}: must be >= 1 (use 1 for serial execution)"
        )),
        Err(_) => Err(format!(
            "invalid {name} value {value:?}: expected a positive integer"
        )),
    }
}

/// Reads a worker-count knob from the environment; an unset knob yields
/// `default`, an invalid one aborts with a clear message (see
/// [`parse_jobs`]).
pub fn jobs_from_env(name: &str, default: usize) -> usize {
    from_env_or(name, default, |v| parse_jobs(name, v))
}

/// The intra-run worker count from `RAPID_INTRA_JOBS` (default 1 = the
/// serial engine). Harness code plumbs this into
/// [`crate::routing::SimConfig::intra_jobs`].
pub fn intra_jobs_from_env() -> usize {
    jobs_from_env("RAPID_INTRA_JOBS", 1)
}

/// The shard count from `RAPID_SHARDS` (default 1 = today's unsharded
/// engine, byte-identical). Harness code routes a run through
/// [`crate::shard::run_sharded`] when this exceeds 1.
pub fn shards_from_env() -> usize {
    jobs_from_env("RAPID_SHARDS", 1)
}

/// Reads a non-negative integer knob; unset yields `default`, anything
/// unparseable aborts.
pub fn u64_from_env(name: &str, default: u64) -> u64 {
    from_env_or(name, default, |v| {
        v.trim()
            .parse::<u64>()
            .map_err(|_| format!("invalid {name} value {v:?}: expected a non-negative integer"))
    })
}

/// Reads a finite positive float knob (factors, rates); unset yields
/// `default`, anything unparseable or non-positive aborts.
pub fn f64_from_env(name: &str, default: f64) -> f64 {
    from_env_or(name, default, |v| match v.trim().parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 => Ok(x),
        _ => Err(format!(
            "invalid {name} value {v:?}: expected a finite positive number"
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("RAPID_SHARDS", "1"), Ok(1));
        assert_eq!(parse_jobs("RAPID_SHARDS", " 8 "), Ok(8));
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage() {
        assert!(parse_jobs("RAPID_SHARDS", "0")
            .unwrap_err()
            .contains("must be >= 1"));
        for bad in ["", "four", "-2", "1.5"] {
            assert!(
                parse_jobs("RAPID_SHARDS", bad)
                    .unwrap_err()
                    .contains("positive integer"),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn unset_knobs_yield_defaults() {
        // These knobs are never set in the test environment.
        assert_eq!(jobs_from_env("RAPID_ENV_TEST_UNSET", 3), 3);
        assert_eq!(u64_from_env("RAPID_ENV_TEST_UNSET", 42), 42);
        assert_eq!(f64_from_env("RAPID_ENV_TEST_UNSET", 2.5), 2.5);
        assert!(shards_from_env() >= 1);
        assert!(intra_jobs_from_env() >= 1);
    }

    #[test]
    fn from_env_or_runs_the_parser_on_present_values() {
        // Process-env mutation is race-prone under the parallel test
        // runner, so exercise the parser contract directly.
        let parsed = from_env_or("RAPID_ENV_TEST_UNSET", 7u64, |_| unreachable!());
        assert_eq!(parsed, 7);
    }

    #[test]
    fn u64_parse_is_strict() {
        for bad in ["", "ten", "-1", "3.5"] {
            assert!(
                bad.trim().parse::<u64>().is_err(),
                "{bad:?} must fail the u64 path"
            );
        }
    }

    #[test]
    fn f64_rejects_non_positive_and_non_finite() {
        for bad in ["0", "-1.5", "nan", "inf", "fast"] {
            let r = match bad.trim().parse::<f64>() {
                Ok(x) if x.is_finite() && x > 0.0 => Ok(x),
                _ => Err(()),
            };
            assert!(r.is_err(), "{bad:?} must be rejected by the f64 rule");
        }
    }
}
