//! The sharded simulation runtime: partitioned event loops under a
//! conservative sync horizon.
//!
//! Intra-run parallelism (`RAPID_INTRA_JOBS`, see [`crate::par`])
//! parallelizes *within* one event loop: one thread scans, batches and
//! commits, and workers only execute node-disjoint contact drives. That
//! tops out well before the ROADMAP's million-node worlds, because the
//! scan itself — window pulls, noise draws, churn, TTL bookkeeping — is
//! serial. This module partitions the *node space* instead:
//!
//! * A [`Partition`] maps contiguous `NodeId` ranges to shards —
//!   `ScaleFleet`'s hub-gateway topology emits hub-local contacts, so
//!   region boundaries are a natural seam with few cross-shard windows.
//! * A *director* (the calling thread) replays the engine's exact merge
//!   of contact windows, packet creations and queued events — same
//!   noise-RNG draws, same suppression checks, same contact sequence
//!   numbers — but instead of executing each action it *routes* it:
//!   an action whose node set lies inside one shard is appended to that
//!   shard's message queue; anything cross-shard (a gateway contact, a
//!   TTL expiry touching arbitrary holders) is a *barrier*.
//! * Between barriers the shards free-run: at each epoch flush every
//!   shard drains its queue serially — its own routing instance, its own
//!   node-buffer range, the shared read-only packet arena — on a
//!   work-stealing [`ContactPool`]. The epoch boundary is the
//!   conservative sync horizon: every queued action is ordered (in the
//!   engine's total `(time, rank, seq)` order) *before* the barrier
//!   action that forced the flush, so no shard ever sees state from its
//!   future.
//! * Cross-shard actions execute on the director's own *coordinator*
//!   routing instance against the full world, exactly like the serial
//!   engine.
//!
//! # Determinism
//!
//! `RAPID_SHARDS=N` is byte-identical to the serial engine for any `N`
//! and any partition, because every ingredient of the report is either
//! computed by the director in serial order (noise draws, suppression,
//! contact seq numbers, expiry accounting) or commutes across shards
//! within an epoch:
//!
//! * **Buffers** — shards own disjoint node ranges; the coordinator only
//!   touches buffers between epochs.
//! * **`delivered_at`** — slot `p` is only written by the contact whose
//!   endpoint is `dst(p)`; within an epoch that is exactly one shard
//!   (the coordinator only reads/writes between epochs). The engine's
//!   serial order among the drives of one shard is preserved by the
//!   queue, so first-delivery resolution is identical.
//! * **Holder sets** — shards never mutate the shared holder table;
//!   drives and creations log [`HolderOp`]s, applied by the director in
//!   shard order after every epoch. All ops for a fixed `(packet, node)`
//!   pair originate from `node`'s own shard (in queue order), so the
//!   final state per pair — the only thing later barriers observe — is
//!   exact.
//! * **Report sums** — per-shard `u64` counters folded in shard order;
//!   integer addition is associative and commutative.
//!
//! The runtime has two execution modes, keyed on the protocol's
//! [`ContactConcurrency`] tier:
//!
//! * **`Stateless`** — one routing instance *per shard* plus the
//!   coordinator. Sound because every observable decision is a pure
//!   function of `(config, driver)`, so N instances driving disjoint
//!   contact subsets behave like one instance driving everything.
//! * **`NodeDisjoint`** (without the `Stateless` promise) — one *single*
//!   shared instance (the coordinator). Per-node protocol state makes
//!   instances non-interchangeable, but the extended `NodeDisjoint`
//!   contract ([`Routing::contact_concurrency`]) guarantees every queued
//!   epoch action touches only its own shard's nodes, so shard queues
//!   commute within an epoch. Each flush asks the instance to drain the
//!   epoch itself via [`Routing::on_shard_epoch`] (splitting its per-node
//!   state across the pool); a protocol without that override is drained
//!   serially in shard order — same bytes, no intra-epoch parallelism.
//!
//! `Serial` protocols cannot shard at all and are rejected loudly.

use crate::checkpoint::{
    config_digest, require_checkpointable, Counters, OpenSnap, RoutingState, RunHooks, Snapshot,
};
use crate::contact::ContactWindow;
use crate::driver::{ContactDriver, HolderOp, WorldMut};
use crate::event::{EventQueue, NodeEvent, SimEvent, WindowIdx};
use crate::ids::IndexSet;
use crate::noise::NoiseModel;
use crate::par::{ContactConcurrency, ContactPool, PendingDrive, RawSlice, SlicePartition};
use crate::report::SimReport;
use crate::routing::{PacketStore, Routing, SimConfig};
use crate::source::{ContactSource, WorkloadSource};
use crate::time::{Time, TimeDelta};
use crate::types::{NodeId, PacketId};
use crate::NodeBuffer;
use dtn_stats::sample::Exponential;
use dtn_stats::stream;
use rand::Rng;
use std::time::{Duration, Instant};

/// Pending same-shard actions across all queues before a flush is forced
/// even without a barrier — bounds queue memory on long free-runs.
const EPOCH_ACTION_CAP: usize = 8192;

/// A contiguous partition of the node id space `0..nodes` into shards.
///
/// Shard `s` owns nodes `bounds[s]..bounds[s+1]`; ranges are disjoint,
/// cover the space, and may be empty (a degenerate shard simply never
/// receives work — useful for property tests over arbitrary cuts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `shards + 1` nondecreasing fence posts; first 0, last == nodes.
    bounds: Vec<u32>,
}

impl Partition {
    /// An even split of `0..nodes` into `shards` contiguous ranges (the
    /// first `nodes % shards` ranges get one extra node).
    pub fn even(nodes: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(nodes <= u32::MAX as usize, "node space too large");
        let (base, rem) = (nodes / shards, nodes % shards);
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0u32;
        bounds.push(at);
        for s in 0..shards {
            at += base as u32 + u32::from(s < rem);
            bounds.push(at);
        }
        Self { bounds }
    }

    /// A partition from explicit fence posts: `bounds[s]..bounds[s+1]`
    /// is shard `s`. Must start at 0, be nondecreasing, and contain at
    /// least one shard; the last post is the node count.
    pub fn from_bounds(bounds: Vec<u32>) -> Self {
        assert!(bounds.len() >= 2, "need at least one shard range");
        assert_eq!(bounds[0], 0, "partition must start at node 0");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "partition bounds must be nondecreasing"
        );
        Self { bounds }
    }

    /// Number of shards (including empty ones).
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of nodes covered.
    pub fn nodes(&self) -> usize {
        *self.bounds.last().expect("nonempty bounds") as usize
    }

    /// The node-index range owned by shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s] as usize..self.bounds[s + 1] as usize
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        debug_assert!(node.index() < self.nodes(), "{node} outside partition");
        // The last fence post <= node, skipping the leading 0: empty
        // shards collapse to the successor actually owning the node.
        self.bounds.partition_point(|&b| b as usize <= node.index()) - 1
    }

    /// Whether both endpoints of `w` fall in one shard.
    pub fn is_local(&self, w: &ContactWindow) -> bool {
        self.shard_of(w.a) == self.shard_of(w.b)
    }
}

/// Clamps a requested shard count to the node count, warning once when
/// the request exceeded it: `RAPID_SHARDS > nodes` would pass env
/// validation yet produce shards that own no nodes — each still costing
/// a pool worker and a queue while doing no work. The result is always
/// at least 1 (a zero-node world still needs one shard for
/// [`Partition::even`]).
pub fn clamp_shards(shards: usize, nodes: usize) -> usize {
    let clamped = shards.min(nodes).max(1);
    if clamped < shards {
        crate::diag::warn_once(
            "shards-clamped",
            &format!(
                "RAPID_SHARDS={shards} exceeds the {nodes}-node world; \
                 clamping to {clamped} (extra shards would own no nodes)"
            ),
            &[
                ("requested", shards.to_string()),
                ("nodes", nodes.to_string()),
                ("clamped", clamped.to_string()),
            ],
        );
    }
    clamped
}

/// Per-shard execution telemetry from a sharded run (the timing TSVs the
/// scale harness uploads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Nodes owned by the shard.
    pub nodes: usize,
    /// Contact drives the shard executed.
    pub drives: u64,
    /// Packet-creation actions the shard executed.
    pub creations: u64,
    /// Wall time spent draining this shard's queues (sum over epochs).
    pub busy: Duration,
    /// The concurrency tier the run executed under — which of the two
    /// sharded modes served this shard (`stateless` = per-shard
    /// instances, `node_disjoint` = single shared instance). Harnesses
    /// that fall back to the serial engine report `serial` here so the
    /// per-shard TSV says *why* a run didn't parallelize.
    pub concurrency: ContactConcurrency,
}

/// One routed action in a shard's queue. Emitted by the director in the
/// engine's total event order, so within one queue the order *is* the
/// serial execution order.
enum ShardMsg {
    /// Drive a contact whose endpoints both belong to this shard.
    Drive {
        drive: PendingDrive,
        interrupted: bool,
    },
    /// Execute the source-buffer side of a packet creation (the packet is
    /// already in the shared arena). `src_up` is the director's
    /// availability verdict at creation time.
    Create { id: PacketId, src_up: bool },
    /// Lifecycle hook: the node (owned by this shard) came up.
    NodeUp(NodeId, Time),
    /// Lifecycle hook: the node (owned by this shard) went down.
    NodeDown(NodeId, Time),
}

/// One shard's routing instance, action queue, holder-op log and report
/// counters. Disjoint across shards; drained by one worker per epoch.
struct ShardState {
    /// The shard's own instance under the `Stateless` mode; `None` under
    /// the single-instance `NodeDisjoint` mode, where every drain runs
    /// against a view of the coordinator's state.
    routing: Option<Box<dyn Routing + Send>>,
    msgs: Vec<ShardMsg>,
    holder_log: Vec<HolderOp>,
    // Report counters, folded in shard order at the end of the run.
    contacts: u64,
    offered_bytes: u64,
    data_bytes: u64,
    metadata_bytes: u64,
    replications: u64,
    // Telemetry.
    drives: u64,
    creations: u64,
    busy: Duration,
}

/// The shared world of a sharded run. Buffers are range-owned by shards
/// during an epoch; everything else follows the access contract in the
/// module docs.
struct ShardWorld {
    buffers: Vec<NodeBuffer>,
    store: PacketStore,
    delivered_at: Vec<Option<Time>>,
    holders: Vec<IndexSet>,
    entered: Vec<bool>,
}

/// A durative window currently open (director-side mirror of the
/// engine's open set, ascending window-index order).
struct OpenWindow {
    idx: WindowIdx,
    window: ContactWindow,
    loss: u64,
}

/// [`run_sharded_with_stats`] without the telemetry.
pub fn run_sharded(
    config: &SimConfig,
    partition: &Partition,
    contacts: &mut dyn ContactSource,
    workload: &mut dyn WorkloadSource,
    churn: &[NodeEvent],
    noise: Option<NoiseModel>,
    factory: &mut dyn FnMut() -> Box<dyn Routing + Send>,
) -> SimReport {
    run_sharded_with_stats(config, partition, contacts, workload, churn, noise, factory).0
}

/// Executes one run under `partition` and returns the report
/// (byte-identical to [`crate::engine::run_streaming`] with the same
/// inputs) plus per-shard telemetry.
///
/// `factory` builds the coordinator instance and — under the
/// [`ContactConcurrency::Stateless`] mode — one routing instance per
/// shard. Every instance must declare a node-disjoint tier
/// ([`ContactConcurrency::is_node_disjoint`]); a `Serial` protocol is
/// rejected loudly. Protocols that are `NodeDisjoint` but not
/// `Stateless` run in the single-instance mode (see the module docs).
/// Runs with global knowledge cannot shard (the instant global channel
/// reads arbitrary remote state mid-contact).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_with_stats(
    config: &SimConfig,
    partition: &Partition,
    contacts: &mut dyn ContactSource,
    workload: &mut dyn WorkloadSource,
    churn: &[NodeEvent],
    noise: Option<NoiseModel>,
    factory: &mut dyn FnMut() -> Box<dyn Routing + Send>,
) -> (SimReport, Vec<ShardStats>) {
    run_sharded_hooked(
        config,
        partition,
        contacts,
        workload,
        churn,
        noise,
        factory,
        RunHooks::default(),
    )
}

/// [`run_sharded_with_stats`] with crash-safety hooks: periodic
/// checkpoints, resume from a [`Snapshot`], and fault injection.
///
/// Snapshots are partition-independent — everything captured is the
/// global serial-order state the shard modes agree on — so a run
/// checkpointed at one `RAPID_SHARDS` resumes byte-identically at any
/// other (or on the serial engine).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_hooked(
    config: &SimConfig,
    partition: &Partition,
    contacts: &mut dyn ContactSource,
    workload: &mut dyn WorkloadSource,
    churn: &[NodeEvent],
    noise: Option<NoiseModel>,
    factory: &mut dyn FnMut() -> Box<dyn Routing + Send>,
    hooks: RunHooks<'_>,
) -> (SimReport, Vec<ShardStats>) {
    assert_eq!(
        partition.nodes(),
        config.nodes,
        "partition must cover exactly the configured node space"
    );
    assert!(
        !config.allow_global_knowledge,
        "global-knowledge runs cannot be sharded"
    );

    let mut coord = factory();
    let concurrency = coord.contact_concurrency();
    assert!(
        concurrency.is_node_disjoint(),
        "sharded execution requires a node-disjoint protocol tier \
         (NodeDisjoint or Stateless); {} declared Serial",
        coord.name()
    );
    coord.on_init(config);
    if hooks.checkpoint.is_some() || hooks.resume.is_some() {
        require_checkpointable(coord.as_ref());
    }
    let stateless = concurrency == ContactConcurrency::Stateless;

    let mut states: Vec<ShardState> = (0..partition.shards())
        .map(|_| {
            let routing = stateless.then(|| {
                let mut routing = factory();
                debug_assert_eq!(routing.contact_concurrency(), ContactConcurrency::Stateless);
                routing.on_init(config);
                routing
            });
            ShardState {
                routing,
                msgs: Vec::new(),
                holder_log: Vec::new(),
                contacts: 0,
                offered_bytes: 0,
                data_bytes: 0,
                metadata_bytes: 0,
                replications: 0,
                drives: 0,
                creations: 0,
                busy: Duration::ZERO,
            }
        })
        .collect();

    let report = std::thread::scope(|scope| {
        let pool = ContactPool::start(scope, partition.shards());
        let mut director = Director {
            config,
            partition,
            states: &mut states,
            stateless,
            world: ShardWorld {
                buffers: (0..config.nodes)
                    .map(|_| NodeBuffer::new(config.buffer_capacity))
                    .collect(),
                store: PacketStore::default(),
                delivered_at: Vec::new(),
                holders: Vec::new(),
                entered: Vec::new(),
            },
            coord: coord.as_mut(),
            report: SimReport {
                horizon: config.horizon,
                deadline: config.deadline,
                ..SimReport::default()
            },
            pending: 0,
        };
        director.run(&pool, contacts, workload, churn, noise, hooks);
        director.report
    });

    let stats = states
        .iter()
        .enumerate()
        .map(|(s, st)| ShardStats {
            shard: s,
            nodes: partition.range(s).len(),
            drives: st.drives,
            creations: st.creations,
            busy: st.busy,
            concurrency,
        })
        .collect();
    (report, stats)
}

/// The serial director: replays the engine's event merge, routes actions
/// to shard queues, and executes barriers against the full world.
struct Director<'a> {
    config: &'a SimConfig,
    partition: &'a Partition,
    states: &'a mut [ShardState],
    /// Whether shards own per-shard instances (`Stateless` mode) or every
    /// epoch drains the single coordinator instance (`NodeDisjoint`).
    stateless: bool,
    world: ShardWorld,
    coord: &'a mut (dyn Routing + Send),
    report: SimReport,
    /// Same-shard actions queued since the last epoch flush.
    pending: usize,
}

impl Director<'_> {
    /// The engine loop, action execution replaced by routing. Every
    /// structural decision (merge order, asserts, noise draws, seq
    /// assignment) mirrors `engine::run_loop` — divergence here is a
    /// determinism bug.
    fn run(
        &mut self,
        pool: &ContactPool,
        contacts: &mut dyn ContactSource,
        workload: &mut dyn WorkloadSource,
        churn: &[NodeEvent],
        noise: Option<NoiseModel>,
        mut hooks: RunHooks<'_>,
    ) {
        let n = self.config.nodes;
        let mut noise_rng = stream(self.config.seed, "sim-noise");

        // On a resume the snapshot's queue already holds the remaining
        // churn events, so churn is *not* re-seeded.
        let mut queue = EventQueue::new();
        if hooks.resume.is_none() {
            for ev in churn {
                assert!(ev.node.index() < n, "churn references node outside 0..{n}");
                let event = if ev.up {
                    SimEvent::NodeUp(ev.node)
                } else {
                    SimEvent::NodeDown(ev.node)
                };
                queue.push(ev.time, event);
            }
        }

        let mut up = vec![true; n];
        let mut open: Vec<OpenWindow> = Vec::new();

        let pull_window = |contacts: &mut dyn ContactSource, last_start: &mut Time| {
            let w = contacts.next_window()?;
            assert!(
                w.a.index() < n && w.b.index() < n,
                "contact references node outside 0..{n}"
            );
            assert!(
                w.start >= *last_start,
                "contact source must yield nondecreasing start times"
            );
            *last_start = w.start;
            Some(w)
        };
        let pull_packet = |workload: &mut dyn WorkloadSource, last_time: &mut Time| {
            let s = workload.next_packet()?;
            assert!(
                s.src.index() < n && s.dst.index() < n,
                "packet references node outside 0..{n}"
            );
            assert!(
                s.time >= *last_time,
                "workload source must yield nondecreasing creation times"
            );
            *last_time = s.time;
            Some(s)
        };

        let mut last_window_start = Time::ZERO;
        let mut last_packet_time = Time::ZERO;
        let mut next_window_idx: WindowIdx = 0;
        let mut contact_seq: u64 = 0;
        let (mut next_window, mut next_packet);

        if let Some(snap) = hooks.resume.take() {
            assert_eq!(
                snap.config_digest,
                config_digest(self.config),
                "snapshot was taken under a different scenario configuration \
                 [diag=resume-config-mismatch]"
            );
            self.world.store = snap.restore_store();
            let (buffers, holders) =
                snap.restore_buffers(self.config.buffer_capacity, &self.world.store);
            self.world.buffers = buffers;
            self.world.holders = holders;
            self.world.delivered_at = snap.delivered_at.clone();
            self.world.entered = snap.entered.clone();
            queue = snap.restore_queue();
            assert_eq!(snap.up.len(), n, "snapshot node count mismatch");
            up = snap.up.clone();
            open = snap
                .open
                .iter()
                .map(|o| OpenWindow {
                    idx: o.idx as WindowIdx,
                    window: o.window,
                    loss: o.loss,
                })
                .collect();
            noise_rng = rand::rngs::StdRng::from_state(snap.noise_rng);
            contact_seq = snap.contact_seq;
            let c = snap.counters;
            self.report.contacts = c.contacts;
            self.report.contacts_failed = c.contacts_failed;
            self.report.contacts_suppressed = c.contacts_suppressed;
            self.report.expired = c.expired;
            self.report.offered_bytes = c.offered_bytes;
            self.report.data_bytes = c.data_bytes;
            self.report.metadata_bytes = c.metadata_bytes;
            self.report.replications = c.replications;

            // Replay the deterministic sources by count, then check the
            // lookahead items against the snapshot (see
            // `crate::checkpoint` — an end-to-end input integrity check).
            for _ in 0..snap.windows_consumed {
                pull_window(contacts, &mut last_window_start)
                    .expect("contact source ended before the snapshot's position");
            }
            next_window_idx = snap.windows_consumed as WindowIdx;
            next_window = pull_window(contacts, &mut last_window_start);
            assert_eq!(
                next_window, snap.next_window,
                "contact source diverged from the snapshot [diag=resume-source-mismatch]"
            );
            for _ in 0..snap.packets.len() {
                pull_packet(workload, &mut last_packet_time)
                    .expect("workload source ended before the snapshot's position");
            }
            next_packet = pull_packet(workload, &mut last_packet_time);
            assert_eq!(
                next_packet, snap.next_packet,
                "workload source diverged from the snapshot [diag=resume-source-mismatch]"
            );

            // Coordinator protocol state (shard instances, when they
            // exist, are Stateless: fresh ones are exact by contract).
            if let Some(rs) = &snap.routing {
                assert_eq!(
                    rs.name,
                    self.coord.name(),
                    "snapshot holds {} state but the run uses {} [diag=resume-proto-mismatch]",
                    rs.name,
                    self.coord.name()
                );
                self.coord
                    .load_state(&rs.bytes)
                    .unwrap_or_else(|e| panic!("protocol state restore failed: {e}"));
            }

            if let Some(faults) = hooks.faults.as_deref_mut() {
                faults.ack_crashes_before(snap.now);
            }
            if let Some(ckpt) = hooks.checkpoint.as_deref_mut() {
                ckpt.align(snap.now);
            }
        } else {
            next_window = pull_window(contacts, &mut last_window_start);
            next_packet = pull_packet(workload, &mut last_packet_time);
        }

        const START_RANK: u8 = 3; // SimEvent::ContactStart
        const CREATED_RANK: u8 = 4; // SimEvent::PacketCreated

        loop {
            let queue_key = queue.peek_key();
            let window_key = next_window.as_ref().map(|w| (w.start, START_RANK));
            let packet_key = next_packet.as_ref().map(|s| (s.time, CREATED_RANK));
            let best = [queue_key, window_key, packet_key]
                .into_iter()
                .flatten()
                .min();
            let Some(best) = best else { break };

            if let Some(faults) = hooks.faults.as_deref_mut() {
                faults.trip_crash(best.0);
            }
            if hooks.checkpoint.as_ref().is_some_and(|c| c.due(best.0)) {
                // Quiescence: drain every shard queue and apply holder
                // logs, then fold (and zero) the shard counters so the
                // snapshot's report is the full serial-order prefix.
                self.flush_epoch(pool);
                self.fold_shard_counters();
                let snap = Snapshot {
                    config_digest: config_digest(self.config),
                    now: best.0,
                    windows_consumed: next_window_idx as u64,
                    contact_seq,
                    next_window,
                    next_packet,
                    noise_rng: noise_rng.state(),
                    events: queue.snapshot_events(),
                    packets: Snapshot::capture_store(&self.world.store),
                    delivered_at: self.world.delivered_at.clone(),
                    entered: self.world.entered.clone(),
                    buffers: Snapshot::capture_buffers(&self.world.buffers),
                    up: up.clone(),
                    open: open
                        .iter()
                        .map(|ow| OpenSnap {
                            idx: ow.idx as u64,
                            window: ow.window,
                            loss: ow.loss,
                        })
                        .collect(),
                    counters: Counters {
                        contacts: self.report.contacts,
                        contacts_failed: self.report.contacts_failed,
                        contacts_suppressed: self.report.contacts_suppressed,
                        expired: self.report.expired,
                        offered_bytes: self.report.offered_bytes,
                        data_bytes: self.report.data_bytes,
                        metadata_bytes: self.report.metadata_bytes,
                        replications: self.report.replications,
                    },
                    routing: self.coord.save_state().map(|bytes| RoutingState {
                        name: self.coord.name(),
                        bytes,
                    }),
                };
                let ckpt = hooks.checkpoint.as_deref_mut().expect("checked above");
                ckpt.save(&snap, hooks.faults.as_deref())
                    .unwrap_or_else(|e| {
                        panic!("checkpoint write failed: {e} [diag=ckpt-write-failed]")
                    });
            }

            if window_key == Some(best) {
                let w = next_window.take().expect("window candidate exists");
                let i = next_window_idx;
                next_window_idx += 1;
                next_window = pull_window(contacts, &mut last_window_start);
                let now = w.start;

                if !up[w.a.index()] || !up[w.b.index()] {
                    if now >= self.config.measure_from {
                        self.report.contacts_suppressed += 1;
                    }
                    continue;
                }
                let measured = now >= self.config.measure_from;
                let mut loss = 0u64;
                if let Some(noise) = &noise {
                    if noise_rng.gen::<f64>() < noise.contact_failure_prob {
                        if measured {
                            self.report.contacts_failed += 1;
                        }
                        continue;
                    }
                    if noise.setup_loss_bytes_mean > 0.0 {
                        loss = Exponential::with_mean(noise.setup_loss_bytes_mean)
                            .sample(&mut noise_rng) as u64;
                    }
                }
                if w.is_instantaneous() {
                    let budget = w.lump_bytes.saturating_sub(loss);
                    let seq = contact_seq;
                    contact_seq += 1;
                    self.route_drive(
                        pool,
                        PendingDrive {
                            window: w,
                            now,
                            budget,
                            seq,
                            measured,
                        },
                        false,
                    );
                } else {
                    // An injected abort fault cuts the window short, with
                    // churn-interruption semantics (mirrors the engine).
                    let end = hooks
                        .faults
                        .as_deref()
                        .and_then(|f| f.abort_for(i, w.start, w.end))
                        .unwrap_or(w.end);
                    queue.push(end, SimEvent::ContactEnd(i));
                    open.push(OpenWindow {
                        idx: i,
                        window: w,
                        loss,
                    });
                }
                continue;
            }

            if packet_key == Some(best) {
                let spec = next_packet.take().expect("packet candidate exists");
                next_packet = pull_packet(workload, &mut last_packet_time);

                let ttl_deadline = self
                    .config
                    .ttl
                    .map_or(PacketStore::NO_TTL, |ttl| spec.time + ttl);
                let id = self.world.store.push(
                    spec.src,
                    spec.dst,
                    spec.size_bytes,
                    spec.time,
                    ttl_deadline,
                );
                self.world.delivered_at.push(None);
                self.world.holders.push(IndexSet::new());
                // The home shard flips this during its epoch if the
                // insert succeeds; the slot is single-writer (see module
                // docs).
                self.world.entered.push(false);

                let src_up = up[spec.src.index()];
                self.enqueue(
                    pool,
                    self.partition.shard_of(spec.src),
                    ShardMsg::Create { id, src_up },
                );
                // The engine schedules the expiry only on a successful
                // insert, which the director cannot know yet; schedule it
                // whenever it *could* succeed. The expiry handler skips
                // packets that never entered, so the extra events are
                // no-op barriers, not report drift.
                if src_up && ttl_deadline != PacketStore::NO_TTL {
                    queue.push(ttl_deadline, SimEvent::PacketExpired(id));
                }
                continue;
            }

            let (now, event) = queue.pop().expect("queue candidate exists");
            match event {
                SimEvent::NodeUp(node) => {
                    up[node.index()] = true;
                    let s = self.partition.shard_of(node);
                    self.enqueue(pool, s, ShardMsg::NodeUp(node, now));
                }
                SimEvent::NodeDown(node) => {
                    // Interrupt active windows in ascending window-index
                    // order, exactly like the engine.
                    let mut k = 0;
                    while k < open.len() {
                        if open[k].window.involves(node) {
                            let ow = open.remove(k);
                            let budget = ow.window.capacity_until(now).saturating_sub(ow.loss);
                            let seq = contact_seq;
                            contact_seq += 1;
                            self.route_drive(
                                pool,
                                PendingDrive {
                                    window: ow.window,
                                    now,
                                    budget,
                                    seq,
                                    measured: ow.window.start >= self.config.measure_from,
                                },
                                true,
                            );
                        } else {
                            k += 1;
                        }
                    }
                    up[node.index()] = false;
                    let s = self.partition.shard_of(node);
                    self.enqueue(pool, s, ShardMsg::NodeDown(node, now));
                }
                SimEvent::ContactEnd(i) => {
                    if let Some(pos) = open.iter().position(|ow| ow.idx == i) {
                        let ow = open.remove(pos);
                        let budget = ow.window.capacity_until(now).saturating_sub(ow.loss);
                        let seq = contact_seq;
                        contact_seq += 1;
                        self.route_drive(
                            pool,
                            PendingDrive {
                                window: ow.window,
                                now,
                                budget,
                                seq,
                                measured: ow.window.start >= self.config.measure_from,
                            },
                            false,
                        );
                    }
                }
                SimEvent::PacketExpired(id) => {
                    // Expiry reads/writes arbitrary holders and buffers:
                    // a barrier.
                    self.flush_epoch(pool);
                    self.coord_expire(id);
                }
                SimEvent::ContactStart(_) | SimEvent::PacketCreated(_) => {
                    unreachable!("contact starts and creations come from the sources")
                }
            }
        }

        self.flush_epoch(pool);

        // Delivery jitter: the draw order over delivered slots is packet
        // order, identical to the serial engine (the decisions above were
        // unaffected either way).
        if let Some(noise) = &noise {
            if noise.processing_delay_mean > TimeDelta::ZERO {
                let jitter = Exponential::with_mean(noise.processing_delay_mean.as_secs_f64());
                for slot in self.world.delivered_at.iter_mut().flatten() {
                    *slot += TimeDelta::from_secs_f64(jitter.sample(&mut noise_rng));
                }
            }
        }

        self.fold_shard_counters();

        let outcomes = SimReport::from_parts(
            self.world
                .store
                .iter()
                .zip(self.world.delivered_at.iter().copied())
                .zip(self.world.entered.iter().copied())
                .map(|((p, d), e)| (p, d, e)),
            self.config.horizon,
            self.config.deadline,
        );
        self.report.outcomes = outcomes.outcomes;
    }

    /// Folds per-shard report counters into the director's report in
    /// shard order (commutative sums, but a fixed fold order keeps the
    /// merge obviously deterministic) and zeroes them. Running it early —
    /// at a checkpoint — is behavior-preserving: the end-of-run fold adds
    /// whatever accumulated afterwards. Telemetry counters (`drives`,
    /// `creations`, `busy`) are left untouched.
    fn fold_shard_counters(&mut self) {
        for s in self.states.iter_mut() {
            self.report.contacts += std::mem::take(&mut s.contacts);
            self.report.offered_bytes += std::mem::take(&mut s.offered_bytes);
            self.report.data_bytes += std::mem::take(&mut s.data_bytes);
            self.report.metadata_bytes += std::mem::take(&mut s.metadata_bytes);
            self.report.replications += std::mem::take(&mut s.replications);
        }
    }

    /// Routes one contact drive: same-shard endpoints queue to the owning
    /// shard; a cross-shard (gateway) drive is a barrier executed by the
    /// coordinator against the full world.
    fn route_drive(&mut self, pool: &ContactPool, drive: PendingDrive, interrupted: bool) {
        let (sa, sb) = (
            self.partition.shard_of(drive.window.a),
            self.partition.shard_of(drive.window.b),
        );
        if sa == sb {
            self.enqueue(pool, sa, ShardMsg::Drive { drive, interrupted });
        } else {
            self.flush_epoch(pool);
            self.coord_drive(&drive, interrupted);
        }
    }

    /// Appends a routed action to shard `s`'s queue, flushing first if
    /// the pending-action cap is reached (bounds queue memory).
    fn enqueue(&mut self, pool: &ContactPool, s: usize, msg: ShardMsg) {
        if self.pending >= EPOCH_ACTION_CAP {
            self.flush_epoch(pool);
        }
        self.states[s].msgs.push(msg);
        self.pending += 1;
    }

    /// One epoch: every shard drains its queue on the pool (serially
    /// within the shard, shards concurrently), then the director applies
    /// the holder-op logs in shard order. On return all queues are empty
    /// and the full world is consistent — the barrier may proceed.
    fn flush_epoch(&mut self, pool: &ContactPool) {
        if self.pending == 0 {
            return;
        }
        self.pending = 0;
        {
            let store = &self.world.store;
            let buffers = SlicePartition::new(self.world.buffers.as_mut_slice());
            let delivered = RawSlice::new(self.world.delivered_at.as_mut_slice());
            let entered = RawSlice::new(self.world.entered.as_mut_slice());
            let shards = SlicePartition::new(&mut *self.states);
            if self.stateless {
                pool.run(shards.len(), &|_, s| {
                    // SAFETY: the pool claims each index exactly once per
                    // run, so this is the sole reference to shard `s`.
                    let state = unsafe { shards.get_mut(s) };
                    if state.msgs.is_empty() {
                        return;
                    }
                    let t0 = Instant::now();
                    let mut routing = state
                        .routing
                        .take()
                        .expect("stateless shards own instances");
                    drain_shard(
                        routing.as_mut(),
                        state,
                        &buffers,
                        &delivered,
                        &entered,
                        store,
                    );
                    state.routing = Some(routing);
                    state.busy += t0.elapsed();
                });
            } else {
                // Single-instance mode: shard queues drain against views
                // of the coordinator's per-node state. The protocol
                // splits that state itself (`on_shard_epoch`); without an
                // override, drain serially in shard order — intra-epoch
                // actions of distinct shards commute under the extended
                // NodeDisjoint contract, so any fixed order is exact.
                let drain = |s: usize, routing: &mut dyn Routing| {
                    // SAFETY: `on_shard_epoch` calls each shard index
                    // exactly once per epoch (its documented contract;
                    // the serial fallback below trivially satisfies it),
                    // so this is the sole reference to shard `s`.
                    let state = unsafe { shards.get_mut(s) };
                    if state.msgs.is_empty() {
                        return;
                    }
                    let t0 = Instant::now();
                    drain_shard(routing, state, &buffers, &delivered, &entered, store);
                    state.busy += t0.elapsed();
                };
                if !self.coord.on_shard_epoch(self.partition, pool, &drain) {
                    for s in 0..shards.len() {
                        drain(s, &mut *self.coord);
                    }
                }
            }
        }
        // Holder ops in shard order: all ops for a (packet, node) pair
        // come from node's own shard in queue order, so per-pair final
        // state is exact regardless of the cross-shard fold order.
        for state in self.states.iter_mut() {
            for op in state.holder_log.drain(..) {
                if op.added {
                    self.world.holders[op.id.index()].insert(op.node.index());
                } else {
                    self.world.holders[op.id.index()].remove(op.node.index());
                }
            }
        }
    }

    /// Executes a cross-shard drive on the coordinator instance with the
    /// full world — identical to the serial engine's `drive_contact`.
    fn coord_drive(&mut self, drive: &PendingDrive, interrupted: bool) {
        let w = &drive.window;
        if drive.measured {
            self.report.contacts += 1;
            self.report.offered_bytes += 2 * drive.budget;
        }
        let mut driver = ContactDriver::new(
            WorldMut::Full {
                packets: &self.world.store,
                buffers: &mut self.world.buffers,
                delivered_at: &mut self.world.delivered_at,
                holders: &mut self.world.holders,
            },
            drive.now,
            w.a,
            w.b,
            drive.budget,
            false,
            drive.seq,
        );
        self.coord.on_contact(&mut driver);
        let (ledger, log) = driver.into_commit();
        debug_assert!(log.is_empty(), "full-world drivers mutate holders in place");
        if drive.measured {
            self.report.data_bytes += ledger.data_bytes;
            self.report.metadata_bytes += ledger.metadata_bytes;
            self.report.replications += ledger.replications;
        }
        self.coord.on_contact_end(w.a, w.b, drive.now, interrupted);
    }

    /// TTL expiry against the full world. Packets that never entered the
    /// network carry no replicas and were never scheduled by the serial
    /// engine — skipping them keeps `expired` exact despite the
    /// director's optimistic scheduling.
    fn coord_expire(&mut self, id: PacketId) {
        if !self.world.entered[id.index()] || self.world.delivered_at[id.index()].is_some() {
            return;
        }
        let holders = std::mem::take(&mut self.world.holders[id.index()]);
        for h in holders.iter() {
            self.world.buffers[h].remove(id);
        }
        self.report.expired += 1;
        self.coord.on_packet_expired(&self.world.store.get(id));
    }
}

/// Drains one shard's queue in order against its node range, through
/// `routing` — the shard's own instance (`Stateless` mode) or a
/// shard-range view of the single shared instance (`NodeDisjoint` mode).
/// Runs on a pool worker; everything it touches is either owned by the
/// shard (routing state, buffers in its range, its holder log) or
/// governed by a single-writer contract (`delivered_at`, `entered` —
/// see the module docs).
fn drain_shard(
    routing: &mut dyn Routing,
    state: &mut ShardState,
    buffers: &SlicePartition<NodeBuffer>,
    delivered: &RawSlice<Option<Time>>,
    entered: &RawSlice<bool>,
    store: &PacketStore,
) {
    let ShardState {
        msgs,
        holder_log,
        contacts,
        offered_bytes,
        data_bytes,
        metadata_bytes,
        replications,
        drives,
        creations,
        ..
    } = state;
    for msg in msgs.drain(..) {
        match msg {
            ShardMsg::Drive { drive, interrupted } => {
                *drives += 1;
                if drive.measured {
                    *contacts += 1;
                    *offered_bytes += 2 * drive.budget;
                }
                let (a, b) = (drive.window.a, drive.window.b);
                // SAFETY: both endpoints belong to this shard's node
                // range; ranges are disjoint across shards and the
                // director does not touch buffers during an epoch.
                let (buf_a, buf_b) = unsafe { buffers.pair_mut(a.index(), b.index()) };
                let mut driver = ContactDriver::new(
                    WorldMut::Pair {
                        packets: store,
                        a,
                        buf_a,
                        b,
                        buf_b,
                        delivered_at: delivered.share(),
                        holder_log: std::mem::take(holder_log),
                    },
                    drive.now,
                    a,
                    b,
                    drive.budget,
                    false,
                    drive.seq,
                );
                routing.on_contact(&mut driver);
                let (ledger, log) = driver.into_commit();
                *holder_log = log;
                if drive.measured {
                    *data_bytes += ledger.data_bytes;
                    *metadata_bytes += ledger.metadata_bytes;
                    *replications += ledger.replications;
                }
                routing.on_contact_end(a, b, drive.now, interrupted);
            }
            ShardMsg::Create { id, src_up } => {
                *creations += 1;
                let packet = store.get(id);
                if !src_up {
                    routing.on_creation_dropped(&packet);
                    continue;
                }
                let src = packet.src;
                // SAFETY: creations route to the source's shard, and the
                // source node is in this shard's exclusive range.
                let buf = unsafe { buffers.get_mut(src.index()) };
                if buf.free_bytes() < packet.size_bytes {
                    let needed = packet.size_bytes - buf.free_bytes();
                    let victims =
                        routing.make_room(src, &packet, needed, buf, store, packet.created_at);
                    for v in victims {
                        if buf.remove(v) {
                            holder_log.push(HolderOp {
                                id: v,
                                node: src,
                                added: false,
                            });
                        }
                    }
                }
                if buf.insert(&packet, packet.created_at) {
                    holder_log.push(HolderOp {
                        id,
                        node: src,
                        added: true,
                    });
                    // SAFETY: `entered[id]` is written only here (the
                    // packet's home shard) during an epoch, read only by
                    // the director between epochs.
                    unsafe { entered.set(id.index(), true) };
                    routing.on_packet_created(&packet);
                } else {
                    routing.on_creation_dropped(&packet);
                }
            }
            ShardMsg::NodeUp(node, t) => routing.on_node_up(node, t),
            ShardMsg::NodeDown(node, t) => routing.on_node_down(node, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::routing::TransferOutcome;
    use crate::types::Packet;
    use crate::workload::{PacketSpec, Workload};
    use crate::Schedule;

    #[test]
    fn even_partition_covers_and_balances() {
        let p = Partition::even(10, 3);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.nodes(), 10);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
        for node in 0..10u32 {
            let s = p.shard_of(NodeId(node));
            assert!(p.range(s).contains(&(node as usize)), "node {node}");
        }
    }

    #[test]
    fn empty_shards_are_skipped_by_ownership() {
        let p = Partition::from_bounds(vec![0, 5, 5, 10]);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.shard_of(NodeId(4)), 0);
        assert_eq!(p.shard_of(NodeId(5)), 2, "empty shard 1 owns nothing");
        assert!(p.range(1).is_empty());
    }

    #[test]
    fn single_shard_partition_is_trivially_local() {
        let p = Partition::even(7, 1);
        let w = ContactWindow::instant(Time::ZERO, NodeId(0), NodeId(6), 1);
        assert!(p.is_local(&w));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn from_bounds_rejects_descending_posts() {
        let _ = Partition::from_bounds(vec![0, 6, 4, 10]);
    }

    /// Flooding with the Stateless contract: decisions are a pure
    /// function of the driver, so any instance is interchangeable.
    struct ShardFlood;

    impl Routing for ShardFlood {
        fn name(&self) -> String {
            "shard-flood-test".into()
        }

        fn contact_concurrency(&self) -> ContactConcurrency {
            ContactConcurrency::Stateless
        }

        fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
            let (a, b) = driver.endpoints();
            for from in [a, b] {
                let to = driver.peer_of(from);
                let mut ids = driver.buffer(from).ids();
                ids.sort_by_key(|&id| driver.packets().get(id).dst != to);
                for id in ids {
                    if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                        break;
                    }
                }
            }
        }
    }

    fn spec(t: u64, src: u32, dst: u32, size: u64) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: size,
        }
    }

    /// A small but semantically dense scenario: intra- and cross-shard
    /// contacts (instantaneous and durative), TTL, churn interrupting a
    /// window, and a creation on a down node.
    fn scenario() -> Simulation {
        let cfg = SimConfig {
            nodes: 9,
            buffer_capacity: 4096,
            horizon: Time::from_secs(300),
            ttl: Some(TimeDelta::from_secs(60)),
            seed: 7,
            ..SimConfig::default()
        };
        let schedule = Schedule::new(vec![
            // Intra-shard (0..3): instantaneous.
            ContactWindow::instant(Time::from_secs(10), NodeId(0), NodeId(1), 4096),
            // Cross-shard gateway contact (shard 0 ↔ shard 1).
            ContactWindow::instant(Time::from_secs(20), NodeId(2), NodeId(3), 4096),
            // Durative intra-shard window in shard 1, interrupted by churn.
            ContactWindow::new(
                Time::from_secs(25),
                Time::from_secs(80),
                NodeId(4),
                NodeId(5),
                64,
            ),
            // Intra-shard in shard 2.
            ContactWindow::instant(Time::from_secs(40), NodeId(6), NodeId(7), 4096),
            // Cross-shard again, late (shard 2 ↔ shard 0).
            ContactWindow::instant(Time::from_secs(90), NodeId(8), NodeId(0), 4096),
            // Suppressed: node 5 is down over [45, 85].
            ContactWindow::instant(Time::from_secs(50), NodeId(4), NodeId(5), 4096),
        ]);
        let workload = Workload::new(vec![
            spec(1, 0, 2, 512),  // intra-shard relay
            spec(2, 1, 8, 512),  // must cross shards to deliver
            spec(3, 4, 5, 1024), // rides the interrupted window
            spec(35, 6, 3, 512), // expires before any useful contact
            spec(50, 5, 6, 512), // created while node 5 is down → dropped
        ]);
        Simulation::new(cfg, schedule, workload).with_churn(vec![
            NodeEvent {
                time: Time::from_secs(45),
                node: NodeId(5),
                up: false,
            },
            NodeEvent {
                time: Time::from_secs(85),
                node: NodeId(5),
                up: true,
            },
        ])
    }

    fn run_scenario_sharded(partition: &Partition) -> (SimReport, Vec<ShardStats>) {
        let sim = scenario();
        let mut contacts = sim.schedule().windows().iter().copied();
        let mut workload = sim.workload().specs().iter().copied();
        run_sharded_with_stats(
            sim.config(),
            partition,
            &mut contacts,
            &mut workload,
            sim.churn(),
            None,
            &mut || Box::new(ShardFlood),
        )
    }

    #[test]
    fn sharded_matches_serial_engine() {
        let serial = scenario().run(&mut ShardFlood);
        for shards in [1, 2, 3, 4] {
            let (sharded, stats) = run_scenario_sharded(&Partition::even(9, shards));
            assert_eq!(sharded, serial, "{shards} shards diverged");
            assert_eq!(stats.len(), shards);
        }
        // Sanity: the scenario is not vacuous.
        assert!(serial.delivered() >= 1);
        assert!(serial.expired >= 1);
        assert_eq!(serial.contacts_suppressed, 1);
    }

    #[test]
    fn sharded_matches_serial_under_noise() {
        let noise = NoiseModel {
            contact_failure_prob: 0.3,
            setup_loss_bytes_mean: 128.0,
            processing_delay_mean: TimeDelta::from_secs(2),
        };
        let serial = scenario().with_noise(noise).run(&mut ShardFlood);
        let sim = scenario();
        let mut contacts = sim.schedule().windows().iter().copied();
        let mut workload = sim.workload().specs().iter().copied();
        let sharded = run_sharded(
            sim.config(),
            &Partition::even(9, 3),
            &mut contacts,
            &mut workload,
            sim.churn(),
            Some(noise),
            &mut || Box::new(ShardFlood),
        );
        assert_eq!(sharded, serial);
    }

    #[test]
    fn uneven_partitions_agree_too() {
        let serial = scenario().run(&mut ShardFlood);
        for bounds in [vec![0, 1, 9], vec![0, 8, 9], vec![0, 3, 3, 9]] {
            let p = Partition::from_bounds(bounds.clone());
            let (sharded, _) = run_scenario_sharded(&p);
            assert_eq!(sharded, serial, "bounds {bounds:?} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "declared Serial")]
    fn serial_protocols_are_rejected() {
        struct SerialOnly;
        impl Routing for SerialOnly {
            fn name(&self) -> String {
                "serial-only".into()
            }
            fn on_contact(&mut self, _driver: &mut ContactDriver<'_>) {}
        }
        let sim = scenario();
        let mut contacts = sim.schedule().windows().iter().copied();
        let mut workload = sim.workload().specs().iter().copied();
        let _ = run_sharded(
            sim.config(),
            &Partition::even(9, 2),
            &mut contacts,
            &mut workload,
            &[],
            None,
            &mut || Box::new(SerialOnly),
        );
    }

    /// Flooding with genuinely evolving per-node state: each node
    /// remembers every id it ever offered and offers unseen ids first.
    /// Two fresh instances are NOT interchangeable (the memory warms up),
    /// so this is `NodeDisjoint` without the `Stateless` promise — it
    /// exercises the single-shared-instance mode and its default
    /// serial-drain epoch path.
    struct MemoryFlood {
        seen: Vec<crate::acks::PacketSet>,
    }

    impl MemoryFlood {
        fn new() -> Self {
            Self { seen: Vec::new() }
        }
    }

    impl Routing for MemoryFlood {
        fn name(&self) -> String {
            "memory-flood-test".into()
        }

        fn on_init(&mut self, config: &SimConfig) {
            self.seen = (0..config.nodes)
                .map(|_| crate::acks::PacketSet::new())
                .collect();
        }

        fn contact_concurrency(&self) -> ContactConcurrency {
            ContactConcurrency::NodeDisjoint
        }

        fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
            let (a, b) = driver.endpoints();
            for from in [a, b] {
                let to = driver.peer_of(from);
                let mut ids = driver.buffer(from).ids();
                ids.sort_by_key(|&id| {
                    (
                        driver.packets().get(id).dst != to,
                        self.seen[from.index()].contains(id),
                        id,
                    )
                });
                for id in ids {
                    if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                        break;
                    }
                    self.seen[from.index()].insert(id);
                }
            }
        }

        fn on_packet_created(&mut self, packet: &Packet) {
            self.seen[packet.src.index()].insert(packet.id);
        }

        fn on_node_up(&mut self, node: NodeId, _now: Time) {
            self.seen[node.index()] = crate::acks::PacketSet::new();
        }
    }

    #[test]
    fn node_disjoint_single_instance_matches_serial() {
        let serial = scenario().run(&mut MemoryFlood::new());
        for shards in [1, 2, 3, 4] {
            let sim = scenario();
            let mut contacts = sim.schedule().windows().iter().copied();
            let mut workload = sim.workload().specs().iter().copied();
            let (sharded, stats) = run_sharded_with_stats(
                sim.config(),
                &Partition::even(9, shards),
                &mut contacts,
                &mut workload,
                sim.churn(),
                None,
                &mut || Box::new(MemoryFlood::new()),
            );
            assert_eq!(sharded, serial, "{shards} shards diverged");
            assert!(stats
                .iter()
                .all(|s| s.concurrency == ContactConcurrency::NodeDisjoint));
        }
        assert!(serial.delivered() >= 1, "scenario must not be vacuous");
    }

    #[test]
    fn stats_report_the_stateless_tier() {
        let (_, stats) = run_scenario_sharded(&Partition::even(9, 3));
        assert!(stats
            .iter()
            .all(|s| s.concurrency == ContactConcurrency::Stateless));
    }

    #[test]
    fn clamp_shards_caps_at_node_count() {
        assert_eq!(clamp_shards(4, 100), 4);
        assert_eq!(clamp_shards(16, 16), 16);
        assert_eq!(clamp_shards(16, 9), 9, "more shards than nodes clamps");
        assert_eq!(clamp_shards(3, 0), 1, "zero-node world keeps one shard");
        // A clamped partition has no empty shards.
        let p = Partition::even(9, clamp_shards(16, 9));
        for s in 0..p.shards() {
            assert!(!p.range(s).is_empty());
        }
    }
}
