//! The contact driver: the only way a protocol can move bytes.
//!
//! When two nodes meet, the engine hands the protocol a [`ContactDriver`]
//! scoped to that single opportunity. The driver enforces the feasibility
//! rules of §3.1 — at most `s_e` bytes in each direction, no fragmentation,
//! buffer capacity respected — and keeps the byte accounting (data versus
//! control metadata) that the evaluation reports (Figs. 8, 9).
//!
//! # Serial and batch world access
//!
//! The serial engine hands each driver the *full* world (every buffer, the
//! delivered-at table, the holder sets). Under intra-run parallelism
//! (`RAPID_INTRA_JOBS > 1`, see [`crate::par`]) a batch of node-disjoint
//! contacts executes concurrently, and each driver instead holds a *pair*
//! view: exclusive access to its two endpoint buffers, a contracted view
//! of `delivered_at` (a packet's slot is only touched by the single
//! contact involving the packet's destination), and a deferred holder-op
//! log the engine applies at commit time. Both views produce identical
//! observable behaviour for protocols that only address the contact's
//! endpoints; the global view ([`ContactDriver::global`]) exists only in
//! serial mode (global-knowledge runs are never batched).

use crate::buffer::NodeBuffer;
use crate::ids::IndexSet;
use crate::par::RawSlice;
use crate::routing::{PacketStore, TransferOutcome};
use crate::time::Time;
use crate::types::{NodeId, PacketId};

/// Direction of flow within a contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    AtoB,
    BtoA,
}

/// Counters a contact accumulates; drained by the engine afterwards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ContactLedger {
    /// Payload bytes that crossed the link (both directions).
    pub data_bytes: u64,
    /// Control-channel bytes that crossed the link (both directions).
    pub metadata_bytes: u64,
    /// Successful replications (stores at the peer).
    pub replications: u64,
    /// Deliveries (first-time) performed in this contact.
    pub deliveries: u64,
}

/// One deferred holder-set mutation (batch mode): `added == true` inserts
/// `node` into packet `id`'s holder set, `false` removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HolderOp {
    pub id: PacketId,
    pub node: NodeId,
    pub added: bool,
}

/// Mutable world state the driver operates on; borrowed from the engine.
pub(crate) enum WorldMut<'a> {
    /// The serial engine's full world.
    Full {
        packets: &'a PacketStore,
        buffers: &'a mut [NodeBuffer],
        delivered_at: &'a mut [Option<Time>],
        holders: &'a mut [IndexSet],
    },
    /// One batch contact's exclusive slice of the world (see module docs).
    Pair {
        packets: &'a PacketStore,
        a: NodeId,
        buf_a: &'a mut NodeBuffer,
        b: NodeId,
        buf_b: &'a mut NodeBuffer,
        delivered_at: RawSlice<'a, Option<Time>>,
        holder_log: Vec<HolderOp>,
    },
}

impl WorldMut<'_> {
    fn packets(&self) -> &PacketStore {
        match self {
            WorldMut::Full { packets, .. } | WorldMut::Pair { packets, .. } => packets,
        }
    }

    fn buffer(&self, node: NodeId) -> &NodeBuffer {
        match self {
            WorldMut::Full { buffers, .. } => &buffers[node.index()],
            WorldMut::Pair {
                a, buf_a, b, buf_b, ..
            } => {
                if node == *a {
                    buf_a
                } else if node == *b {
                    buf_b
                } else {
                    panic!("{node} is outside this batch contact's pair view")
                }
            }
        }
    }

    fn buffer_mut(&mut self, node: NodeId) -> &mut NodeBuffer {
        match self {
            WorldMut::Full { buffers, .. } => &mut buffers[node.index()],
            WorldMut::Pair {
                a, buf_a, b, buf_b, ..
            } => {
                if node == *a {
                    buf_a
                } else if node == *b {
                    buf_b
                } else {
                    panic!("{node} is outside this batch contact's pair view")
                }
            }
        }
    }

    /// Reads a packet's delivered-at slot. In pair mode this is only ever
    /// called for packets destined to one of the contact's endpoints,
    /// which is exactly the per-batch exclusivity contract of
    /// [`RawSlice`] (no other batch member can involve that destination).
    fn delivered_at(&self, id: PacketId) -> Option<Time> {
        match self {
            WorldMut::Full { delivered_at, .. } => delivered_at[id.index()],
            // SAFETY: see above — slot exclusivity per the batch contract.
            WorldMut::Pair { delivered_at, .. } => unsafe { delivered_at.get(id.index()) },
        }
    }

    fn set_delivered_at(&mut self, id: PacketId, now: Time) {
        match self {
            WorldMut::Full { delivered_at, .. } => delivered_at[id.index()] = Some(now),
            // SAFETY: as `delivered_at` — slot exclusivity per the batch
            // contract.
            WorldMut::Pair { delivered_at, .. } => unsafe {
                delivered_at.set(id.index(), Some(now))
            },
        }
    }

    fn add_holder(&mut self, node: NodeId, id: PacketId) {
        match self {
            WorldMut::Full { holders, .. } => {
                holders[id.index()].insert(node.index());
            }
            WorldMut::Pair { holder_log, .. } => holder_log.push(HolderOp {
                id,
                node,
                added: true,
            }),
        }
    }

    fn remove_holder(&mut self, node: NodeId, id: PacketId) {
        match self {
            WorldMut::Full { holders, .. } => {
                holders[id.index()].remove(node.index());
            }
            WorldMut::Pair { holder_log, .. } => holder_log.push(HolderOp {
                id,
                node,
                added: false,
            }),
        }
    }
}

/// A single transfer opportunity, as seen by the routing protocol.
pub struct ContactDriver<'a> {
    world: WorldMut<'a>,
    now: Time,
    a: NodeId,
    b: NodeId,
    cap_ab: u64,
    cap_ba: u64,
    ledger: ContactLedger,
    allow_global: bool,
    seq: u64,
}

impl<'a> ContactDriver<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        world: WorldMut<'a>,
        now: Time,
        a: NodeId,
        b: NodeId,
        bytes_each_way: u64,
        allow_global: bool,
        seq: u64,
    ) -> Self {
        Self {
            world,
            now,
            a,
            b,
            cap_ab: bytes_each_way,
            cap_ba: bytes_each_way,
            ledger: ContactLedger::default(),
            allow_global,
            seq,
        }
    }

    /// Drains the driver at commit time: the accumulated ledger plus any
    /// deferred holder ops (empty in serial mode).
    pub(crate) fn into_commit(self) -> (ContactLedger, Vec<HolderOp>) {
        let log = match self.world {
            WorldMut::Full { .. } => Vec::new(),
            WorldMut::Pair { holder_log, .. } => holder_log,
        };
        (self.ledger, log)
    }

    /// Current simulation time (the instant of the meeting).
    pub fn now(&self) -> Time {
        self.now
    }

    /// This contact's sequence number in the run's serial drive order
    /// (0-based, counting every driven contact). Protocols that need
    /// randomness derive a per-contact RNG substream from it — the one
    /// discipline that keeps their draws identical between the serial
    /// engine and intra-run parallel execution (see [`crate::par`]).
    pub fn contact_seq(&self) -> u64 {
        self.seq
    }

    /// The two endpoints of this contact.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// The peer of `node` within this contact.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not part of this contact");
        }
    }

    fn dir_from(&self, from: NodeId) -> Dir {
        if from == self.a {
            Dir::AtoB
        } else if from == self.b {
            Dir::BtoA
        } else {
            panic!("{from} is not part of this contact");
        }
    }

    /// Remaining sendable bytes from `from` towards its peer.
    pub fn remaining_bytes(&self, from: NodeId) -> u64 {
        match self.dir_from(from) {
            Dir::AtoB => self.cap_ab,
            Dir::BtoA => self.cap_ba,
        }
    }

    /// Charges up to `bytes` of control metadata in the `from` direction;
    /// returns the number of bytes actually granted (limited by the
    /// remaining opportunity). Metadata is charged against the same
    /// opportunity as data — the in-band channel of §4.2.
    pub fn charge_metadata(&mut self, from: NodeId, bytes: u64) -> u64 {
        let cap = match self.dir_from(from) {
            Dir::AtoB => &mut self.cap_ab,
            Dir::BtoA => &mut self.cap_ba,
        };
        let granted = bytes.min(*cap);
        *cap -= granted;
        self.ledger.metadata_bytes += granted;
        granted
    }

    /// Read access to a node's buffer (either endpoint).
    pub fn buffer(&self, node: NodeId) -> &NodeBuffer {
        self.world.buffer(node)
    }

    /// The packet arena.
    pub fn packets(&self) -> &PacketStore {
        self.world.packets()
    }

    /// Byte/transfer counters so far in this contact.
    pub fn ledger(&self) -> ContactLedger {
        self.ledger
    }

    /// Attempts to send `id` from `from` to its peer. See
    /// [`TransferOutcome`] for the possible results; the two delivery
    /// variants also release the sender's copy (the sender has just
    /// witnessed the delivery, §3.4's implicit ack).
    pub fn try_transfer(&mut self, from: NodeId, id: PacketId) -> TransferOutcome {
        let to = self.peer_of(from);
        let packet = self.world.packets().get(id);
        assert!(
            self.world.buffer(from).contains(id),
            "{from} does not hold {id}"
        );

        let size = packet.size_bytes;
        let remaining = self.remaining_bytes(from);

        if packet.dst == to {
            // Direct delivery (step 2 of Protocol RAPID); still needs the
            // bytes to cross the link.
            if size > remaining {
                return TransferOutcome::NoBandwidth;
            }
            self.consume(from, size);
            self.ledger.data_bytes += size;
            // Sender observed the delivery: its own replica is now useless.
            self.remove_replica(from, id);
            if self.world.delivered_at(id).is_none() {
                self.world.set_delivered_at(id, self.now);
                self.ledger.deliveries += 1;
                TransferOutcome::Delivered
            } else {
                TransferOutcome::DeliveredDuplicate
            }
        } else {
            if self.world.buffer(to).contains(id) {
                return TransferOutcome::AlreadyHeld;
            }
            if size > remaining {
                return TransferOutcome::NoBandwidth;
            }
            let free = self.world.buffer(to).free_bytes();
            if size > free {
                return TransferOutcome::NeedsSpace(size - free);
            }
            self.consume(from, size);
            self.ledger.data_bytes += size;
            let stored = self.world.buffer_mut(to).insert(&packet, self.now);
            debug_assert!(stored, "insert after free-space check cannot fail");
            self.world.add_holder(to, id);
            self.ledger.replications += 1;
            TransferOutcome::Replicated
        }
    }

    /// Evicts `victim` from `node`'s buffer (one of the two endpoints).
    /// Returns whether a replica was actually removed.
    ///
    /// Protocols use this both for policy-driven drops (buffer overflow) and
    /// to purge packets they have learned were delivered (§4.2 ack cleanup).
    pub fn evict(&mut self, node: NodeId, victim: PacketId) -> bool {
        assert!(
            node == self.a || node == self.b,
            "{node} is not part of this contact"
        );
        self.remove_replica(node, victim)
    }

    /// True global state — only available when the run was configured with
    /// `allow_global_knowledge` (the instant global channel of §6.2.3).
    /// Global-knowledge runs are always executed serially, so the full
    /// world is guaranteed to be present here.
    ///
    /// # Panics
    /// If global knowledge is not enabled for this run.
    pub fn global(&self) -> GlobalView<'_> {
        assert!(
            self.allow_global,
            "global knowledge is disabled for this run (see SimConfig::allow_global_knowledge)"
        );
        match &self.world {
            WorldMut::Full {
                delivered_at,
                holders,
                buffers,
                ..
            } => GlobalView {
                delivered_at,
                holders,
                buffers,
            },
            WorldMut::Pair { .. } => {
                unreachable!("global-knowledge runs are never batch-executed")
            }
        }
    }

    fn consume(&mut self, from: NodeId, bytes: u64) {
        match self.dir_from(from) {
            Dir::AtoB => self.cap_ab -= bytes,
            Dir::BtoA => self.cap_ba -= bytes,
        }
    }

    fn remove_replica(&mut self, node: NodeId, id: PacketId) -> bool {
        if self.world.buffer_mut(node).remove(id) {
            self.world.remove_holder(node, id);
            true
        } else {
            false
        }
    }
}

/// Read-only true global state (instant global control channel, §6.2.3).
pub struct GlobalView<'a> {
    delivered_at: &'a [Option<Time>],
    holders: &'a [IndexSet],
    buffers: &'a [NodeBuffer],
}

impl GlobalView<'_> {
    /// Whether the packet has been delivered (anywhere, as of now).
    pub fn is_delivered(&self, id: PacketId) -> bool {
        self.delivered_at[id.index()].is_some()
    }

    /// The nodes currently holding replicas of `id`, in ascending node-id
    /// order.
    pub fn holders(&self, id: PacketId) -> impl Iterator<Item = NodeId> + '_ {
        self.holders[id.index()].iter().map(|i| NodeId(i as u32))
    }

    /// Read access to any node's buffer (remote queue state — what the
    /// instant channel would carry).
    pub fn buffer(&self, node: NodeId) -> &NodeBuffer {
        &self.buffers[node.index()]
    }
}
