//! The contact driver: the only way a protocol can move bytes.
//!
//! When two nodes meet, the engine hands the protocol a [`ContactDriver`]
//! scoped to that single opportunity. The driver enforces the feasibility
//! rules of §3.1 — at most `s_e` bytes in each direction, no fragmentation,
//! buffer capacity respected — and keeps the byte accounting (data versus
//! control metadata) that the evaluation reports (Figs. 8, 9).

use crate::buffer::NodeBuffer;
use crate::routing::{PacketStore, TransferOutcome};
use crate::time::Time;
use crate::types::{NodeId, PacketId};

/// Direction of flow within a contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    AtoB,
    BtoA,
}

/// Counters a contact accumulates; drained by the engine afterwards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ContactLedger {
    /// Payload bytes that crossed the link (both directions).
    pub data_bytes: u64,
    /// Control-channel bytes that crossed the link (both directions).
    pub metadata_bytes: u64,
    /// Successful replications (stores at the peer).
    pub replications: u64,
    /// Deliveries (first-time) performed in this contact.
    pub deliveries: u64,
}

/// Mutable world state the driver operates on; borrowed from the engine.
pub(crate) struct WorldMut<'a> {
    pub packets: &'a PacketStore,
    pub buffers: &'a mut [NodeBuffer],
    pub delivered_at: &'a mut [Option<Time>],
    pub holders: &'a mut [Vec<NodeId>],
}

/// A single transfer opportunity, as seen by the routing protocol.
pub struct ContactDriver<'a> {
    world: WorldMut<'a>,
    now: Time,
    a: NodeId,
    b: NodeId,
    cap_ab: u64,
    cap_ba: u64,
    ledger: ContactLedger,
    allow_global: bool,
}

impl<'a> ContactDriver<'a> {
    pub(crate) fn new(
        world: WorldMut<'a>,
        now: Time,
        a: NodeId,
        b: NodeId,
        bytes_each_way: u64,
        allow_global: bool,
    ) -> Self {
        Self {
            world,
            now,
            a,
            b,
            cap_ab: bytes_each_way,
            cap_ba: bytes_each_way,
            ledger: ContactLedger::default(),
            allow_global,
        }
    }

    /// Current simulation time (the instant of the meeting).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The two endpoints of this contact.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// The peer of `node` within this contact.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not part of this contact");
        }
    }

    fn dir_from(&self, from: NodeId) -> Dir {
        if from == self.a {
            Dir::AtoB
        } else if from == self.b {
            Dir::BtoA
        } else {
            panic!("{from} is not part of this contact");
        }
    }

    /// Remaining sendable bytes from `from` towards its peer.
    pub fn remaining_bytes(&self, from: NodeId) -> u64 {
        match self.dir_from(from) {
            Dir::AtoB => self.cap_ab,
            Dir::BtoA => self.cap_ba,
        }
    }

    /// Charges up to `bytes` of control metadata in the `from` direction;
    /// returns the number of bytes actually granted (limited by the
    /// remaining opportunity). Metadata is charged against the same
    /// opportunity as data — the in-band channel of §4.2.
    pub fn charge_metadata(&mut self, from: NodeId, bytes: u64) -> u64 {
        let cap = match self.dir_from(from) {
            Dir::AtoB => &mut self.cap_ab,
            Dir::BtoA => &mut self.cap_ba,
        };
        let granted = bytes.min(*cap);
        *cap -= granted;
        self.ledger.metadata_bytes += granted;
        granted
    }

    /// Read access to a node's buffer (either endpoint).
    pub fn buffer(&self, node: NodeId) -> &NodeBuffer {
        &self.world.buffers[node.index()]
    }

    /// The packet arena.
    pub fn packets(&self) -> &PacketStore {
        self.world.packets
    }

    /// Byte/transfer counters so far in this contact.
    pub fn ledger(&self) -> ContactLedger {
        self.ledger
    }

    /// Attempts to send `id` from `from` to its peer. See
    /// [`TransferOutcome`] for the possible results; the two delivery
    /// variants also release the sender's copy (the sender has just
    /// witnessed the delivery, §3.4's implicit ack).
    pub fn try_transfer(&mut self, from: NodeId, id: PacketId) -> TransferOutcome {
        let to = self.peer_of(from);
        let packet = *self.world.packets.get(id);
        assert!(
            self.world.buffers[from.index()].contains(id),
            "{from} does not hold {id}"
        );

        let size = packet.size_bytes;
        let remaining = self.remaining_bytes(from);

        if packet.dst == to {
            // Direct delivery (step 2 of Protocol RAPID); still needs the
            // bytes to cross the link.
            if size > remaining {
                return TransferOutcome::NoBandwidth;
            }
            self.consume(from, size);
            self.ledger.data_bytes += size;
            // Sender observed the delivery: its own replica is now useless.
            self.remove_replica(from, id);
            let slot = &mut self.world.delivered_at[id.index()];
            if slot.is_none() {
                *slot = Some(self.now);
                self.ledger.deliveries += 1;
                TransferOutcome::Delivered
            } else {
                TransferOutcome::DeliveredDuplicate
            }
        } else {
            if self.world.buffers[to.index()].contains(id) {
                return TransferOutcome::AlreadyHeld;
            }
            if size > remaining {
                return TransferOutcome::NoBandwidth;
            }
            let free = self.world.buffers[to.index()].free_bytes();
            if size > free {
                return TransferOutcome::NeedsSpace(size - free);
            }
            self.consume(from, size);
            self.ledger.data_bytes += size;
            let stored = self.world.buffers[to.index()].insert(&packet, self.now);
            debug_assert!(stored, "insert after free-space check cannot fail");
            self.add_holder(to, id);
            self.ledger.replications += 1;
            TransferOutcome::Replicated
        }
    }

    /// Evicts `victim` from `node`'s buffer (one of the two endpoints).
    /// Returns whether a replica was actually removed.
    ///
    /// Protocols use this both for policy-driven drops (buffer overflow) and
    /// to purge packets they have learned were delivered (§4.2 ack cleanup).
    pub fn evict(&mut self, node: NodeId, victim: PacketId) -> bool {
        assert!(
            node == self.a || node == self.b,
            "{node} is not part of this contact"
        );
        self.remove_replica(node, victim)
    }

    /// True global state — only available when the run was configured with
    /// `allow_global_knowledge` (the instant global channel of §6.2.3).
    ///
    /// # Panics
    /// If global knowledge is not enabled for this run.
    pub fn global(&self) -> GlobalView<'_> {
        assert!(
            self.allow_global,
            "global knowledge is disabled for this run (see SimConfig::allow_global_knowledge)"
        );
        GlobalView {
            delivered_at: self.world.delivered_at,
            holders: self.world.holders,
            buffers: self.world.buffers,
        }
    }

    fn consume(&mut self, from: NodeId, bytes: u64) {
        match self.dir_from(from) {
            Dir::AtoB => self.cap_ab -= bytes,
            Dir::BtoA => self.cap_ba -= bytes,
        }
    }

    fn add_holder(&mut self, node: NodeId, id: PacketId) {
        let list = &mut self.world.holders[id.index()];
        if let Err(pos) = list.binary_search(&node) {
            list.insert(pos, node);
        }
    }

    fn remove_replica(&mut self, node: NodeId, id: PacketId) -> bool {
        if self.world.buffers[node.index()].remove(id) {
            let list = &mut self.world.holders[id.index()];
            if let Ok(pos) = list.binary_search(&node) {
                list.remove(pos);
            }
            true
        } else {
            false
        }
    }
}

/// Read-only true global state (instant global control channel, §6.2.3).
pub struct GlobalView<'a> {
    delivered_at: &'a [Option<Time>],
    holders: &'a [Vec<NodeId>],
    buffers: &'a [NodeBuffer],
}

impl GlobalView<'_> {
    /// Whether the packet has been delivered (anywhere, as of now).
    pub fn is_delivered(&self, id: PacketId) -> bool {
        self.delivered_at[id.index()].is_some()
    }

    /// The nodes currently holding replicas of `id`, ascending.
    pub fn holders(&self, id: PacketId) -> &[NodeId] {
        &self.holders[id.index()]
    }

    /// Read access to any node's buffer (remote queue state — what the
    /// instant channel would carry).
    pub fn buffer(&self, node: NodeId) -> &NodeBuffer {
        &self.buffers[node.index()]
    }
}
