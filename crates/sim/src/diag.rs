//! Structured runtime diagnostics.
//!
//! Every warning the runtime emits on stderr goes through this module so
//! the format is uniform and machine-checkable: a human sentence followed
//! by a `[diag=<key> k=v ...]` tail. CI jobs grep for `diag=<key>` instead
//! of matching prose, so the wording can improve without breaking the
//! harness, and the `k=v` fields carry the numbers a log scraper needs.
//!
//! Two emit modes:
//!
//! * [`warn`] — every occurrence matters (a resume, an injected fault, a
//!   skipped snapshot). Always prints.
//! * [`warn_once`] — a configuration nit that would otherwise repeat per
//!   run in a sweep (a clamped `RAPID_SHARDS`, a serial fallback). Prints
//!   on the first occurrence of its `key` per process.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Keys already emitted by [`warn_once`].
static EMITTED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Formats the structured tail: `[diag=<key> k=v ...]`.
fn tail(key: &str, fields: &[(&str, String)]) -> String {
    let mut t = format!("[diag={key}");
    for (k, v) in fields {
        t.push(' ');
        t.push_str(k);
        t.push('=');
        t.push_str(v);
    }
    t.push(']');
    t
}

/// Emits one structured warning on stderr:
/// `warning: <human> [diag=<key> k=v ...]`.
pub fn warn(key: &str, human: &str, fields: &[(&str, String)]) {
    eprintln!("warning: {human} {}", tail(key, fields));
}

/// Like [`warn`], but at most once per process for a given `key`.
pub fn warn_once(key: &'static str, human: &str, fields: &[(&str, String)]) {
    let mut emitted = EMITTED.lock().expect("diag registry poisoned");
    if emitted.insert(key) {
        eprintln!("warning: {human} {}", tail(key, fields));
    }
}

/// Whether [`warn_once`] has already fired for `key` — lets tests assert
/// the one-shot behavior without capturing stderr.
pub fn warned(key: &str) -> bool {
    EMITTED
        .lock()
        .expect("diag registry poisoned")
        .contains(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_is_greppable() {
        assert_eq!(
            tail("resume", &[("from", "ckpt-3".into()), ("t", "120".into())]),
            "[diag=resume from=ckpt-3 t=120]"
        );
        assert_eq!(tail("empty", &[]), "[diag=empty]");
    }

    #[test]
    fn warn_once_fires_once() {
        assert!(!warned("diag-test-key"));
        warn_once("diag-test-key", "first", &[]);
        assert!(warned("diag-test-key"));
        // The second call is a no-op; nothing observable beyond `warned`,
        // but it must not panic or double-register.
        warn_once("diag-test-key", "second", &[]);
        assert!(warned("diag-test-key"));
    }
}
