//! Deterministic discrete-event DTN simulator.
//!
//! This crate is the substrate beneath the RAPID reproduction: the §3.1
//! system model of *DTN Routing as a Resource Allocation Problem*
//! (Balasubramanian, Levine, Venkataramani; SIGCOMM 2007) executed as a
//! typed discrete-event simulation.
//!
//! * Identifiers are split into *identities* and *indices*: [`types::PacketId`]
//!   and [`types::NodeId`] name things; the [`ids`] module provides dense
//!   handles ([`ids::PacketIdx`], [`ids::NodeIdx`]), stable interners and
//!   an index bitset so hot-path state is `Vec`-indexed rather than hashed.
//!   [`buffer::NodeBuffer`] keeps every structure sized by what it
//!   *stores* (sorted-index membership, slab metadata, per-destination
//!   delivery-order queues with prefix byte sums — O(log n)
//!   `bytes_ahead`, the `b(i)` input to RAPID's Estimate Delay), so
//!   100 000 near-empty buffers cost what they hold, not the id space.
//! * A DTN is a set of nodes, a [`contact::Schedule`] of transfer
//!   opportunities, and a [`workload::Workload`] of packets `(u, v, s, t)`.
//!   Opportunities are durative [`contact::ContactWindow`]s — open over
//!   `[start, end]` with a per-direction link rate, in the style of
//!   contact-graph routing — of which the paper's instantaneous meeting
//!   `(t_e, s_e)` is the degenerate zero-duration case (a lump opportunity).
//! * The [`event`] module is the event core: a [`event::SimEvent`] enum
//!   (contact start/end, packet creation, TTL expiry, node up/down) drained
//!   from a deterministic binary-heap [`event::EventQueue`] with a
//!   documented same-instant tie-break order.
//! * A [`routing::Routing`] implementation decides, at every driven
//!   opportunity, which packets to replicate or deliver — through a
//!   [`driver::ContactDriver`] that enforces feasibility: per-direction
//!   bytes bounded by the window's accrued budget, no fragmentation, buffer
//!   capacities respected, control metadata charged in-band. Optional
//!   lifecycle hooks ([`routing::Routing::on_contact_end`],
//!   `on_packet_expired`, `on_node_up`/`on_node_down`) surface the richer
//!   event kinds to protocols that want them.
//! * Scenarios are *pulled*, never pushed: [`engine::run_streaming`]
//!   merges a [`source::ContactSource`] and a [`source::WorkloadSource`]
//!   against the event queue in the documented tie-break order, so a
//!   run's memory is bounded by its open state, not its contact-plan
//!   size. [`engine::Simulation`] is the materialized convenience wrapper
//!   — including node churn ([`event::NodeEvent`]) that interrupts active
//!   windows mid-accrual and per-packet TTL
//!   ([`routing::SimConfig::ttl`]) — and produces a
//!   [`report::SimReport`] with every metric the paper's evaluation uses.
//!
//! Design notes (following the networking guides for this workspace): the
//! simulator is synchronous and single-threaded — simulation is CPU-bound
//! work, so there is no async runtime; experiment harnesses parallelize at
//! the granularity of whole runs with OS threads. All event ordering is
//! integer microseconds ([`time::Time`]), giving bit-for-bit reproducible
//! results for a given seed; instantaneous schedules reproduce the seed
//! engine's two-stream merge byte-for-byte.

pub mod acks;
pub mod buffer;
pub mod checkpoint;
pub mod contact;
pub mod diag;
pub mod driver;
pub mod engine;
pub mod env;
pub mod event;
pub mod fault;
pub mod ids;
pub mod noise;
pub mod par;
pub mod plan;
pub mod report;
pub mod routing;
pub mod shard;
pub mod source;
pub mod time;
pub mod types;
pub mod workload;

pub use acks::{AckTable, PacketSet};
pub use buffer::{NodeBuffer, QueueEntry, StoredMeta};
pub use checkpoint::{
    config_digest, load_latest, Checkpointer, LoadedSnapshot, RunHooks, Snapshot,
};
pub use contact::{Contact, ContactWindow, Schedule};
pub use driver::{ContactDriver, ContactLedger, GlobalView};
pub use engine::{run_streaming, run_streaming_hooked, Simulation};
pub use env::{from_env_or, shards_from_env};
pub use event::{EventQueue, NodeEvent, SimEvent};
pub use fault::{corrupt_bytes, corrupt_file, CorruptMode, Fault, FaultPlan};
pub use ids::{IndexSet, NodeIdx, NodeInterner, PacketIdx, PacketInterner};
pub use noise::NoiseModel;
pub use par::{
    intra_jobs_from_env, jobs_from_env, ContactConcurrency, ContactPool, Lookahead, SlicePartition,
};
pub use plan::{CompiledPlan, PlanAtom, PlanStream};
pub use report::{PacketOutcome, SimReport};
pub use routing::{PacketStore, Routing, SimConfig, TransferOutcome};
pub use shard::{
    clamp_shards, run_sharded, run_sharded_hooked, run_sharded_with_stats, Partition, ShardStats,
};
pub use source::{ContactSource, ScheduleStream, WorkloadSource, WorkloadStream};
pub use time::{Time, TimeDelta};
pub use types::{NodeId, Packet, PacketId};
