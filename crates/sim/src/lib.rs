//! Deterministic discrete-event DTN simulator.
//!
//! This crate is the substrate beneath the RAPID reproduction: the §3.1
//! system model of *DTN Routing as a Resource Allocation Problem*
//! (Balasubramanian, Levine, Venkataramani; SIGCOMM 2007) executed as an
//! event-driven simulation.
//!
//! * A DTN is a set of nodes, a [`contact::Schedule`] of discrete transfer
//!   opportunities `(t_e, s_e)`, and a [`workload::Workload`] of packets
//!   `(u, v, s, t)`.
//! * A [`routing::Routing`] implementation decides, at every opportunity,
//!   which packets to replicate or deliver — through a
//!   [`driver::ContactDriver`] that enforces feasibility: per-direction
//!   bytes bounded by the opportunity, no fragmentation, buffer capacities
//!   respected, control metadata charged in-band.
//! * An [`engine::Simulation`] executes a run and produces a
//!   [`report::SimReport`] with every metric the paper's evaluation uses.
//!
//! Design notes (following the networking guides for this workspace): the
//! simulator is synchronous and single-threaded — simulation is CPU-bound
//! work, so there is no async runtime; experiment harnesses parallelize at
//! the granularity of whole runs with OS threads. All event ordering is
//! integer microseconds ([`time::Time`]), giving bit-for-bit reproducible
//! results for a given seed.

pub mod acks;
pub mod buffer;
pub mod contact;
pub mod driver;
pub mod engine;
pub mod noise;
pub mod report;
pub mod routing;
pub mod time;
pub mod types;
pub mod workload;

pub use acks::{AckTable, PacketSet};
pub use buffer::{NodeBuffer, StoredMeta};
pub use contact::{Contact, Schedule};
pub use driver::{ContactDriver, ContactLedger, GlobalView};
pub use engine::Simulation;
pub use noise::NoiseModel;
pub use report::{PacketOutcome, SimReport};
pub use routing::{PacketStore, Routing, SimConfig, TransferOutcome};
pub use time::{Time, TimeDelta};
pub use types::{NodeId, Packet, PacketId};
