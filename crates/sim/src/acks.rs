//! Delivery-acknowledgment knowledge tables.
//!
//! §4.2: RAPID "uses an in-band control channel to exchange acknowledgments
//! for delivered packets"; Burgess et al. showed ack flooding "improves
//! delivery rates by removing useless packets from the network", which the
//! paper isolates as the *Random with acks* component (§6.2.6, Fig. 14).
//! Several protocols therefore share this utility: a per-node bitset of
//! packet ids known to be delivered, merged whenever two nodes meet.

use crate::types::{NodeId, PacketId};

/// A growable bitset keyed by [`PacketId`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketSet {
    words: Vec<u64>,
    count: usize,
}

impl PacketSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `id`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, id: PacketId) -> bool {
        let (w, bit) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, id: PacketId) -> bool {
        let (w, bit) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << bit) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the ids in the set in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PacketId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(PacketId((w * 64 + b) as u32))
                }
            })
        })
    }

    /// Union with another set; returns how many ids were newly added here.
    pub fn union_from(&mut self, other: &PacketSet) -> usize {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut added = 0;
        for (w, &ow) in other.words.iter().enumerate() {
            let new_bits = ow & !self.words[w];
            added += new_bits.count_ones() as usize;
            self.words[w] |= ow;
        }
        self.count += added;
        added
    }
}

/// Per-node delivery knowledge: `table.node(x)` is the set of packets node
/// `x` believes have been delivered.
#[derive(Debug, Clone, Default)]
pub struct AckTable {
    per_node: Vec<PacketSet>,
}

impl AckTable {
    /// Creates a table for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            per_node: vec![PacketSet::new(); nodes],
        }
    }

    /// Records that `node` learned `packet` was delivered.
    pub fn learn(&mut self, node: NodeId, packet: PacketId) -> bool {
        self.per_node[node.index()].insert(packet)
    }

    /// Whether `node` knows `packet` was delivered.
    pub fn knows(&self, node: NodeId, packet: PacketId) -> bool {
        self.per_node[node.index()].contains(packet)
    }

    /// Two-way merge when `a` and `b` meet; returns `(new_to_a, new_to_b)` —
    /// the ack counts that crossed the link, which the caller charges to the
    /// control channel.
    pub fn exchange(&mut self, a: NodeId, b: NodeId) -> (usize, usize) {
        assert_ne!(a, b, "cannot exchange acks with self");
        let (ai, bi) = (a.index(), b.index());
        // Split-borrow the two entries.
        let (lo, hi) = if ai < bi { (ai, bi) } else { (bi, ai) };
        let (head, tail) = self.per_node.split_at_mut(hi);
        let (first, second) = (&mut head[lo], &mut tail[0]);
        let (set_a, set_b) = if ai < bi {
            (first, second)
        } else {
            (second, first)
        };
        let to_a = set_a.union_from(set_b);
        let to_b = set_b.union_from(set_a);
        (to_a, to_b)
    }

    /// The set for one node.
    pub fn node(&self, node: NodeId) -> &PacketSet {
        &self.per_node[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = PacketSet::new();
        assert!(!s.contains(PacketId(3)));
        assert!(s.insert(PacketId(3)));
        assert!(!s.insert(PacketId(3)), "reinsert");
        assert!(s.contains(PacketId(3)));
        assert!(s.insert(PacketId(200)));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_yields_ascending_ids() {
        let mut s = PacketSet::new();
        for id in [130u32, 3, 64, 65, 0] {
            s.insert(PacketId(id));
        }
        let got: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 130]);
        assert_eq!(PacketSet::new().iter().count(), 0);
    }

    #[test]
    fn union_counts_new_bits() {
        let mut a = PacketSet::new();
        let mut b = PacketSet::new();
        a.insert(PacketId(1));
        a.insert(PacketId(64));
        b.insert(PacketId(64));
        b.insert(PacketId(130));
        let added = a.union_from(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
        assert!(a.contains(PacketId(130)));
    }

    #[test]
    fn ack_exchange_is_symmetric_union() {
        let mut t = AckTable::new(3);
        t.learn(NodeId(0), PacketId(1));
        t.learn(NodeId(0), PacketId(2));
        t.learn(NodeId(2), PacketId(7));
        let (to_a, to_b) = t.exchange(NodeId(0), NodeId(2));
        assert_eq!(to_a, 1); // node 0 learned p7
        assert_eq!(to_b, 2); // node 2 learned p1, p2
        assert!(t.knows(NodeId(0), PacketId(7)));
        assert!(t.knows(NodeId(2), PacketId(1)));
        assert!(!t.knows(NodeId(1), PacketId(1)));
        // Exchanging again moves nothing.
        assert_eq!(t.exchange(NodeId(0), NodeId(2)), (0, 0));
    }

    #[test]
    fn exchange_lower_index_second_node() {
        let mut t = AckTable::new(2);
        t.learn(NodeId(1), PacketId(9));
        let (to_a, to_b) = t.exchange(NodeId(1), NodeId(0));
        assert_eq!((to_a, to_b), (0, 1));
        assert!(t.knows(NodeId(0), PacketId(9)));
    }

    #[test]
    #[should_panic(expected = "self")]
    fn self_exchange_panics() {
        let mut t = AckTable::new(2);
        let _ = t.exchange(NodeId(1), NodeId(1));
    }
}
