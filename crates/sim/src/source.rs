//! Streaming scenario sources: the engine's pull-based inputs.
//!
//! The seed engine received a fully materialized [`Schedule`] and
//! [`Workload`] and pushed every window and packet creation into the event
//! queue up front — which caps scenario size at what fits in RAM (times the
//! worker count, since every run owned its own deep clone). These traits
//! invert the flow: the engine *pulls* contact windows and packet creations
//! lazily, in event order, from whatever produces them — a materialized
//! schedule behind an [`Arc`] (zero per-run clones, byte-identical to the
//! seed figures), a mobility generator drawing windows on demand from a
//! per-run RNG substream, or a trace file parsed line by line. Scenario size
//! is then bounded by the *open* state (buffers, in-flight packets), not the
//! full contact plan.
//!
//! # Contract
//!
//! Sources must yield items in nondecreasing time order (`ContactWindow::
//! start` / `PacketSpec::time`) and only reference nodes below the run's
//! `SimConfig::nodes`; the engine asserts both as it pulls. Any
//! `Iterator` with the right item type is a source via the blanket impls,
//! so `schedule.windows().iter().copied()` and generator iterators plug in
//! directly.

use crate::contact::{ContactWindow, Schedule};
use crate::time::Time;
use crate::types::NodeId;
use crate::workload::{PacketSpec, Workload};
use dtn_trace::{Record, RecordStream};
use std::io::BufRead;
use std::sync::Arc;

/// A pull-based stream of contact windows in nondecreasing `start` order.
pub trait ContactSource {
    /// The next window, or `None` when the scenario has no more contacts.
    fn next_window(&mut self) -> Option<ContactWindow>;
}

/// A pull-based stream of packet creations in nondecreasing `time` order.
pub trait WorkloadSource {
    /// The next packet spec, or `None` when the workload is exhausted.
    fn next_packet(&mut self) -> Option<PacketSpec>;
}

/// Every window iterator is a contact source.
impl<I: Iterator<Item = ContactWindow>> ContactSource for I {
    fn next_window(&mut self) -> Option<ContactWindow> {
        self.next()
    }
}

/// Every packet-spec iterator is a workload source.
impl<I: Iterator<Item = PacketSpec>> WorkloadSource for I {
    fn next_packet(&mut self) -> Option<PacketSpec> {
        self.next()
    }
}

/// A cursor over a shared, immutable [`Schedule`].
///
/// Many concurrent runs can stream the same schedule through their own
/// cursors — the windows are read in place behind the [`Arc`], never
/// cloned. This is the materialized impl of [`ContactSource`] that keeps
/// the seed figures byte-identical.
#[derive(Debug, Clone)]
pub struct ScheduleStream {
    schedule: Arc<Schedule>,
    cursor: usize,
}

impl ScheduleStream {
    /// Streams `schedule` from its first window.
    pub fn new(schedule: Arc<Schedule>) -> Self {
        Self {
            schedule,
            cursor: 0,
        }
    }
}

impl Iterator for ScheduleStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        let w = self.schedule.windows().get(self.cursor).copied();
        self.cursor += w.is_some() as usize;
        w
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.schedule.len() - self.cursor;
        (left, Some(left))
    }
}

/// A cursor over a shared, immutable [`Workload`] — the materialized impl
/// of [`WorkloadSource`].
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    workload: Arc<Workload>,
    cursor: usize,
}

impl WorkloadStream {
    /// Streams `workload` from its first packet.
    pub fn new(workload: Arc<Workload>) -> Self {
        Self {
            workload,
            cursor: 0,
        }
    }
}

impl Iterator for WorkloadStream {
    type Item = PacketSpec;

    fn next(&mut self) -> Option<PacketSpec> {
        let s = self.workload.specs().get(self.cursor).copied();
        self.cursor += s.is_some() as usize;
        s
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.workload.len() - self.cursor;
        (left, Some(left))
    }
}

/// Streams one trace day's contact windows straight off a reader — the
/// trace-file impl of [`ContactSource`]. Records before `day` are skipped,
/// and the stream ends at the first later day (traces are `(day, time)`
/// ordered), so replaying one day of a multi-gigabyte trace costs only the
/// reader's buffer.
///
/// # Panics
/// On malformed trace input (a replay cannot proceed past a parse error).
pub struct TraceDayContacts<R: BufRead> {
    records: RecordStream<R>,
    day: u32,
}

impl<R: BufRead> TraceDayContacts<R> {
    /// Streams the contacts of `day` from `records`
    /// (see [`dtn_trace::stream_records`]).
    pub fn new(records: RecordStream<R>, day: u32) -> Self {
        Self { records, day }
    }
}

impl<R: BufRead> Iterator for TraceDayContacts<R> {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        for record in self.records.by_ref() {
            match record.expect("trace parses during replay") {
                Record::Contact(c) if c.day == self.day => return Some(ContactWindow::from(c)),
                r if r.day() > self.day => return None,
                _ => {}
            }
        }
        None
    }
}

/// The workload-side twin of [`TraceDayContacts`]: one trace day's packet
/// creations streamed off a reader — the trace-file impl of
/// [`WorkloadSource`].
///
/// # Panics
/// On malformed trace input.
pub struct TraceDayPackets<R: BufRead> {
    records: RecordStream<R>,
    day: u32,
}

impl<R: BufRead> TraceDayPackets<R> {
    /// Streams the packet creations of `day` from `records`.
    pub fn new(records: RecordStream<R>, day: u32) -> Self {
        Self { records, day }
    }
}

impl<R: BufRead> Iterator for TraceDayPackets<R> {
    type Item = PacketSpec;

    fn next(&mut self) -> Option<PacketSpec> {
        for record in self.records.by_ref() {
            match record.expect("trace parses during replay") {
                Record::Packet(p) if p.day == self.day => {
                    return Some(PacketSpec {
                        time: Time(p.time_us),
                        src: NodeId(p.src),
                        dst: NodeId(p.dst),
                        size_bytes: p.bytes,
                    })
                }
                r if r.day() > self.day => return None,
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;

    #[test]
    fn schedule_stream_yields_all_windows_in_order() {
        let schedule = Arc::new(Schedule::new(vec![
            Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 10),
            Contact::new(Time::from_secs(1), NodeId(1), NodeId(2), 20),
        ]));
        let mut s = ScheduleStream::new(Arc::clone(&schedule));
        assert_eq!(s.size_hint(), (2, Some(2)));
        assert_eq!(s.next_window().unwrap().start, Time::from_secs(1));
        assert_eq!(s.next_window().unwrap().start, Time::from_secs(5));
        assert_eq!(s.next_window(), None);
        assert_eq!(s.next_window(), None, "fused at the end");
        // A second cursor over the same Arc starts fresh.
        let again: Vec<_> = ScheduleStream::new(schedule).collect();
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn workload_stream_yields_all_specs_in_order() {
        let workload = Arc::new(Workload::new(vec![
            PacketSpec {
                time: Time::from_secs(9),
                src: NodeId(0),
                dst: NodeId(1),
                size_bytes: 1,
            },
            PacketSpec {
                time: Time::from_secs(2),
                src: NodeId(1),
                dst: NodeId(0),
                size_bytes: 2,
            },
        ]));
        let mut s = WorkloadStream::new(workload);
        assert_eq!(s.size_hint(), (2, Some(2)));
        assert_eq!(s.next_packet().unwrap().time, Time::from_secs(2));
        assert_eq!(s.next_packet().unwrap().time, Time::from_secs(9));
        assert_eq!(s.next_packet(), None);
    }

    #[test]
    fn trace_day_sources_stream_one_day() {
        let text = format!(
            "{}\nC 0 10 1 2 512\nP 0 20 1 2 64\nC 1 5 0 1 128\nC 1 9 1 2 256 3000000\nP 1 9 2 0 32\nC 2 1 0 2 99\n",
            dtn_trace::HEADER
        );
        let contacts: Vec<ContactWindow> =
            TraceDayContacts::new(dtn_trace::stream_records(text.as_bytes()), 1).collect();
        assert_eq!(contacts.len(), 2);
        assert_eq!(contacts[0].start, Time(5));
        assert_eq!(contacts[0].lump_bytes, 128);
        assert!(!contacts[1].is_instantaneous());
        assert_eq!(contacts[1].bytes_per_sec, 256);

        let packets: Vec<PacketSpec> =
            TraceDayPackets::new(dtn_trace::stream_records(text.as_bytes()), 1).collect();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].src, NodeId(2));
        assert_eq!(packets[0].time, Time(9));

        // Sources compose with the engine's schedule/workload types.
        let day0: Vec<ContactWindow> =
            TraceDayContacts::new(dtn_trace::stream_records(text.as_bytes()), 0).collect();
        assert_eq!(Schedule::new(day0).len(), 1);
    }

    #[test]
    fn plain_iterators_are_sources() {
        let windows = [ContactWindow::instant(
            Time::from_secs(1),
            NodeId(0),
            NodeId(1),
            7,
        )];
        let mut src = windows.iter().copied();
        assert_eq!(ContactSource::next_window(&mut src), Some(windows[0]));
        assert_eq!(ContactSource::next_window(&mut src), None);
    }
}
