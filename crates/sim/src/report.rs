//! Run outcomes and the metrics the paper reports.
//!
//! One [`SimReport`] per run carries per-packet outcomes plus byte
//! accounting, from which every evaluation metric is derived: average delay
//! (Fig. 4), delivery rate (Fig. 5), maximum delay (Fig. 6), fraction
//! delivered within deadline (Fig. 7), metadata ratios and channel
//! utilization (Figs. 8, 9, Table 3), average delay including undelivered
//! packets (Fig. 13) and per-group delays for the fairness CDF (Fig. 15).

use crate::time::{Time, TimeDelta};
use crate::types::{NodeId, Packet, PacketId};
use std::collections::BTreeMap;

/// Final fate of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketOutcome {
    /// The packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Creation time.
    pub created_at: Time,
    /// Delivery time, if the packet reached its destination.
    pub delivered_at: Option<Time>,
    /// Whether the packet entered the network at all (false = dropped at
    /// creation because the source buffer was full).
    pub entered_network: bool,
}

impl PacketOutcome {
    /// Delivery delay, if delivered.
    pub fn delay(&self) -> Option<TimeDelta> {
        self.delivered_at.map(|d| d.since(self.created_at))
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Per-packet outcomes in creation order.
    pub outcomes: Vec<PacketOutcome>,
    /// Contacts that actually took place.
    pub contacts: u64,
    /// Contacts lost to deployment noise (radio/setup failure emulation).
    pub contacts_failed: u64,
    /// Contact windows that never started because an endpoint was down
    /// (node churn).
    pub contacts_suppressed: u64,
    /// Packets whose TTL elapsed undelivered (engine-evicted everywhere).
    pub expired: u64,
    /// Total opportunity bytes offered (both directions, after noise).
    pub offered_bytes: u64,
    /// Payload bytes that crossed links.
    pub data_bytes: u64,
    /// Control metadata bytes that crossed links.
    pub metadata_bytes: u64,
    /// Total replications performed.
    pub replications: u64,
    /// End of the run; undelivered packets are charged up to here.
    pub horizon: Time,
    /// Deadline used for the within-deadline metric, if configured.
    pub deadline: Option<TimeDelta>,
}

impl SimReport {
    /// Number of packets created.
    pub fn created(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of packets delivered.
    pub fn delivered(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.delivered_at.is_some())
            .count()
    }

    /// Fraction of created packets that were delivered (Fig. 5).
    pub fn delivery_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.delivered() as f64 / self.created() as f64
    }

    /// Average delay of *delivered* packets, in seconds (Fig. 4).
    /// `None` if nothing was delivered.
    pub fn avg_delay_secs(&self) -> Option<f64> {
        let delays: Vec<f64> = self.delivered_delays_secs();
        if delays.is_empty() {
            return None;
        }
        Some(delays.iter().sum::<f64>() / delays.len() as f64)
    }

    /// Maximum delay of delivered packets, in seconds (Fig. 6).
    pub fn max_delay_secs(&self) -> Option<f64> {
        self.delivered_delays_secs()
            .into_iter()
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }

    /// Average delay including undelivered packets, which are charged their
    /// time in the system until the horizon — the Fig. 13 / ILP objective
    /// ("the delay of undelivered packets is set to time the packet spent in
    /// the system").
    pub fn avg_delay_with_undelivered_secs(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let total: f64 = self
            .outcomes
            .iter()
            .map(|o| match o.delivered_at {
                Some(d) => d.since(o.created_at).as_secs_f64(),
                None => self.horizon.since(o.created_at).as_secs_f64(),
            })
            .sum();
        Some(total / self.outcomes.len() as f64)
    }

    /// Fraction of created packets delivered within `deadline` of creation
    /// (Fig. 7). Uses the run's configured deadline unless one is given.
    pub fn within_deadline_rate(&self, deadline: Option<TimeDelta>) -> f64 {
        let Some(deadline) = deadline.or(self.deadline) else {
            return 0.0;
        };
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let hit = self
            .outcomes
            .iter()
            .filter(|o| o.delay().is_some_and(|d| d <= deadline))
            .count();
        hit as f64 / self.created() as f64
    }

    /// Fraction of offered link capacity actually used, data + metadata
    /// (Fig. 9's "% channel utilization").
    pub fn channel_utilization(&self) -> f64 {
        if self.offered_bytes == 0 {
            return 0.0;
        }
        (self.data_bytes + self.metadata_bytes) as f64 / self.offered_bytes as f64
    }

    /// Metadata as a fraction of offered bandwidth (Table 3's
    /// "Meta-data size / bandwidth").
    pub fn metadata_over_bandwidth(&self) -> f64 {
        if self.offered_bytes == 0 {
            return 0.0;
        }
        self.metadata_bytes as f64 / self.offered_bytes as f64
    }

    /// Metadata as a fraction of data transmitted (Table 3's
    /// "Meta-data size / data size", Fig. 9).
    pub fn metadata_over_data(&self) -> f64 {
        if self.data_bytes == 0 {
            return 0.0;
        }
        self.metadata_bytes as f64 / self.data_bytes as f64
    }

    /// Delays (seconds) of delivered packets.
    pub fn delivered_delays_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.delay().map(|d| d.as_secs_f64()))
            .collect()
    }

    /// Delay samples grouped by creation instant, for the fairness analysis
    /// of packets "created in parallel" (§6.2.5). Undelivered packets are
    /// charged the horizon so that starvation shows up as unfairness.
    pub fn delays_by_creation_group(&self) -> BTreeMap<Time, Vec<f64>> {
        let mut groups: BTreeMap<Time, Vec<f64>> = BTreeMap::new();
        for o in &self.outcomes {
            let delay = match o.delivered_at {
                Some(d) => d.since(o.created_at).as_secs_f64(),
                None => self.horizon.since(o.created_at).as_secs_f64(),
            };
            groups.entry(o.created_at).or_default().push(delay);
        }
        groups
    }

    pub(crate) fn from_parts(
        packets: impl Iterator<Item = (Packet, Option<Time>, bool)>,
        horizon: Time,
        deadline: Option<TimeDelta>,
    ) -> Self {
        let outcomes = packets
            .map(|(p, delivered_at, entered)| PacketOutcome {
                id: p.id,
                src: p.src,
                dst: p.dst,
                size_bytes: p.size_bytes,
                created_at: p.created_at,
                delivered_at,
                entered_network: entered,
            })
            .collect();
        Self {
            outcomes,
            horizon,
            deadline,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(created: u64, delivered: Option<u64>) -> PacketOutcome {
        PacketOutcome {
            id: PacketId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 1024,
            created_at: Time::from_secs(created),
            delivered_at: delivered.map(Time::from_secs),
            entered_network: true,
        }
    }

    fn report(outcomes: Vec<PacketOutcome>) -> SimReport {
        SimReport {
            outcomes,
            horizon: Time::from_secs(100),
            deadline: Some(TimeDelta::from_secs(10)),
            ..SimReport::default()
        }
    }

    #[test]
    fn delivery_and_delay_metrics() {
        let r = report(vec![
            outcome(0, Some(5)),
            outcome(0, Some(20)),
            outcome(10, None),
            outcome(20, Some(25)),
        ]);
        assert_eq!(r.created(), 4);
        assert_eq!(r.delivered(), 3);
        assert!((r.delivery_rate() - 0.75).abs() < 1e-12);
        assert!((r.avg_delay_secs().unwrap() - 10.0).abs() < 1e-12); // (5+20+5)/3
        assert!((r.max_delay_secs().unwrap() - 20.0).abs() < 1e-12);
        // Within deadline 10s: packets with delays 5 and 5 → 2/4.
        assert!((r.within_deadline_rate(None) - 0.5).abs() < 1e-12);
        // Including undelivered: (5+20+90+5)/4 = 30.
        assert!((r.avg_delay_with_undelivered_secs().unwrap() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let r = SimReport::default();
        assert_eq!(r.delivery_rate(), 0.0);
        assert_eq!(r.avg_delay_secs(), None);
        assert_eq!(r.max_delay_secs(), None);
        assert_eq!(r.avg_delay_with_undelivered_secs(), None);
        assert_eq!(r.within_deadline_rate(None), 0.0);
        assert_eq!(r.channel_utilization(), 0.0);
        assert_eq!(r.metadata_over_data(), 0.0);
        assert_eq!(r.metadata_over_bandwidth(), 0.0);
    }

    #[test]
    fn byte_ratio_metrics() {
        let r = SimReport {
            offered_bytes: 1000,
            data_bytes: 300,
            metadata_bytes: 50,
            ..SimReport::default()
        };
        assert!((r.channel_utilization() - 0.35).abs() < 1e-12);
        assert!((r.metadata_over_bandwidth() - 0.05).abs() < 1e-12);
        assert!((r.metadata_over_data() - 50.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_groups_charge_horizon_to_undelivered() {
        let r = report(vec![
            outcome(0, Some(5)),
            outcome(0, None),
            outcome(10, Some(12)),
        ]);
        let groups = r.delays_by_creation_group();
        assert_eq!(groups.len(), 2);
        let g0 = &groups[&Time::from_secs(0)];
        assert_eq!(g0.len(), 2);
        assert!(g0.contains(&5.0) && g0.contains(&100.0));
    }

    #[test]
    fn override_deadline_parameter() {
        let r = report(vec![outcome(0, Some(5))]);
        assert_eq!(r.within_deadline_rate(Some(TimeDelta::from_secs(1))), 0.0);
        assert_eq!(r.within_deadline_rate(Some(TimeDelta::from_secs(5))), 1.0);
    }
}
