//! Workload specification and the paper's packet generators.
//!
//! §5.1: "We generated packets of size 1 KB periodically on each bus with an
//! exponential inter-arrival time. The destinations of the packets included
//! only buses that were scheduled to be on the road". §6.1/Table 4 sets the
//! generation rate per destination for the load sweeps. The generators here
//! produce the same processes, deterministically from a seed.

use crate::time::{Time, TimeDelta};
use crate::types::NodeId;
use dtn_stats::sample::Exponential;
use dtn_trace::PacketRecord;
use rand::Rng;

/// One packet to be created during a run: `(src, dst, size, time)` (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// Creation time.
    pub time: Time,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Size in bytes.
    pub size_bytes: u64,
}

/// A time-ordered workload for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workload {
    specs: Vec<PacketSpec>,
}

impl Workload {
    /// Builds a workload, sorting by creation time (stable).
    pub fn new(mut specs: Vec<PacketSpec>) -> Self {
        specs.sort_by_key(|s| s.time);
        Self { specs }
    }

    /// Builds a workload from trace packet records (a single day's worth).
    pub fn from_records(records: &[PacketRecord]) -> Self {
        Self::new(
            records
                .iter()
                .map(|r| PacketSpec {
                    time: Time(r.time_us),
                    src: NodeId(r.src),
                    dst: NodeId(r.dst),
                    size_bytes: r.bytes,
                })
                .collect(),
        )
    }

    /// The packet specs in time order.
    pub fn specs(&self) -> &[PacketSpec] {
        &self.specs
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total bytes across all packets.
    pub fn total_bytes(&self) -> u64 {
        self.specs.iter().map(|s| s.size_bytes).sum()
    }
}

/// Generates the paper's pairwise Poisson workload: every ordered pair
/// `(src, dst)` of distinct nodes generates packets with exponential
/// inter-arrival times of mean `mean_gap`, over `[0, horizon)`.
///
/// This is the trace-experiment load model: "X packets generated in 1 hour
/// per destination" by each source corresponds to `mean_gap = 1h / X`.
pub fn pairwise_poisson<R: Rng + ?Sized>(
    nodes: &[NodeId],
    mean_gap: TimeDelta,
    size_bytes: u64,
    horizon: Time,
    rng: &mut R,
) -> Workload {
    assert!(mean_gap > TimeDelta::ZERO, "mean gap must be positive");
    let gap = Exponential::with_mean(mean_gap.as_secs_f64());
    let mut specs = Vec::new();
    for &src in nodes {
        for &dst in nodes {
            if src == dst {
                continue;
            }
            let mut t = gap.sample(rng);
            while Time::from_secs_f64(t) < horizon {
                specs.push(PacketSpec {
                    time: Time::from_secs_f64(t),
                    src,
                    dst,
                    size_bytes,
                });
                t += gap.sample(rng);
            }
        }
    }
    Workload::new(specs)
}

/// Generates a burst of `count` packets at `time`, each from a random source
/// to a random distinct destination — the "parallel packets" workload of the
/// fairness experiment (§6.2.5).
pub fn parallel_burst<R: Rng + ?Sized>(
    nodes: &[NodeId],
    count: usize,
    time: Time,
    size_bytes: u64,
    rng: &mut R,
) -> Workload {
    assert!(nodes.len() >= 2, "need at least two nodes");
    let mut specs = Vec::with_capacity(count);
    for _ in 0..count {
        let src = nodes[rng.gen_range(0..nodes.len())];
        let dst = loop {
            let d = nodes[rng.gen_range(0..nodes.len())];
            if d != src {
                break d;
            }
        };
        specs.push(PacketSpec {
            time,
            src,
            dst,
            size_bytes,
        });
    }
    Workload::new(specs)
}

/// Merges several workloads into one time-ordered workload.
pub fn merge(workloads: &[Workload]) -> Workload {
    let mut specs = Vec::new();
    for w in workloads {
        specs.extend_from_slice(w.specs());
    }
    Workload::new(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_stats::stream;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn pairwise_poisson_rate_is_respected() {
        let mut rng = stream(1, "wl");
        // 4 nodes, mean gap 10s, horizon 1000s → per pair ~100, 12 pairs.
        let w = pairwise_poisson(
            &nodes(4),
            TimeDelta::from_secs(10),
            1024,
            Time::from_secs(1000),
            &mut rng,
        );
        let expected = 12.0 * 100.0;
        let got = w.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.15,
            "expected ~{expected}, got {got}"
        );
        assert!(w.specs().windows(2).all(|p| p[0].time <= p[1].time));
        assert!(w.specs().iter().all(|s| s.src != s.dst));
        assert!(w.specs().iter().all(|s| s.time < Time::from_secs(1000)));
        assert_eq!(w.total_bytes(), w.len() as u64 * 1024);
    }

    #[test]
    fn pairwise_poisson_is_deterministic() {
        let make = || {
            let mut rng = stream(7, "wl-det");
            pairwise_poisson(
                &nodes(3),
                TimeDelta::from_secs(5),
                512,
                Time::from_secs(200),
                &mut rng,
            )
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn parallel_burst_shares_creation_time() {
        let mut rng = stream(2, "burst");
        let w = parallel_burst(&nodes(5), 30, Time::from_secs(3), 1024, &mut rng);
        assert_eq!(w.len(), 30);
        assert!(w.specs().iter().all(|s| s.time == Time::from_secs(3)));
        assert!(w.specs().iter().all(|s| s.src != s.dst));
    }

    #[test]
    fn merge_orders_across_sources() {
        let a = Workload::new(vec![PacketSpec {
            time: Time::from_secs(10),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 1,
        }]);
        let b = Workload::new(vec![PacketSpec {
            time: Time::from_secs(5),
            src: NodeId(1),
            dst: NodeId(0),
            size_bytes: 1,
        }]);
        let m = merge(&[a, b]);
        assert_eq!(m.specs()[0].time, Time::from_secs(5));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn from_records_maps_fields() {
        let w = Workload::from_records(&[PacketRecord {
            day: 0,
            time_us: 5,
            src: 1,
            dst: 2,
            bytes: 77,
        }]);
        assert_eq!(w.specs()[0].size_bytes, 77);
        assert_eq!(w.specs()[0].src, NodeId(1));
    }
}
