//! Deployment-noise emulation.
//!
//! §5 notes that "the deployment is subject to some events that are not
//! perfectly modeled in the simulation, including delays caused by
//! computation or the wireless channel". To reproduce the Fig. 3 / Table 3
//! validation methodology without the physical testbed, runs can enable a
//! noise model that perturbs the clean simulator with exactly those effects:
//! whole-contact failures (radio/discovery failure), connection-setup bytes
//! lost from each opportunity, and per-delivery processing latency.

use crate::time::TimeDelta;

/// Perturbations applied to a run to emulate the deployed system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability that a scheduled contact yields no usable connection.
    pub contact_failure_prob: f64,
    /// Mean bytes lost from each opportunity to connection setup
    /// (exponentially distributed, truncated at the opportunity size).
    pub setup_loss_bytes_mean: f64,
    /// Mean extra latency added to each delivery timestamp
    /// (exponentially distributed) — computation and channel delays.
    pub processing_delay_mean: TimeDelta,
}

impl NoiseModel {
    /// The defaults used by the deployment emulation in the experiments:
    /// 3% failed connections, 64 KiB setup loss, 2 s mean processing delay.
    /// These magnitudes keep simulation and "deployment" within a few
    /// percent of each other, which is the relationship Fig. 3 validates.
    pub fn deployment_default() -> Self {
        Self {
            contact_failure_prob: 0.03,
            setup_loss_bytes_mean: 64.0 * 1024.0,
            processing_delay_mean: TimeDelta::from_secs(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let n = NoiseModel::deployment_default();
        assert!(n.contact_failure_prob > 0.0 && n.contact_failure_prob < 0.2);
        assert!(n.setup_loss_bytes_mean > 0.0);
        assert!(n.processing_delay_mean > TimeDelta::ZERO);
    }
}
