//! Dense handles and stable interners for the simulator's identifier
//! spaces.
//!
//! [`PacketId`] and [`NodeId`] are *identities*: stable names that travel
//! through schedules, workloads and protocol beliefs. Hot-path state wants
//! *indices*: contiguous `Vec` slots with O(1) access and no hashing. The
//! types here bridge the two:
//!
//! * [`PacketIdx`] / [`NodeIdx`] are dense handles — plain array positions
//!   with a type each, so a packet slot cannot be confused with a node slot.
//! * [`PacketInterner`] / [`NodeInterner`] assign handles stably in
//!   first-seen order: interning the same id always yields the same handle,
//!   and handles are never reused or compacted, so `Vec`s indexed by a
//!   handle stay valid for the lifetime of the interner.
//! * [`IndexSet`] is a growable bitset over dense indices — O(1)
//!   membership, ascending-order iteration — the membership structure the
//!   arena-indexed containers ([`crate::buffer::NodeBuffer`], the
//!   control-plane tables in `rapid-core`) share.
//!
//! The engine already allocates `PacketId`s densely (creation order) and
//! `NodeId`s are `0..nodes`, so interning those is the identity mapping;
//! the interner is the contract that keeps dense-indexed state correct for
//! id spaces that are *not* born dense (trace-derived ids, subsets of
//! destinations actually seen by one buffer).

use crate::types::{NodeId, PacketId};
use std::fmt;

/// Dense handle for an interned [`PacketId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketIdx(pub u32);

/// Dense handle for an interned [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl PacketIdx {
    /// The handle as an array index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl NodeIdx {
    /// The handle as an array index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pi{}", self.0)
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ni{}", self.0)
    }
}

/// Sparse-to-dense id mapping: raw u32 keys to dense indices assigned in
/// first-seen order. `sparse[raw]` holds `idx + 1` (0 = never seen).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct RawInterner {
    sparse: Vec<u32>,
    dense: Vec<u32>,
}

impl RawInterner {
    fn intern(&mut self, raw: u32) -> u32 {
        let slot = raw as usize;
        if slot >= self.sparse.len() {
            self.sparse.resize(slot + 1, 0);
        }
        if self.sparse[slot] == 0 {
            self.dense.push(raw);
            self.sparse[slot] = self.dense.len() as u32;
        }
        self.sparse[slot] - 1
    }

    fn get(&self, raw: u32) -> Option<u32> {
        match self.sparse.get(raw as usize) {
            Some(&v) if v > 0 => Some(v - 1),
            _ => None,
        }
    }

    fn raw(&self, idx: u32) -> u32 {
        self.dense[idx as usize]
    }

    fn len(&self) -> usize {
        self.dense.len()
    }

    fn clear(&mut self) {
        self.sparse.fill(0);
        self.dense.clear();
    }
}

/// Stable interner from [`PacketId`] to [`PacketIdx`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketInterner(RawInterner);

impl PacketInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The handle for `id`, assigning the next dense slot on first sight.
    pub fn intern(&mut self, id: PacketId) -> PacketIdx {
        PacketIdx(self.0.intern(id.0))
    }

    /// The handle for `id` if it has been interned.
    pub fn get(&self, id: PacketId) -> Option<PacketIdx> {
        self.0.get(id.0).map(PacketIdx)
    }

    /// The id a handle was assigned to.
    pub fn id(&self, idx: PacketIdx) -> PacketId {
        PacketId(self.0.raw(idx.0))
    }

    /// Number of distinct ids interned.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }

    /// Forgets every id, keeping allocations for reuse. Handles assigned
    /// before the clear are invalidated.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

/// Stable interner from [`NodeId`] to [`NodeIdx`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeInterner(RawInterner);

impl NodeInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The handle for `id`, assigning the next dense slot on first sight.
    pub fn intern(&mut self, id: NodeId) -> NodeIdx {
        NodeIdx(self.0.intern(id.0))
    }

    /// The handle for `id` if it has been interned.
    pub fn get(&self, id: NodeId) -> Option<NodeIdx> {
        self.0.get(id.0).map(NodeIdx)
    }

    /// The id a handle was assigned to.
    pub fn id(&self, idx: NodeIdx) -> NodeId {
        NodeId(self.0.raw(idx.0))
    }

    /// Number of distinct ids interned.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }

    /// Forgets every id, keeping allocations for reuse. Handles assigned
    /// before the clear are invalidated.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

/// A growable bitset over dense indices: O(1) insert/remove/contains,
/// iteration in ascending index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexSet {
    words: Vec<u64>,
    count: usize,
}

impl IndexSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `idx`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, idx: usize) -> bool {
        let (w, bit) = (idx / 64, idx % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Removes `idx`; returns `true` if it was present.
    pub fn remove(&mut self, idx: usize) -> bool {
        let (w, bit) = (idx / 64, idx % 64);
        let mask = 1u64 << bit;
        match self.words.get_mut(w) {
            Some(word) if *word & mask != 0 => {
                *word &= !mask;
                self.count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        let (w, bit) = (idx / 64, idx % 64);
        self.words.get(w).is_some_and(|word| word & (1 << bit) != 0)
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_first_seen_order() {
        let mut i = NodeInterner::new();
        assert!(i.is_empty());
        let a = i.intern(NodeId(7));
        let b = i.intern(NodeId(2));
        let a2 = i.intern(NodeId(7));
        assert_eq!(a, NodeIdx(0));
        assert_eq!(b, NodeIdx(1));
        assert_eq!(a, a2, "re-interning yields the same handle");
        assert_eq!(i.len(), 2);
        assert_eq!(i.id(a), NodeId(7));
        assert_eq!(i.id(b), NodeId(2));
        assert_eq!(i.get(NodeId(2)), Some(NodeIdx(1)));
        assert_eq!(i.get(NodeId(9)), None);
    }

    #[test]
    fn packet_interner_roundtrip() {
        let mut i = PacketInterner::new();
        let h = i.intern(PacketId(1000));
        assert_eq!(h, PacketIdx(0));
        assert_eq!(i.id(h), PacketId(1000));
        assert_eq!(i.get(PacketId(0)), None);
        assert_eq!(i.intern(PacketId(0)), PacketIdx(1));
    }

    #[test]
    fn index_set_insert_remove_iterate() {
        let mut s = IndexSet::new();
        for idx in [130usize, 3, 64, 65, 0] {
            assert!(s.insert(idx));
        }
        assert!(!s.insert(64), "reinsert");
        assert_eq!(s.len(), 5);
        assert!(s.remove(64));
        assert!(!s.remove(64), "double remove");
        assert!(!s.contains(64));
        assert!(s.contains(65));
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 65, 130]);
        assert!(!s.remove(100_000), "out of range is absent");
    }

    #[test]
    fn display_forms() {
        assert_eq!(PacketIdx(3).to_string(), "pi3");
        assert_eq!(NodeIdx(4).to_string(), "ni4");
    }
}
